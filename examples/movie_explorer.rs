//! Exploratory search over the IMDB-like movie dataset — the workload the
//! paper's Figure 4 evaluates on, here in interactive-report form: run all
//! eight QM queries, compare the top results of each, show how the two
//! algorithms behave.
//!
//! Run with: `cargo run --example movie_explorer`

use xsact::prelude::*;
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};

fn main() -> Result<(), XsactError> {
    let doc = MoviesGen::new(MovieGenConfig { movies: 250, ..Default::default() }).generate();
    println!(
        "generated movie dataset: {} movies, {} XML nodes",
        doc.children_by_tag(doc.root(), "movie").count(),
        doc.len()
    );
    let wb = Workbench::from_document(doc);
    let stats = wb.engine().index().stats();
    println!(
        "inverted index: {} terms, {} postings, longest list {}\n",
        stats.terms, stats.total_postings, stats.longest_list
    );

    for (label, query_text) in qm_queries() {
        let pipeline = wb.query(&query_text)?.size_bound(10);
        println!("{label} {}: {} results", pipeline.query_text(), pipeline.results().len());
        let single = match pipeline.compare(Algorithm::SingleSwap) {
            Ok(outcome) => outcome,
            Err(XsactError::NoResults { .. } | XsactError::NotEnoughResults { .. }) => continue,
            Err(other) => return Err(other),
        };
        let multi = pipeline.compare(Algorithm::MultiSwap)?;
        println!(
            "    single-swap DoD {:>4}  ({:?});  multi-swap DoD {:>4}  ({:?})",
            single.dod(),
            single.stats.elapsed,
            multi.dod(),
            multi.stats.elapsed
        );
    }

    // Deep dive on one query: print the table for the first three results.
    let (label, query_text) = &qm_queries()[5]; // QM6: war soldier
    match wb.query(query_text)?.take(3).size_bound(8).compare(Algorithm::MultiSwap) {
        Ok(outcome) => {
            println!("\n{label} table for the first {} results:", outcome.labels().len());
            println!("{}", outcome.table());
        }
        Err(XsactError::NoResults { .. } | XsactError::NotEnoughResults { .. }) => {
            println!("\n{label}: not enough results for a deep-dive table");
        }
        Err(other) => return Err(other),
    }
    let cache = wb.cache_stats();
    println!("feature cache after the session: {} extractions, {} hits", cache.misses, cache.hits);
    Ok(())
}
