//! Exploratory search over the IMDB-like movie dataset — the workload the
//! paper's Figure 4 evaluates on, here in interactive-report form: run all
//! eight QM queries, compare the top results of each, show how the two
//! algorithms behave.
//!
//! Run with: `cargo run --example movie_explorer`

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};

fn main() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 250, ..Default::default() }).generate();
    println!(
        "generated movie dataset: {} movies, {} XML nodes",
        doc.children_by_tag(doc.root(), "movie").count(),
        doc.len()
    );
    let engine = SearchEngine::build(doc);
    let stats = engine.index().stats();
    println!(
        "inverted index: {} terms, {} postings, longest list {}\n",
        stats.terms, stats.total_postings, stats.longest_list
    );

    for (label, query_text) in qm_queries() {
        let query = Query::parse(&query_text);
        let results = engine.search(&query);
        println!("{label} {query}: {} results", results.len());
        if results.len() < 2 {
            continue;
        }
        let features: Vec<ResultFeatures> =
            results.iter().map(|r| engine.extract_features(r)).collect();
        let comparison = Comparison::new(&features).size_bound(10);
        let single = comparison.run(Algorithm::SingleSwap);
        let multi = comparison.run(Algorithm::MultiSwap);
        println!(
            "    single-swap DoD {:>4}  ({:?});  multi-swap DoD {:>4}  ({:?})",
            single.dod(),
            single.stats.elapsed,
            multi.dod(),
            multi.stats.elapsed
        );
    }

    // Deep dive on one query: print the table for the first three results.
    let (label, query_text) = &qm_queries()[5]; // QM6: war soldier
    let results = engine.search(&Query::parse(query_text));
    if results.len() >= 2 {
        let features: Vec<ResultFeatures> = results
            .iter()
            .take(3)
            .map(|r| engine.extract_features(r))
            .collect();
        let outcome = Comparison::new(&features).size_bound(8).run(Algorithm::MultiSwap);
        println!("\n{label} table for the first {} results:", features.len());
        println!("{}", outcome.table());
    }
}
