//! The demo paper's Outdoor Retailer scenario: "if a male user wants to buy
//! a jacket and issues a query {men, jackets}, then each result will be a
//! brand selling men's jackets … the user will learn, for example, brand
//! Marmot mainly sells rain jackets, while Columbia focuses on insulated ski
//! jackets."
//!
//! Run with: `cargo run --example outdoor_brands`

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::{OutdoorGen, OutdoorGenConfig};
use xsact_xml::NodeId;

fn main() {
    let doc = OutdoorGen::new(OutdoorGenConfig {
        seed: 7,
        products: (40, 90),
        focus_bias: 0.8,
    })
    .generate();
    println!(
        "generated Outdoor Retailer dataset: {} brands, {} XML nodes",
        doc.children_by_tag(doc.root(), "brand").count(),
        doc.len()
    );
    let engine = SearchEngine::build(doc);

    // Product-level matches for {men, jackets} …
    let results = engine.search(&Query::parse("men jackets"));
    println!("query {{men, jackets}}: {} matching products", results.len());

    // … lifted to the brand level, as the paper's XSeek configuration
    // returns brands.
    let doc = engine.document();
    let mut brands: Vec<NodeId> = Vec::new();
    for r in &results {
        let mut cur = r.root;
        while doc.tag(cur) != "brand" {
            cur = doc.parent(cur).expect("products live under brands");
        }
        if !brands.contains(&cur) {
            brands.push(cur);
        }
    }
    println!("…from {} distinct brands\n", brands.len());

    let features: Vec<ResultFeatures> = brands
        .iter()
        .take(4) // the user compares a handful of brands
        .map(|&b| {
            let name = doc.text_content(doc.child_by_tag(b, "name").expect("brand name"));
            xsact_entity::extract_features(doc, engine.summary(), b, name)
        })
        .collect();

    let outcome = Comparison::new(&features).size_bound(6).run(Algorithm::MultiSwap);
    println!(
        "brand comparison table (DoD = {} of ≤ {}):",
        outcome.dod(),
        outcome.dod_upper_bound()
    );
    println!("{}", outcome.table());

    // Show each brand's dominant subcategory — the "focus" the table
    // surfaces.
    println!("brand focuses (dominant product subcategory):");
    for rf in &features {
        let focus = rf
            .stats
            .iter()
            .filter(|s| s.ty.attribute == "subcategory")
            .map(|s| s.dominant())
            .next();
        if let Some(vc) = focus {
            println!("  {:<12} {} ({} products)", rf.label, vc.value, vc.count);
        }
    }
}
