//! The demo paper's Outdoor Retailer scenario: "if a male user wants to buy
//! a jacket and issues a query {men, jackets}, then each result will be a
//! brand selling men's jackets … the user will learn, for example, brand
//! Marmot mainly sells rain jackets, while Columbia focuses on insulated ski
//! jackets."
//!
//! Run with: `cargo run --example outdoor_brands`

use xsact::prelude::*;
use xsact_data::{OutdoorGen, OutdoorGenConfig};
use xsact_xml::NodeId;

fn main() -> Result<(), XsactError> {
    let doc = OutdoorGen::new(OutdoorGenConfig { seed: 7, products: (40, 90), focus_bias: 0.8 })
        .generate();
    println!(
        "generated Outdoor Retailer dataset: {} brands, {} XML nodes",
        doc.children_by_tag(doc.root(), "brand").count(),
        doc.len()
    );
    let wb = Workbench::from_document(doc);

    // Product-level matches for {men, jackets} …
    let results = wb.query("men jackets")?.results();
    println!("query {{men, jackets}}: {} matching products", results.len());

    // … lifted to the brand level, as the paper's XSeek configuration
    // returns brands.
    let doc = wb.document();
    let mut brands: Vec<NodeId> = Vec::new();
    for r in &results {
        let mut cur = r.root;
        while doc.tag(cur) != "brand" {
            match doc.parent(cur) {
                Some(p) => cur = p,
                None => break, // structurally impossible in this dataset
            }
        }
        if doc.tag(cur) == "brand" && !brands.contains(&cur) {
            brands.push(cur);
        }
    }
    println!("…from {} distinct brands\n", brands.len());

    // The user compares a handful of brands; subtree features go through
    // the workbench cache like any other result.
    let features: Vec<ResultFeatures> = brands
        .iter()
        .take(4)
        .map(|&b| {
            let name = doc
                .child_by_tag(b, "name")
                .map(|n| doc.text_content(n))
                .unwrap_or_else(|| doc.tag(b).to_owned());
            wb.subtree_features(b, name)
        })
        .collect();
    if features.len() < 2 {
        println!("not enough brands to compare");
        return Ok(());
    }

    let outcome = Comparison::new(&features).size_bound(6).run(Algorithm::MultiSwap);
    println!(
        "brand comparison table (DoD = {} of ≤ {}):",
        outcome.dod(),
        outcome.dod_upper_bound()
    );
    println!("{}", outcome.table());

    // Show each brand's dominant subcategory — the "focus" the table
    // surfaces.
    println!("brand focuses (dominant product subcategory):");
    for rf in &features {
        let focus = rf
            .stats
            .iter()
            .filter(|s| s.ty.attribute == "subcategory")
            .map(|s| s.dominant())
            .next();
        if let Some(vc) = focus {
            println!("  {:<12} {} ({} products)", rf.label, vc.value, vc.count);
        }
    }
    Ok(())
}
