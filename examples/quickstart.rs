//! Quickstart: the full XSACT pipeline on the paper's worked example,
//! driven through the `Workbench` facade.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Steps (paper Figure 3): load structured data → keyword search → select
//! results → extract features → generate Differentiation Feature Sets →
//! render the comparison table. Every pipeline failure is a typed
//! `XsactError` — no `unwrap()` anywhere on the happy path.

use xsact::prelude::*;
use xsact_data::fixtures;

fn main() -> Result<(), XsactError> {
    // 1. Load the Figure 1 dataset (two TomTom GPS products with reviews,
    //    plus two filler products). The workbench builds the search engine
    //    (inverted index + structural summary) once for the session.
    let wb = Workbench::from_document(fixtures::figure1_document());

    // 2. Run the paper's query {TomTom, GPS}.
    let pipeline = wb.query(fixtures::PAPER_QUERY)?;
    let results = pipeline.results();
    println!("query {} returned {} results:", pipeline.query_text(), results.len());
    for (i, r) in results.iter().enumerate() {
        println!("  [{}] {}", i + 1, r.label);
    }

    // 3. Extract the feature statistics of each result (the Figure 1
    //    statistics panels). These fill the workbench's feature cache.
    for rf in pipeline.features()? {
        println!("\nstatistics of {}:", rf.label);
        for line in rf.stat_panel(5) {
            println!("  {line}");
        }
    }

    // 4. Generate DFSs with the multi-swap algorithm and print the
    //    comparison table (Figure 2).
    let outcome =
        pipeline.clone().size_bound(fixtures::TABLE_BOUND).compare(Algorithm::MultiSwap)?;
    println!(
        "\ncomparison table (L = {}, DoD = {}, {} rounds):",
        fixtures::TABLE_BOUND,
        outcome.dod(),
        outcome.stats.rounds
    );
    println!("{}", outcome.table());

    // 5. Contrast with the snippet baseline the paper criticises. The
    //    features come straight from the cache this time.
    let snippets =
        pipeline.clone().size_bound(fixtures::SNIPPET_BOUND).compare(Algorithm::Snippet)?;
    println!("snippet baseline DoD = {} — XSACT improves it to {}", snippets.dod(), outcome.dod());
    let stats = wb.cache_stats();
    println!(
        "feature cache: {} extractions, {} cache hits across {} lookups",
        stats.misses,
        stats.hits,
        stats.lookups()
    );
    Ok(())
}
