//! Quickstart: the full XSACT pipeline on the paper's worked example.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Steps (paper Figure 3): load structured data → keyword search → select
//! results → extract features → generate Differentiation Feature Sets →
//! render the comparison table.

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::fixtures;

fn main() {
    // 1. Load the Figure 1 dataset (two TomTom GPS products with reviews,
    //    plus two filler products) and build the search engine: inverted
    //    index + structural summary.
    let doc = fixtures::figure1_document();
    let engine = SearchEngine::build(doc);

    // 2. Run the paper's query {TomTom, GPS}.
    let query = Query::parse(fixtures::PAPER_QUERY);
    let results = engine.search(&query);
    println!("query {query} returned {} results:", results.len());
    for (i, r) in results.iter().enumerate() {
        println!("  [{}] {}", i + 1, r.label);
    }

    // 3. Extract the feature statistics of each result (the Figure 1
    //    statistics panels).
    let features: Vec<ResultFeatures> =
        results.iter().map(|r| engine.extract_features(r)).collect();
    for rf in &features {
        println!("\nstatistics of {}:", rf.label);
        for line in rf.stat_panel(5) {
            println!("  {line}");
        }
    }

    // 4. Generate DFSs with the multi-swap algorithm and print the
    //    comparison table (Figure 2).
    let outcome = Comparison::new(&features)
        .size_bound(fixtures::TABLE_BOUND)
        .run(Algorithm::MultiSwap);
    println!(
        "\ncomparison table (L = {}, DoD = {}, {} rounds):",
        fixtures::TABLE_BOUND,
        outcome.dod(),
        outcome.stats.rounds
    );
    println!("{}", outcome.table());

    // 5. Contrast with the snippet baseline the paper criticises.
    let snippets = Comparison::new(&features)
        .size_bound(fixtures::SNIPPET_BOUND)
        .run(Algorithm::Snippet);
    println!(
        "snippet baseline DoD = {} — XSACT improves it to {}",
        snippets.dod(),
        outcome.dod()
    );
}
