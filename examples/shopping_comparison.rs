//! Online-shopping scenario on the synthetic Product Reviews dataset
//! (buzzillions.com substitute): search for GPS devices, compare what
//! reviewers actually say about each.
//!
//! Run with: `cargo run --example shopping_comparison`

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::{ReviewsGen, ReviewsGenConfig};

fn main() {
    let doc = ReviewsGen::new(ReviewsGenConfig {
        seed: 2010, // the year the paper appeared
        products: 27,
        reviews: (15, 90),
    })
    .generate();
    println!(
        "generated Product Reviews dataset: {} products, {} XML nodes",
        doc.children_by_tag(doc.root(), "product").count(),
        doc.len()
    );
    let engine = SearchEngine::build(doc);

    for query_text in ["TomTom GPS", "Garmin GPS", "Nokia phone"] {
        let query = Query::parse(query_text);
        let results = engine.search(&query);
        println!("\n=== query {query}: {} results", results.len());
        if results.len() < 2 {
            println!("    (need at least two results to compare)");
            continue;
        }

        // A shopper ticks the first few checkboxes and hits "comparison".
        let selected = &results[..results.len().min(3)];
        let features: Vec<ResultFeatures> =
            selected.iter().map(|r| engine.extract_features(r)).collect();

        for algorithm in [Algorithm::Snippet, Algorithm::SingleSwap, Algorithm::MultiSwap] {
            let outcome =
                Comparison::new(&features).size_bound(8).run(algorithm);
            println!(
                "    {:<12} DoD = {:>3}  ({} rounds, {} moves, {:?})",
                algorithm.name(),
                outcome.dod(),
                outcome.stats.rounds,
                outcome.stats.moves,
                outcome.stats.elapsed
            );
            if algorithm == Algorithm::MultiSwap {
                println!("{}", outcome.table());
            }
        }
    }
}
