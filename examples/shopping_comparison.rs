//! Online-shopping scenario on the synthetic Product Reviews dataset
//! (buzzillions.com substitute): search for GPS devices, compare what
//! reviewers actually say about each.
//!
//! Run with: `cargo run --example shopping_comparison`

use xsact::prelude::*;
use xsact_data::{ReviewsGen, ReviewsGenConfig};

fn main() -> Result<(), XsactError> {
    let doc = ReviewsGen::new(ReviewsGenConfig {
        seed: 2010, // the year the paper appeared
        products: 27,
        reviews: (15, 90),
    })
    .generate();
    println!(
        "generated Product Reviews dataset: {} products, {} XML nodes",
        doc.children_by_tag(doc.root(), "product").count(),
        doc.len()
    );
    let wb = Workbench::from_document(doc);

    for query_text in ["TomTom GPS", "Garmin GPS", "Nokia phone"] {
        // A shopper ticks the first few checkboxes and hits "comparison".
        let pipeline = wb.query(query_text)?.take(3).size_bound(8);
        let results = pipeline.results();
        println!("\n=== query {}: {} results", pipeline.query_text(), results.len());

        for algorithm in [Algorithm::Snippet, Algorithm::SingleSwap, Algorithm::MultiSwap] {
            let outcome = match pipeline.compare(algorithm) {
                Ok(outcome) => outcome,
                Err(XsactError::NoResults { .. } | XsactError::NotEnoughResults { .. }) => {
                    println!("    (need at least two results to compare)");
                    break;
                }
                Err(other) => return Err(other),
            };
            println!(
                "    {:<12} DoD = {:>3}  ({} rounds, {} moves, {:?})",
                algorithm.name(),
                outcome.dod(),
                outcome.stats.rounds,
                outcome.stats.moves,
                outcome.stats.elapsed
            );
            if algorithm == Algorithm::MultiSwap {
                println!("{}", outcome.table());
            }
        }
    }
    let stats = wb.cache_stats();
    println!(
        "session cache: {} results extracted once, {} repeat lookups served from cache",
        stats.misses, stats.hits
    );
    Ok(())
}
