//! The paper's "employee hiring / job hunting" motivating domain: search a
//! job board for senior engineering roles, then compare the *companies* —
//! which skills does each actually hire for, which benefits do they offer?
//!
//! Run with: `cargo run --example job_hunting`

use xsact::prelude::*;
use xsact_data::{JobsGen, JobsGenConfig};
use xsact_xml::NodeId;

fn main() -> Result<(), XsactError> {
    let doc =
        JobsGen::new(JobsGenConfig { seed: 17, openings: (12, 40), focus_bias: 0.75 }).generate();
    println!(
        "generated job board: {} companies, {} XML nodes",
        doc.children_by_tag(doc.root(), "company").count(),
        doc.len()
    );
    let wb = Workbench::from_document(doc);

    // A candidate looks for senior engineer roles…
    let pipeline = wb.query("senior engineer")?;
    let results = pipeline.results();
    println!("query {}: {} matching openings", pipeline.query_text(), results.len());

    // …and compares the companies behind them.
    let doc = wb.document();
    let mut companies: Vec<NodeId> = Vec::new();
    for r in &results {
        let mut cur = r.root;
        while doc.tag(cur) != "company" {
            match doc.parent(cur) {
                Some(p) => cur = p,
                None => break, // structurally impossible in this dataset
            }
        }
        if doc.tag(cur) == "company" && !companies.contains(&cur) {
            companies.push(cur);
        }
    }
    println!("…at {} distinct companies\n", companies.len());

    let features: Vec<ResultFeatures> = companies
        .iter()
        .take(4)
        .map(|&c| {
            let name = doc
                .child_by_tag(c, "name")
                .map(|n| doc.text_content(n))
                .unwrap_or_else(|| doc.tag(c).to_owned());
            wb.subtree_features(c, name)
        })
        .collect();
    if features.len() < 2 {
        println!("not enough companies to compare");
        return Ok(());
    }

    for algorithm in [Algorithm::Snippet, Algorithm::MultiSwap] {
        let outcome = Comparison::new(&features).size_bound(7).run(algorithm);
        println!(
            "{:<11} DoD = {} (upper bound {})",
            algorithm.name(),
            outcome.dod(),
            outcome.dod_upper_bound()
        );
        if algorithm == Algorithm::MultiSwap {
            println!("{}", outcome.table());
        }
    }

    // The hiring-focus summary the table reveals.
    println!("dominant required skill per company:");
    for rf in &features {
        if let Some(stat) = rf.stats.iter().find(|s| s.ty.attribute == "requirements:skill") {
            let top = stat.dominant();
            println!("  {:<16} {} ({} openings mention it)", rf.label, top.value, top.count);
        }
    }
    Ok(())
}
