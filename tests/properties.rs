//! Property-based tests over the whole stack.
//!
//! The offline build has no `proptest`, so these are hand-rolled property
//! loops: each test draws a few hundred random cases from the workspace's
//! deterministic `rand` shim (fixed seeds → reproducible failures; a
//! failing case is identified by its seed in the assertion message).
//!
//! The high-value invariants:
//! * XML writer ∘ parser is the identity on compact output;
//! * the Indexed Lookup Eager SLCA equals the full-scan oracle on random
//!   documents and queries;
//! * the interned flat-substrate index (term interner + postings arena)
//!   is observably identical to a string-keyed `HashMap` index built the
//!   seed way, and SLCA over either produces the same results;
//! * the delta-bit-packed posting frames are observably identical to the
//!   flat-arena decode — iteration, the frame-skip gallop (down to the
//!   `ExecutorStats` counters) and the scorer's id-interval fast path;
//! * the dispatched SIMD kernels agree with their scalar oracles on random
//!   masks and the all-zero/all-one extremes;
//! * every algorithm produces valid, size-bounded DFS sets;
//! * the local searches never fall below their snippet starting point and
//!   reach their respective optimality criteria;
//! * multi-swap matches the exhaustive optimum on tiny instances.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use xsact_core::{
    dod_total, is_multi_swap_optimal, is_single_swap_optimal, run_algorithm, Algorithm, Comparison,
    DfsConfig, Instance,
};
use xsact_entity::{FeatureType, ResultFeatures};
use xsact_index::{
    rank_results, rank_top_k, slca_full_scan, slca_indexed_lookup, InvertedIndex, PlanFragments,
    Query, QueryPlan, ResultSemantics, SearchEngine,
};
use xsact_xml::{parse_document, writer, Document, NodeId};

// ---------------------------------------------------------------- XML layer

/// Random tag names from a tiny alphabet (collisions intended — repeated
/// sibling tags exercise the entity classifier and SLCA dedup paths).
const TAGS: [&str; 5] = ["a", "b", "c", "item", "group"];

fn random_tag(rng: &mut StdRng) -> String {
    TAGS[rng.random_range(0..TAGS.len())].to_owned()
}

/// Printable-ASCII text including XML-special characters.
fn random_text(rng: &mut StdRng) -> String {
    let len = rng.random_range(0..=12usize);
    (0..len).map(|_| rng.random_range(b' '..=b'~') as char).collect()
}

/// Adds a random subtree under `parent`: depth-bounded, 0..5 children per
/// element, with text and empty-element leaves.
fn build_random_tree(doc: &mut Document, rng: &mut StdRng, parent: NodeId, depth: usize) {
    if depth == 0 || rng.random_bool(0.3) {
        // Leaf: text or an empty element.
        if rng.random_bool(0.5) {
            // Whitespace-only runs are dropped by the tokenizer, and two
            // adjacent text runs merge into one on reparse — skip both
            // cases so the round-trip comparison is exact.
            let t = random_text(rng);
            let last_is_text = doc.children(parent).last().is_some_and(|&c| !doc.is_element(c));
            if !t.trim().is_empty() && !last_is_text {
                doc.add_text(parent, t.trim().to_owned());
            }
        } else {
            let tag = random_tag(rng);
            doc.add_element(parent, tag);
        }
        return;
    }
    let tag = random_tag(rng);
    let el = doc.add_element(parent, tag);
    let children = rng.random_range(0..5usize);
    for _ in 0..children {
        build_random_tree(doc, rng, el, depth - 1);
    }
}

fn random_document(rng: &mut StdRng) -> Document {
    let mut doc = Document::new("root");
    let root = doc.root();
    let top_level = rng.random_range(0..6usize);
    for _ in 0..top_level {
        build_random_tree(&mut doc, rng, root, 4);
    }
    doc
}

#[test]
fn xml_write_parse_round_trip() {
    for seed in 0..64u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let xml = writer::write_document(&doc, &writer::WriteOptions::compact());
        let reparsed = parse_document(&xml).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let xml2 = writer::write_document(&reparsed, &writer::WriteOptions::compact());
        assert_eq!(xml, xml2, "seed {seed}");
        assert_eq!(doc.len(), reparsed.len(), "seed {seed}");
    }
}

#[test]
fn pretty_output_parses_to_same_structure() {
    for seed in 0..64u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let pretty = writer::write_document(&doc, &writer::WriteOptions::pretty());
        let reparsed = parse_document(&pretty).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Element count is preserved (text may gain/lose layout whitespace).
        let elements = |d: &Document| d.all_nodes().filter(|&n| d.is_element(n)).count();
        assert_eq!(elements(&doc), elements(&reparsed), "seed {seed}");
    }
}

#[test]
fn slca_implementations_agree() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        // Query the most common tags — they are guaranteed to have postings
        // in most generated documents, and missing terms are a valid case
        // too.
        let terms = ["a", "item", "root", "b"];
        // Inclusive of terms.len(), so 4-keyword queries (and the last
        // declared term) are actually exercised.
        let term_count = rng.random_range(1..=terms.len());
        let decoded: Vec<Vec<NodeId>> =
            terms.iter().take(term_count).map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let full = slca_full_scan(&doc, &lists);
        let eager = slca_indexed_lookup(&doc, &lists);
        assert_eq!(full, eager, "seed {seed}, {term_count} terms");
    }
}

#[test]
fn every_slca_is_an_elca() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        let terms = ["a", "item", "b", "group"];
        // Inclusive of terms.len(), so 4-keyword queries (and the last
        // declared term) are actually exercised.
        let term_count = rng.random_range(1..=terms.len());
        let decoded: Vec<Vec<NodeId>> =
            terms.iter().take(term_count).map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let slca = slca_full_scan(&doc, &lists);
        let elca = xsact_index::elca_full_scan(&doc, &lists);
        for n in &slca {
            assert!(elca.contains(n), "seed {seed}: SLCA {n:?} missing from ELCA set");
        }
        // ELCA nodes are never proper descendants of an SLCA node (the
        // smallest witnesses sit at or below every exclusive one).
        for e in &elca {
            for s in &slca {
                assert!(
                    !doc.dewey(*s).is_ancestor_of(doc.dewey(*e)) || e == s || !slca.contains(e),
                    "seed {seed}: ELCA below an SLCA"
                );
            }
        }
    }
}

/// A string-keyed inverted index built exactly the way the seed did it —
/// `HashMap<String, Vec<NodeId>>`, owned `String` terms, per-node
/// `tokenize_unique` — used as the oracle for the interned index.
fn string_keyed_oracle(doc: &Document) -> std::collections::HashMap<String, Vec<NodeId>> {
    use std::collections::HashMap;
    let mut postings: HashMap<String, Vec<NodeId>> = HashMap::new();
    let add_terms = |postings: &mut HashMap<String, Vec<NodeId>>, text: &str, node: NodeId| {
        for term in xsact_index::lexer::tokenize_unique(text) {
            postings.entry(term).or_default().push(node);
        }
    };
    for node in doc.all_nodes() {
        if doc.is_element(node) {
            let mut text = String::from(doc.tag(node));
            for (name, value) in doc.attrs(node) {
                text.push(' ');
                text.push_str(name);
                text.push(' ');
                text.push_str(value);
            }
            add_terms(&mut postings, &text, node);
        } else if let Some(t) = doc.text(node) {
            if let Some(parent) = doc.parent(node) {
                add_terms(&mut postings, t, parent);
            }
        }
    }
    for list in postings.values_mut() {
        list.sort_by(|&a, &b| doc.dewey(a).cmp(&doc.dewey(b)));
        list.dedup();
    }
    postings
}

#[test]
fn interned_index_matches_string_keyed_oracle() {
    for seed in 0..64u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let idx = InvertedIndex::build(&doc);
        let oracle = string_keyed_oracle(&doc);
        assert_eq!(idx.term_count(), oracle.len(), "seed {seed}: term universes differ");
        for (term, list) in &oracle {
            assert_eq!(idx.postings(term), list.as_slice(), "seed {seed} term {term:?}");
            assert!(idx.contains(term), "seed {seed} term {term:?}");
        }
        // Dictionary iteration covers exactly the oracle's terms, sorted.
        let dict: Vec<&str> = idx.terms().collect();
        let mut expected: Vec<&str> = oracle.keys().map(String::as_str).collect();
        expected.sort_unstable();
        assert_eq!(dict, expected, "seed {seed}");
    }
}

#[test]
fn slca_over_interned_postings_matches_oracle_lists() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        let oracle = string_keyed_oracle(&doc);
        let terms = ["a", "item", "root", "b"];
        // Inclusive of terms.len(), so 4-keyword queries (and the last
        // declared term) are actually exercised.
        let term_count = rng.random_range(1..=terms.len());
        let empty: Vec<NodeId> = Vec::new();
        let interned_decoded: Vec<Vec<NodeId>> =
            terms.iter().take(term_count).map(|t| idx.postings(t).to_vec()).collect();
        let interned: Vec<&[NodeId]> = interned_decoded.iter().map(Vec::as_slice).collect();
        let string_keyed: Vec<&[NodeId]> = terms
            .iter()
            .take(term_count)
            .map(|t| oracle.get(*t).unwrap_or(&empty).as_slice())
            .collect();
        assert_eq!(
            slca_indexed_lookup(&doc, &interned),
            slca_indexed_lookup(&doc, &string_keyed),
            "seed {seed}: SLCA differs between substrates"
        );
        assert_eq!(
            slca_full_scan(&doc, &interned),
            slca_full_scan(&doc, &string_keyed),
            "seed {seed}: full-scan SLCA differs between substrates"
        );
    }
}

// ------------------------------------------------ streaming top-k executor
//
// The gallop executor (QueryPlan + SlcaStream + the bounded top-k heap)
// must be observably identical to the batch oracles: slca_full_scan /
// elca_full_scan for the match set, and rank_results' full sort truncated
// at k for the ranking — for every k, tied scores included.

/// A random query over the generator's tag universe: 1–4 terms, sometimes
/// including `missing`, which never occurs in any generated document (so
/// the zero-postings short-circuit is exercised as a matter of course).
fn random_query(rng: &mut StdRng) -> Query {
    let universe = ["a", "item", "root", "b", "group", "missing"];
    let term_count = rng.random_range(1..=4usize);
    let start = rng.random_range(0..universe.len() - term_count + 1);
    Query::from_terms(universe[start..start + term_count].iter())
}

#[test]
fn gallop_stream_matches_the_full_scan_oracle() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        let query = random_query(&mut rng);
        let decoded: Vec<Vec<NodeId>> = query.iter().map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let oracle = slca_full_scan(&doc, &lists);
        let plan = QueryPlan::new(&idx, &query);
        let mut stream = plan.stream(&doc);
        let streamed: Vec<NodeId> = stream.by_ref().collect();
        assert_eq!(streamed, oracle, "seed {seed}, query {query}");
        if plan.is_empty() {
            assert!(oracle.is_empty(), "seed {seed}: planner may only prune hopeless queries");
            assert!(stream.stats().is_zero(), "seed {seed}: short-circuit must cost nothing");
        } else {
            assert_eq!(
                stream.stats().postings_scanned,
                plan.driver_len() as u64,
                "seed {seed}: the driver list is walked exactly once"
            );
        }
    }
}

#[test]
fn search_top_k_matches_the_ranked_oracle_for_both_semantics() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let engine = SearchEngine::build(doc);
        let query = random_query(&mut rng);
        for semantics in [ResultSemantics::Slca, ResultSemantics::Elca] {
            // Oracle: the unbounded search (full-scan ELCA / batch SLCA),
            // ranked by the sort-everything path.
            let results = engine.search_with(&query, semantics);
            let roots: Vec<NodeId> = results.iter().map(|r| r.root).collect();
            let scored = rank_results(engine.document(), engine.index(), &query, &roots);
            let full = engine.search_top_k(&query, usize::MAX, semantics);
            assert_eq!(
                full.hits.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
                scored,
                "seed {seed} {semantics:?}: unbounded executor vs full sort"
            );
            assert_eq!(full.hits.len(), results.len(), "seed {seed} {semantics:?}");
            // Every truncation equals the full run's prefix.
            for k in 0..=full.hits.len() + 1 {
                let bounded = engine.search_top_k(&query, k, semantics);
                assert_eq!(
                    bounded.hits,
                    full.hits[..k.min(full.hits.len())],
                    "seed {seed} {semantics:?} k = {k}"
                );
            }
        }
    }
}

/// Batch-level plan sharing is invisible in the results: running a batch
/// of random queries through one shared [`PlanFragments`] table produces
/// rankings and legacy executor counters identical to independent
/// execution, for both semantics — only `postings_shared` may differ
/// (and must whenever the batch repeats a term).
#[test]
fn shared_plan_fragments_match_independent_execution() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let engine = SearchEngine::build(doc);
        let queries: Vec<Query> =
            (0..rng.random_range(2..=6usize)).map(|_| random_query(&mut rng)).collect();
        for semantics in [ResultSemantics::Slca, ResultSemantics::Elca] {
            let mut fragments = PlanFragments::new();
            let mut repeated_terms = false;
            let mut seen: Vec<String> = Vec::new();
            for (q, query) in queries.iter().enumerate() {
                // Predict whether this query shares: planning resolves
                // terms in order and short-circuits after the first empty
                // list, so only terms up to (and including) that one enter
                // the fragment table.
                for term in query.iter() {
                    let empty = engine.index().postings(term).is_empty();
                    if seen.iter().any(|s| s == term) {
                        // `shared_entries` counts posting *entries*
                        // resolved from the table, so only a repeat of a
                        // non-empty list registers.
                        repeated_terms |= !empty;
                    } else {
                        seen.push(term.to_owned());
                    }
                    if empty {
                        break;
                    }
                }
                let k = rng.random_range(0..=5usize);
                let independent = engine.search_top_k(query, k, semantics);
                let shared = engine.search_top_k_shared(query, k, semantics, &mut fragments);
                assert_eq!(
                    shared.hits, independent.hits,
                    "seed {seed} {semantics:?} query {q}: sharing changed the ranking"
                );
                assert_eq!(
                    (
                        shared.stats.postings_scanned,
                        shared.stats.gallop_probes,
                        shared.stats.candidates_pruned,
                    ),
                    (
                        independent.stats.postings_scanned,
                        independent.stats.gallop_probes,
                        independent.stats.candidates_pruned,
                    ),
                    "seed {seed} {semantics:?} query {q}: sharing changed the work counters"
                );
                assert_eq!(
                    independent.stats.postings_shared, 0,
                    "independent execution never reports sharing"
                );
            }
            if repeated_terms {
                assert!(
                    fragments.shared_entries() > 0,
                    "seed {seed} {semantics:?}: a repeated term must be resolved via the table"
                );
            } else {
                assert_eq!(
                    fragments.shared_entries(),
                    0,
                    "seed {seed} {semantics:?}: no repeats, nothing shared"
                );
            }
        }
    }
}

#[test]
fn rank_top_k_equals_the_truncated_full_sort_on_random_documents() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        let query = random_query(&mut rng);
        // Every element is a candidate root — the tiny tag alphabet makes
        // structurally identical subtrees (and therefore bitwise-tied
        // scores) common, which is exactly what the heap's tie-break must
        // survive.
        let roots: Vec<NodeId> = doc.all_nodes().filter(|&n| doc.is_element(n)).collect();
        let full = rank_results(&doc, &idx, &query, &roots);
        for k in 0..=full.len() {
            let top = rank_top_k(&doc, &idx, &query, roots.iter().copied(), k);
            assert_eq!(top, full[..k], "seed {seed} k = {k}");
        }
    }
}

#[test]
fn rank_top_k_breaks_deliberate_ties_like_the_full_sort() {
    // Sixteen structurally identical siblings: sixteen bitwise-equal
    // scores, so every prefix is decided purely by the Dewey tie-break.
    let xml = format!("<r>{}</r>", "<s><t>gps</t></s>".repeat(16));
    let doc = parse_document(&xml).unwrap();
    let idx = InvertedIndex::build(&doc);
    let query = Query::parse("gps");
    let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
    let full = rank_results(&doc, &idx, &query, &roots);
    assert!(full.windows(2).all(|w| w[0].score == w[1].score), "fixture must tie every score");
    for k in 0..=full.len() {
        // Feed the roots in reverse to prove input order cannot leak
        // through the bounded heap either.
        let top = rank_top_k(&doc, &idx, &query, roots.iter().rev().copied(), k);
        assert_eq!(top, full[..k], "k = {k}");
    }
}

#[test]
fn v1_index_files_always_rejected() {
    // Whatever the document, a version-1 header must be refused with the
    // typed "unsupported index version" error, not parsed as garbage.
    for seed in 0..16u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"XIDX");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&xsact_index::document_fingerprint(&doc).to_le_bytes());
        v1.extend_from_slice(&0u32.to_le_bytes());
        let err = xsact_index::load_index(&doc, &mut v1.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported index version 1"),
            "seed {seed}: unexpected error {err}"
        );
    }
}

#[test]
fn index_persistence_round_trips() {
    for seed in 0..64u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let idx = InvertedIndex::build(&doc);
        let mut bytes = Vec::new();
        xsact_index::save_index(&doc, &idx, &mut bytes).expect("in-memory write");
        let loaded = xsact_index::load_index(&doc, &mut bytes.as_slice()).expect("load");
        assert_eq!(loaded.term_count(), idx.term_count(), "seed {seed}");
        for term in ["a", "b", "item", "group", "root"] {
            assert_eq!(loaded.postings(term), idx.postings(term), "seed {seed} term {term}");
        }
    }
}

// ------------------------------------------- packed postings vs flat oracle
//
// The `.xidx` v3 index stores postings as delta-bit-packed 128-entry
// frames; the invariant the whole PR rests on is that no observable output
// changes: frame-decoded iteration equals the flat decode, the frame-skip
// gallop produces the same SLCA stream with the *same* ExecutorStats, and
// the scorer's id-interval fast path ranks exactly like the Dewey-interval
// fallback.

#[test]
fn packed_postings_iteration_matches_flat_decode() {
    for seed in 0..64u64 {
        let doc = random_document(&mut StdRng::seed_from_u64(seed));
        let idx = InvertedIndex::build(&doc);
        for (term, p) in idx.dictionary() {
            let flat = p.to_vec();
            assert_eq!(p.len(), flat.len(), "seed {seed} term {term:?}");
            let iterated: Vec<NodeId> = p.iter().collect();
            assert_eq!(iterated, flat, "seed {seed} term {term:?}: iteration diverges");
            for (i, &n) in flat.iter().enumerate() {
                assert_eq!(p.get(i), n, "seed {seed} term {term:?} position {i}");
            }
        }
    }
}

#[test]
fn packed_gallop_matches_flat_gallop_with_identical_stats() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        let query = random_query(&mut rng);
        let decoded: Vec<Vec<NodeId>> = query.iter().map(|t| idx.postings(t).to_vec()).collect();
        let flat_lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let packed_plan = QueryPlan::new(&idx, &query);
        let flat_plan = QueryPlan::from_lists(flat_lists);
        let mut packed = packed_plan.stream(&doc);
        let mut flat = flat_plan.stream(&doc);
        let packed_out: Vec<NodeId> = packed.by_ref().collect();
        let flat_out: Vec<NodeId> = flat.by_ref().collect();
        assert_eq!(packed_out, flat_out, "seed {seed} query {query}: SLCA stream diverges");
        assert_eq!(
            packed.stats(),
            flat.stats(),
            "seed {seed} query {query}: executor stats diverge between packed and flat"
        );
    }
}

#[test]
fn scorer_fast_path_matches_flat_fallback_rankings() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_document(&mut rng);
        let idx = InvertedIndex::build(&doc);
        // The same postings fed through `from_term_lists` lose the
        // document-order guarantee, so the scorer takes the Dewey-interval
        // fallback — both paths must produce bitwise-equal scores.
        let entries: Vec<(String, Vec<NodeId>)> =
            idx.dictionary().map(|(t, p)| (t.to_owned(), p.to_vec())).collect();
        let flat_idx = InvertedIndex::from_term_lists(entries);
        let query = random_query(&mut rng);
        let roots: Vec<NodeId> = doc.all_nodes().filter(|&n| doc.is_element(n)).collect();
        let fast = rank_results(&doc, &idx, &query, &roots);
        let slow = rank_results(&doc, &flat_idx, &query, &roots);
        assert_eq!(fast, slow, "seed {seed} query {query}: scorer fast path diverges");
    }
}

// ------------------------------------------------ SIMD kernels vs scalar
//
// The dispatched popcount/range kernels must agree with the scalar oracle
// on every input — random masks, the all-zero/all-one extremes, and every
// length around the short-slice bypass and the SIMD block boundaries.

#[test]
fn simd_popcount_kernels_match_scalar_on_random_masks() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(0..48usize);
        let word = |rng: &mut StdRng| match rng.random_range(0..4u32) {
            0 => 0u64,
            1 => u64::MAX,
            2 => rng.next_u64() & 0x0101_0101_0101_0101,
            _ => rng.next_u64(),
        };
        let a: Vec<u64> = (0..len).map(|_| word(&mut rng)).collect();
        let b: Vec<u64> = (0..len).map(|_| word(&mut rng)).collect();
        let c: Vec<u64> = (0..len).map(|_| word(&mut rng)).collect();
        assert_eq!(
            xsact_kernel::and2_count(&a, &b),
            xsact_kernel::scalar::and2_count(&a, &b),
            "seed {seed} len {len}: and2"
        );
        assert_eq!(
            xsact_kernel::and3_count(&a, &b, &c),
            xsact_kernel::scalar::and3_count(&a, &b, &c),
            "seed {seed} len {len}: and3"
        );
    }
    // The extremes at a length well past every block boundary.
    let zeros = vec![0u64; 37];
    let ones = vec![u64::MAX; 37];
    assert_eq!(xsact_kernel::and2_count(&zeros, &ones), 0);
    assert_eq!(xsact_kernel::and2_count(&ones, &ones), 37 * 64);
    assert_eq!(xsact_kernel::and3_count(&ones, &ones, &zeros), 0);
    assert_eq!(xsact_kernel::and3_count(&ones, &ones, &ones), 37 * 64);
}

#[test]
fn simd_range_count_matches_scalar_on_random_values() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(0..80usize);
        let vals: Vec<u32> = (0..len)
            .map(|_| match rng.random_range(0..3u32) {
                0 => rng.random_range(0..64u32),
                1 => u32::MAX - rng.random_range(0..64u32),
                _ => rng.next_u64() as u32,
            })
            .collect();
        let (x, y) = (rng.next_u64() as u32, rng.next_u64() as u32);
        let (lo, hi) = (x.min(y), x.max(y));
        for (l, h) in [(lo, hi), (0, u32::MAX), (hi, hi), (0, 0)] {
            assert_eq!(
                xsact_kernel::count_in_range_u32(&vals, l, h),
                xsact_kernel::scalar::count_in_range_u32(&vals, l, h),
                "seed {seed} len {len} range [{l}, {h})"
            );
        }
    }
}

// ----------------------------------------------------------- DFS algorithms

const ENTITIES: [&str; 3] = ["e0", "e1", "e2"];
const ATTRS: [&str; 5] = ["p", "q", "r", "s", "t"];

/// A random result: per (entity, attr), an occurrence count in 0..=10
/// (0 = type absent). All entities have 10 instances.
fn make_features(label: String, rng: &mut StdRng) -> ResultFeatures {
    let mut triplets = Vec::new();
    for i in 0..ENTITIES.len() * ATTRS.len() {
        let c = rng.random_range(0..=10u32);
        if c == 0 {
            continue;
        }
        let e = ENTITIES[i / ATTRS.len()];
        let a = ATTRS[i % ATTRS.len()];
        triplets.push((FeatureType::new(e, a), "yes".to_string(), c));
    }
    ResultFeatures::from_raw(label, ENTITIES.iter().map(|e| (e.to_string(), 10u32)), triplets)
}

fn random_instance(rng: &mut StdRng) -> Instance {
    let result_count = rng.random_range(2..4usize);
    let features: Vec<ResultFeatures> =
        (0..result_count).map(|i| make_features(format!("r{i}"), rng)).collect();
    let bound = rng.random_range(1..8usize);
    let threshold = [5.0f64, 10.0, 25.0][rng.random_range(0..3usize)];
    Instance::build(&features, DfsConfig { size_bound: bound, threshold_pct: threshold })
}

#[test]
fn all_algorithms_produce_valid_sets() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        for algo in Algorithm::ALL {
            let (set, _) = run_algorithm(&inst, algo);
            assert!(set.all_valid(&inst), "seed {seed}: {} violated validity", algo.name());
        }
    }
}

#[test]
fn local_searches_never_lose_to_snippets() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        let (snippet, _) = run_algorithm(&inst, Algorithm::Snippet);
        let base = dod_total(&inst, &snippet);
        for algo in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
            let (set, _) = run_algorithm(&inst, algo);
            assert!(dod_total(&inst, &set) >= base, "seed {seed}: {} lost to snippet", algo.name());
        }
    }
}

#[test]
fn single_swap_reaches_its_criterion() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        let (set, _) = run_algorithm(&inst, Algorithm::SingleSwap);
        assert!(is_single_swap_optimal(&inst, &set), "seed {seed}");
    }
}

#[test]
fn multi_swap_reaches_its_criterion() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        let (set, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        assert!(is_multi_swap_optimal(&inst, &set), "seed {seed}");
        // Multi-swap optimality subsumes single-swap optimality.
        assert!(is_single_swap_optimal(&inst, &set), "seed {seed}");
    }
}

#[test]
fn dod_is_symmetric_and_bounded() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        let (set, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        let n = inst.result_count();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(
                    xsact_core::dod_pair(&inst, &set, i, j),
                    xsact_core::dod_pair(&inst, &set, j, i),
                    "seed {seed}"
                );
            }
        }
        assert!(dod_total(&inst, &set) <= xsact_core::dod_upper_bound(&inst), "seed {seed}");
    }
}

#[test]
fn dfs_sizes_respect_bound() {
    for seed in 0..96u64 {
        let inst = random_instance(&mut StdRng::seed_from_u64(seed));
        for algo in Algorithm::ALL {
            let (set, _) = run_algorithm(&inst, algo);
            for i in 0..set.len() {
                assert!(set.dfs(i).size() <= inst.config.size_bound, "seed {seed}");
            }
        }
    }
}

// ------------------------------------------------- bitset kernel vs oracle
//
// The DoD kernels are word-parallel popcount loops over the instance's bit
// matrix and the DfsSet's incrementally-maintained selection masks. The
// oracle below recomputes everything the seed way — `Vec<bool>` masks
// rebuilt from scratch and scalar triple loops — and must agree bit for bit
// after every mutation of a random grow/shrink/replace sequence.

fn oracle_masks(inst: &Instance, set: &xsact_core::DfsSet) -> Vec<Vec<bool>> {
    (0..set.len()).map(|i| set.dfs(i).selection_mask(inst, i)).collect()
}

fn oracle_dod_total(inst: &Instance, masks: &[Vec<bool>]) -> u32 {
    let n = masks.len();
    let mut total = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += (0..inst.type_count())
                .filter(|&t| masks[i][t] && masks[j][t] && inst.differentiable(i, j, t))
                .count() as u32;
        }
    }
    total
}

fn oracle_weights(inst: &Instance, masks: &[Vec<bool>], i: usize) -> Vec<u32> {
    let mut weights = vec![0u32; inst.type_count()];
    for (j, mask) in masks.iter().enumerate() {
        if j == i {
            continue;
        }
        for (t, w) in weights.iter_mut().enumerate() {
            if mask[t] && inst.results[i].has_type(t) && inst.differentiable(i, j, t) {
                *w += 1;
            }
        }
    }
    weights
}

#[test]
fn bitset_kernel_matches_scalar_oracle_under_random_mutation() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        let n = inst.result_count();
        let entity_count = inst.entities.len();
        let mut set = xsact_core::DfsSet::empty(&inst);
        for step in 0..40 {
            let i = rng.random_range(0..n);
            let e = rng.random_range(0..entity_count);
            match rng.random_range(0..4u32) {
                0 | 1 => {
                    set.grow(&inst, i, e);
                }
                2 => {
                    set.shrink(&inst, i, e);
                }
                _ => {
                    let prefixes: Vec<usize> =
                        (0..entity_count).map(|_| rng.random_range(0..4usize)).collect();
                    set.replace(&inst, i, xsact_core::Dfs::from_prefixes(&inst, i, &prefixes));
                }
            }
            // Masks: the incremental word rows equal freshly-built masks.
            let masks = oracle_masks(&inst, &set);
            assert!(set.masks_consistent(&inst), "seed {seed} step {step}: mask drift");
            for (i, mask) in masks.iter().enumerate() {
                for (t, &sel) in mask.iter().enumerate() {
                    let bit = set.mask(i)[t / 64] >> (t % 64) & 1 != 0;
                    assert_eq!(bit, sel, "seed {seed} step {step} result {i} type {t}");
                }
            }
            // Totals and weights: popcount kernels equal the scalar oracle.
            assert_eq!(
                dod_total(&inst, &set),
                oracle_dod_total(&inst, &masks),
                "seed {seed} step {step}: dod_total"
            );
            for i in 0..n {
                let expected = oracle_weights(&inst, &masks, i);
                assert_eq!(
                    xsact_core::all_type_weights(&inst, &set, i),
                    expected,
                    "seed {seed} step {step}: weights of result {i}"
                );
                // toggle_delta is the same quantity read pointwise (the
                // differentiability bit implies the has-type guard).
                for (t, &w) in expected.iter().enumerate() {
                    assert_eq!(
                        xsact_core::toggle_delta(&inst, &set, i, t),
                        w,
                        "seed {seed} step {step}: toggle_delta({i}, {t})"
                    );
                }
            }
        }
    }
}

#[test]
fn annealing_is_valid_and_monotone() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        let anneal_seed = rng.random_range(0..32u64);
        let start = xsact_core::snippet_set(&inst);
        let start_dod = dod_total(&inst, &start);
        let cfg = xsact_core::AnnealingConfig {
            seed: anneal_seed,
            iterations: 300,
            ..Default::default()
        };
        let (set, dod) = xsact_core::anneal_from(&inst, start, &cfg);
        assert!(set.all_valid(&inst), "seed {seed}");
        assert!(dod >= start_dod, "seed {seed}");
        assert_eq!(dod, dod_total(&inst, &set), "seed {seed}");
    }
}

#[test]
fn interesting_set_is_always_valid() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        for lambda in [0.0f64, 0.5, 2.0, 10.0] {
            let set = xsact_core::interesting_set(&inst, lambda);
            assert!(set.all_valid(&inst), "seed {seed} lambda {lambda}");
        }
    }
}

// Tiny instances where exhaustive search is feasible: 2 results, one
// entity, 3 attrs, bound ≤ 3 → at most 4 × 4 combinations.
fn tiny_features(rng: &mut StdRng) -> Vec<ResultFeatures> {
    let result_count = 2;
    (0..result_count)
        .map(|i| {
            let triplets: Vec<(FeatureType, String, u32)> = (0..3)
                .filter_map(|k| {
                    let c = rng.random_range(0..=10u32);
                    (c > 0).then(|| (FeatureType::new("e", ATTRS[k]), "yes".to_string(), c))
                })
                .collect();
            ResultFeatures::from_raw(format!("r{i}"), [("e".to_string(), 10u32)], triplets)
        })
        .collect()
}

#[test]
fn multi_swap_is_optimal_on_tiny_instances() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let features = tiny_features(&mut rng);
        let bound = rng.random_range(0..4usize);
        let comparison = Comparison::new(&features).size_bound(bound);
        let multi = comparison.run(Algorithm::MultiSwap);
        let opt = comparison.run_exhaustive(10_000).expect("tiny instance");
        // With 2 results and a single entity, per-result best response is
        // globally optimal: prove multi-swap matches the oracle.
        assert_eq!(multi.dod(), opt.dod(), "seed {seed} bound {bound}");
        assert_eq!(opt.algorithm, Algorithm::Exhaustive { limit: 10_000 }, "seed {seed}");
    }
}
