//! Property-based tests over the whole stack (proptest).
//!
//! The high-value invariants:
//! * XML writer ∘ parser is the identity on compact output;
//! * the Indexed Lookup Eager SLCA equals the full-scan oracle on random
//!   documents and queries;
//! * every algorithm produces valid, size-bounded DFS sets;
//! * the local searches never fall below their snippet starting point and
//!   reach their respective optimality criteria;
//! * multi-swap matches the exhaustive optimum on tiny instances.

use proptest::prelude::*;
use xsact_core::{
    dod_total, is_multi_swap_optimal, is_single_swap_optimal, run_algorithm, Algorithm,
    Comparison, DfsConfig, Instance,
};
use xsact_entity::{FeatureType, ResultFeatures};
use xsact_index::{slca_full_scan, slca_indexed_lookup, InvertedIndex};
use xsact_xml::{parse_document, writer, Document, NodeId};

// ---------------------------------------------------------------- XML layer

/// Random tag names from a tiny alphabet (collisions intended — repeated
/// sibling tags exercise the entity classifier and SLCA dedup paths).
fn tag_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "item", "group"]).prop_map(str::to_owned)
}

/// Text including XML-special characters.
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| s.replace('\r', " "))
}

#[derive(Debug, Clone)]
enum TreeSpec {
    Text(String),
    Element { tag: String, children: Vec<TreeSpec> },
}

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop_oneof![
        text_strategy().prop_map(TreeSpec::Text),
        tag_strategy().prop_map(|tag| TreeSpec::Element { tag, children: vec![] }),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (tag_strategy(), prop::collection::vec(inner, 0..5))
            .prop_map(|(tag, children)| TreeSpec::Element { tag, children })
    })
}

fn build(doc: &mut Document, parent: NodeId, spec: &TreeSpec) {
    match spec {
        TreeSpec::Text(t) => {
            // Whitespace-only runs are dropped by the tokenizer, and two
            // adjacent text runs merge into one on reparse — skip both cases
            // so the round-trip comparison is exact.
            let last_is_text =
                doc.children(parent).last().is_some_and(|&c| !doc.is_element(c));
            if !t.trim().is_empty() && !last_is_text {
                doc.add_text(parent, t.trim().to_owned());
            }
        }
        TreeSpec::Element { tag, children } => {
            let el = doc.add_element(parent, tag.clone());
            for c in children {
                build(doc, el, c);
            }
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec(tree_strategy(), 0..6).prop_map(|specs| {
        let mut doc = Document::new("root");
        let root = doc.root();
        for s in &specs {
            build(&mut doc, root, s);
        }
        doc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_write_parse_round_trip(doc in doc_strategy()) {
        let xml = writer::write_document(&doc, &writer::WriteOptions::compact());
        let reparsed = parse_document(&xml).unwrap();
        let xml2 = writer::write_document(&reparsed, &writer::WriteOptions::compact());
        prop_assert_eq!(xml, xml2);
        prop_assert_eq!(doc.len(), reparsed.len());
    }

    #[test]
    fn pretty_output_parses_to_same_structure(doc in doc_strategy()) {
        let pretty = writer::write_document(&doc, &writer::WriteOptions::pretty());
        let reparsed = parse_document(&pretty).unwrap();
        // Element count is preserved (text may gain/lose layout whitespace).
        let elements = |d: &Document| d.all_nodes().filter(|&n| d.is_element(n)).count();
        prop_assert_eq!(elements(&doc), elements(&reparsed));
    }

    #[test]
    fn slca_implementations_agree(
        doc in doc_strategy(),
        term_count in 1usize..4,
    ) {
        let idx = InvertedIndex::build(&doc);
        // Query the most common tags — they are guaranteed to have postings
        // in most generated documents, and missing terms are a valid case
        // too.
        let terms = ["a", "item", "root", "b"];
        let lists: Vec<&[NodeId]> =
            terms.iter().take(term_count).map(|t| idx.postings(t)).collect();
        let full = slca_full_scan(&doc, &lists);
        let eager = slca_indexed_lookup(&doc, &lists);
        prop_assert_eq!(full, eager);
    }

    #[test]
    fn every_slca_is_an_elca(
        doc in doc_strategy(),
        term_count in 1usize..4,
    ) {
        let idx = InvertedIndex::build(&doc);
        let terms = ["a", "item", "b", "group"];
        let lists: Vec<&[NodeId]> =
            terms.iter().take(term_count).map(|t| idx.postings(t)).collect();
        let slca = slca_full_scan(&doc, &lists);
        let elca = xsact_index::elca_full_scan(&doc, &lists);
        for n in &slca {
            prop_assert!(elca.contains(n), "SLCA {n:?} missing from ELCA set");
        }
        // ELCA nodes are never proper descendants of an SLCA node (the
        // smallest witnesses sit at or below every exclusive one).
        for e in &elca {
            for s in &slca {
                prop_assert!(
                    !doc.dewey(*s).is_ancestor_of(doc.dewey(*e)) || e == s || !slca.contains(e),
                    "ELCA below an SLCA"
                );
            }
        }
    }

    #[test]
    fn index_persistence_round_trips(doc in doc_strategy()) {
        let idx = InvertedIndex::build(&doc);
        let mut bytes = Vec::new();
        xsact_index::save_index(&doc, &idx, &mut bytes).expect("in-memory write");
        let loaded = xsact_index::load_index(&doc, &mut bytes.as_slice()).expect("load");
        prop_assert_eq!(loaded.term_count(), idx.term_count());
        for term in ["a", "b", "item", "group", "root"] {
            prop_assert_eq!(loaded.postings(term), idx.postings(term));
        }
    }
}

// ----------------------------------------------------------- DFS algorithms

const ENTITIES: [&str; 3] = ["e0", "e1", "e2"];
const ATTRS: [&str; 5] = ["p", "q", "r", "s", "t"];

/// A random result: per (entity, attr), an occurrence count in 0..=10
/// (0 = type absent). All entities have 10 instances.
fn result_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=10, ENTITIES.len() * ATTRS.len())
}

fn make_features(label: String, counts: &[u32]) -> ResultFeatures {
    let mut triplets = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let e = ENTITIES[i / ATTRS.len()];
        let a = ATTRS[i % ATTRS.len()];
        triplets.push((FeatureType::new(e, a), "yes".to_string(), c));
    }
    ResultFeatures::from_raw(
        label,
        ENTITIES.iter().map(|e| (e.to_string(), 10u32)),
        triplets,
    )
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(result_strategy(), 2..4),
        1usize..8,
        prop::sample::select(vec![5.0f64, 10.0, 25.0]),
    )
        .prop_map(|(results, bound, threshold)| {
            let features: Vec<ResultFeatures> = results
                .iter()
                .enumerate()
                .map(|(i, counts)| make_features(format!("r{i}"), counts))
                .collect();
            Instance::build(
                &features,
                DfsConfig { size_bound: bound, threshold_pct: threshold },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_produce_valid_sets(inst in instance_strategy()) {
        for algo in Algorithm::ALL {
            let (set, _) = run_algorithm(&inst, algo);
            prop_assert!(set.all_valid(&inst), "{} violated validity", algo.name());
        }
    }

    #[test]
    fn local_searches_never_lose_to_snippets(inst in instance_strategy()) {
        let (snippet, _) = run_algorithm(&inst, Algorithm::Snippet);
        let base = dod_total(&inst, &snippet);
        for algo in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
            let (set, _) = run_algorithm(&inst, algo);
            prop_assert!(dod_total(&inst, &set) >= base, "{} lost to snippet", algo.name());
        }
    }

    #[test]
    fn single_swap_reaches_its_criterion(inst in instance_strategy()) {
        let (set, _) = run_algorithm(&inst, Algorithm::SingleSwap);
        prop_assert!(is_single_swap_optimal(&inst, &set));
    }

    #[test]
    fn multi_swap_reaches_its_criterion(inst in instance_strategy()) {
        let (set, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        prop_assert!(is_multi_swap_optimal(&inst, &set));
        // Multi-swap optimality subsumes single-swap optimality.
        prop_assert!(is_single_swap_optimal(&inst, &set));
    }

    #[test]
    fn dod_is_symmetric_and_bounded(inst in instance_strategy()) {
        let (set, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        let n = inst.result_count();
        for i in 0..n {
            for j in 0..n {
                if i == j { continue; }
                prop_assert_eq!(
                    xsact_core::dod_pair(&inst, i, j, set.dfs(i), set.dfs(j)),
                    xsact_core::dod_pair(&inst, j, i, set.dfs(j), set.dfs(i))
                );
            }
        }
        prop_assert!(dod_total(&inst, &set) <= xsact_core::dod_upper_bound(&inst));
    }

    #[test]
    fn dfs_sizes_respect_bound(inst in instance_strategy()) {
        for algo in Algorithm::ALL {
            let (set, _) = run_algorithm(&inst, algo);
            for i in 0..set.len() {
                prop_assert!(set.dfs(i).size() <= inst.config.size_bound);
            }
        }
    }

    #[test]
    fn annealing_is_valid_and_monotone(
        inst in instance_strategy(),
        seed in 0u64..32,
    ) {
        let start = xsact_core::snippet_set(&inst);
        let start_dod = dod_total(&inst, &start);
        let cfg = xsact_core::AnnealingConfig {
            seed,
            iterations: 300,
            ..Default::default()
        };
        let (set, dod) = xsact_core::anneal_from(&inst, start, &cfg);
        prop_assert!(set.all_valid(&inst));
        prop_assert!(dod >= start_dod);
        prop_assert_eq!(dod, dod_total(&inst, &set));
    }

    #[test]
    fn interesting_set_is_always_valid(
        inst in instance_strategy(),
        lambda in prop::sample::select(vec![0.0f64, 0.5, 2.0, 10.0]),
    ) {
        let set = xsact_core::interesting_set(&inst, lambda);
        prop_assert!(set.all_valid(&inst));
    }
}

// Tiny instances where exhaustive search is feasible: 2 results, one
// entity, 3 attrs, bound ≤ 3 → at most 4 × 4 combinations.
fn tiny_features() -> impl Strategy<Value = Vec<ResultFeatures>> {
    prop::collection::vec(prop::collection::vec(0u32..=10, 3), 2..3).prop_map(|results| {
        results
            .iter()
            .enumerate()
            .map(|(i, counts)| {
                let triplets: Vec<(FeatureType, String, u32)> = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(k, &c)| (FeatureType::new("e", ATTRS[k]), "yes".to_string(), c))
                    .collect();
                ResultFeatures::from_raw(
                    format!("r{i}"),
                    [("e".to_string(), 10u32)],
                    triplets,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn multi_swap_is_optimal_on_tiny_instances(
        features in tiny_features(),
        bound in 0usize..4,
    ) {
        let comparison = Comparison::new(&features).size_bound(bound);
        let multi = comparison.run(Algorithm::MultiSwap);
        let opt = comparison.run_exhaustive(10_000).expect("tiny instance");
        // With 2 results and a single entity, per-result best response is
        // globally optimal: prove multi-swap matches the oracle.
        prop_assert_eq!(multi.dod(), opt.dod());
    }
}
