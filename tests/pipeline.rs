//! Full-pipeline integration tests over all three synthetic datasets:
//! generate → index → search → extract → compare (paper Figure 3).

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_data::{OutdoorGen, OutdoorGenConfig, ReviewsGen, ReviewsGenConfig};

#[test]
fn product_reviews_pipeline() {
    let doc =
        ReviewsGen::new(ReviewsGenConfig { seed: 7, products: 18, reviews: (5, 40) }).generate();
    let engine = SearchEngine::build(doc);

    let results = engine.search(&Query::parse("TomTom GPS"));
    assert!(!results.is_empty(), "seeded dataset always has TomTom GPS products");
    for r in &results {
        assert_eq!(engine.document().tag(r.root), "product");
        assert!(r.label.contains("TomTom"));
    }

    let features: Vec<ResultFeatures> =
        results.iter().map(|r| engine.extract_features(r)).collect();
    for rf in &features {
        assert!(rf.type_count() >= 4, "products carry name/brand/price/rating + flags");
    }
    if features.len() >= 2 {
        let outcome = Comparison::new(&features).size_bound(8).run(Algorithm::MultiSwap);
        assert!(outcome.set.all_valid(&outcome.instance));
        assert!(outcome.dod() <= outcome.dod_upper_bound());
        let table = outcome.table();
        assert!(table.contains("feature"));
    }
}

#[test]
fn outdoor_brand_comparison_scenario() {
    // The demo's scenario: query {men, jackets}, compare *brands*.
    let doc = OutdoorGen::new(OutdoorGenConfig { seed: 3, products: (25, 50), focus_bias: 0.8 })
        .generate();
    let engine = SearchEngine::build(doc);
    let results = engine.search(&Query::parse("men jackets"));
    assert!(!results.is_empty());

    // Promote product-level results to their enclosing brand.
    let doc = engine.document();
    let mut brand_roots = Vec::new();
    for r in &results {
        let mut cur = r.root;
        while doc.tag(cur) != "brand" {
            cur = doc.parent(cur).expect("brand is an ancestor of every product");
        }
        if !brand_roots.contains(&cur) {
            brand_roots.push(cur);
        }
    }
    assert!(brand_roots.len() >= 2, "several brands sell men's jackets");

    let features: Vec<ResultFeatures> = brand_roots
        .iter()
        .map(|&b| {
            let name = doc.text_content(doc.child_by_tag(b, "name").expect("brand name"));
            xsact_entity::extract_features(doc, engine.summary(), b, name)
        })
        .collect();

    // Brand-level features include the product subcategory histogram that
    // reveals each brand's focus.
    for rf in &features {
        assert!(rf
            .stats
            .iter()
            .any(|s| s.ty.attribute == "subcategory" && s.ty.entity.ends_with("product")));
    }

    let outcome = Comparison::new(&features).size_bound(6).run(Algorithm::MultiSwap);
    // Focus bias guarantees differentiable subcategory/category histograms.
    assert!(outcome.dod() > 0, "brand focuses must differentiate");
}

#[test]
fn movie_queries_pipeline() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 150, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);

    let mut nonempty = 0;
    for (label, query) in qm_queries() {
        let results = engine.search(&Query::parse(&query));
        if results.is_empty() {
            continue;
        }
        nonempty += 1;
        for r in &results {
            assert_eq!(engine.document().tag(r.root), "movie", "{label}");
        }
        let features: Vec<ResultFeatures> =
            results.iter().map(|r| engine.extract_features(r)).collect();
        if features.len() < 2 {
            continue;
        }
        let comparison = Comparison::new(&features).size_bound(10);
        let single = comparison.run(Algorithm::SingleSwap);
        let multi = comparison.run(Algorithm::MultiSwap);
        assert!(
            multi.dod() >= single.dod(),
            "{label}: multi {} < single {}",
            multi.dod(),
            single.dod()
        );
        assert!(single.set.all_valid(&single.instance));
        assert!(multi.set.all_valid(&multi.instance));
    }
    assert!(nonempty >= 6, "most QM queries must match the 150-movie dataset");
}

#[test]
fn movie_results_have_nested_actor_entity() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 40, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    let results = engine.search(&Query::parse("drama family"));
    assert!(!results.is_empty());
    let rf = engine.extract_features(&results[0]);
    // Actor is a nested entity: its name/billing belong to the actor, not
    // to the movie.
    assert!(rf.stats.iter().any(|s| s.ty.entity.ends_with("actor")));
    assert!(!rf
        .stats
        .iter()
        .any(|s| s.ty.entity.ends_with("movie") && s.ty.attribute.contains("billing")));
}

#[test]
fn slca_promotion_collapses_duplicate_matches() {
    // Terms matching several nodes inside the same movie yield one result.
    let doc = MoviesGen::new(MovieGenConfig { movies: 60, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    let results = engine.search(&Query::parse("drama"));
    let mut roots: Vec<_> = results.iter().map(|r| r.root).collect();
    let before = roots.len();
    roots.dedup();
    assert_eq!(before, roots.len());
}

#[test]
fn full_pipeline_via_facade_prelude() {
    // The README quickstart, as a test.
    let wb = Workbench::from_document(xsact::data::fixtures::figure1_document());
    let outcome = wb
        .query("TomTom GPS")
        .expect("non-empty query")
        .size_bound(6)
        .compare(Algorithm::MultiSwap)
        .expect("two results to compare");
    assert!(outcome.dod() >= 4);
    assert!(!outcome.table().is_empty());
}
