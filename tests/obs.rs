//! Integration tests of the observability layer: tracing never changes
//! ranked bytes (single-document pipeline and corpus fan-out at several
//! shard counts), the serving metrics exposition over both the `METRICS`
//! verb's registry and the plain-HTTP `/metrics` endpoint, and exact
//! conservation of registry totals under concurrent sessions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use xsact::data::movies::qm_queries;
use xsact::obs::serve_metrics;
use xsact::prelude::*;
use xsact::serve::{CorpusServer, ServeConfig};

// -------------------------------------------------- tracing is observational

#[test]
fn tracing_never_changes_workbench_bytes() {
    let wb = Workbench::from_document(xsact::data::fixtures::figure1_document());
    let sink = TraceSink::new();
    let traced = wb
        .query_traced("TomTom GPS", &sink)
        .unwrap()
        .take(4)
        .size_bound(7)
        .compare(Algorithm::MultiSwap)
        .unwrap()
        .table();
    let plain = wb
        .query("TomTom GPS")
        .unwrap()
        .take(4)
        .size_bound(7)
        .compare(Algorithm::MultiSwap)
        .unwrap()
        .table();
    assert_eq!(traced, plain, "tracing must never change the comparison table");

    let trace = sink.take();
    let labels: Vec<&str> = trace.spans.iter().map(|s| s.label.as_str()).collect();
    for stage in ["parse", "plan", "slca-stream"] {
        assert!(labels.contains(&stage), "missing {stage:?} span in {labels:?}");
    }
    assert!(trace.total_nanos() > 0, "spans carry monotonic timings");
}

#[test]
fn tracing_never_changes_ranked_top_k_bytes() {
    let wb = Workbench::from_document(xsact::data::fixtures::figure1_document());
    let sink = TraceSink::new();
    let traced: Vec<String> = wb
        .query_traced("TomTom GPS", &sink)
        .unwrap()
        .ranked(true)
        .take(2)
        .top_results()
        .into_iter()
        .map(|(r, score)| format!("{} {:.6}", r.label, score.score))
        .collect();
    let plain: Vec<String> = wb
        .query("TomTom GPS")
        .unwrap()
        .ranked(true)
        .take(2)
        .top_results()
        .into_iter()
        .map(|(r, score)| format!("{} {:.6}", r.label, score.score))
        .collect();
    assert_eq!(traced, plain, "tracing must never change the ranked listing");
    let labels: Vec<String> = sink.take().spans.into_iter().map(|s| s.label).collect();
    assert!(labels.iter().any(|l| l == "rank"), "bounded path records a rank span: {labels:?}");
}

#[test]
fn tracing_never_changes_corpus_bytes_at_any_shard_count() {
    let mut corpus = Corpus::synthetic_movies(8, 60, 42);
    for shards in [1usize, 2, 8] {
        corpus.set_shards(shards);
        let sink = TraceSink::new();
        let traced_query = corpus.query_traced("drama family", &sink).unwrap().top(4);
        let traced = (
            traced_query.ranking().render(usize::MAX),
            traced_query.compare(Algorithm::MultiSwap).unwrap().table(),
        );
        let plain_query = corpus.query("drama family").unwrap().top(4);
        let plain = (
            plain_query.ranking().render(usize::MAX),
            plain_query.compare(Algorithm::MultiSwap).unwrap().table(),
        );
        assert_eq!(traced, plain, "tracing changed corpus bytes at {shards} shards");

        let labels: Vec<String> = sink.take().spans.into_iter().map(|s| s.label).collect();
        for shard in 0..shards {
            let label = format!("shard {shard}");
            assert!(labels.contains(&label), "missing {label:?} span at {shards} shards");
        }
        assert!(labels.iter().any(|l| l == "merge"), "missing merge span: {labels:?}");
    }
}

// ------------------------------------------------------- metrics exposition

#[test]
fn metrics_verb_and_http_endpoint_expose_the_same_live_registry() {
    let corpus = Arc::new(Corpus::synthetic_movies(4, 30, 42).with_shards(2));
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    let mut endpoint =
        serve_metrics(server.metrics_registry(), "127.0.0.1:0").expect("binds an ephemeral port");

    let mut session = server.session();
    session.query("drama family").unwrap();
    session.query("drama").unwrap();

    // The verb-side exposition (what `METRICS` serves).
    let exposition = server.metrics();
    assert!(exposition.contains("xsact_queries_served 2"), "{exposition}");

    // The HTTP side scrapes the same registry, so the same live values.
    let scrape = |path: &str| {
        let mut stream = TcpStream::connect(endpoint.addr()).expect("connects");
        stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("text/plain"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("has a body");
    assert!(body.contains("xsact_queries_served 2"), "{body}");
    // The acceptance contract: latency histogram counts equal queries served.
    for metric in
        ["xsact_queue_wait_ns_count 2", "xsact_execute_ns_count 2", "xsact_e2e_ns_count 2"]
    {
        assert!(body.contains(metric), "missing {metric:?} in:\n{body}");
    }
    assert!(scrape("/else").starts_with("HTTP/1.0 404 "), "unknown paths are 404");

    endpoint.shutdown();
    server.join();
}

// ------------------------------------------------- conservation under load

/// Property: after every concurrent session joins, the registry's totals
/// are exactly conserved — nothing lost to races, nothing double-counted.
#[test]
fn concurrent_sessions_conserve_registry_totals_exactly() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 10;
    let corpus = Arc::new(Corpus::synthetic_movies(6, 40, 42).with_shards(2));
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    let mix: Vec<String> = qm_queries().into_iter().map(|(_, text)| text).collect();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            let mix = &mix;
            scope.spawn(move || {
                let mut session = server.session();
                for i in 0..PER_CLIENT {
                    session.query(&mix[(i + c) % mix.len()]).unwrap();
                }
            });
        }
    });
    server.join();
    let total = (CLIENTS * PER_CLIENT) as u64;
    let stats = server.stats();
    assert_eq!(stats.queries_served, total);
    assert_eq!(stats.queue_wait_ns.count, total, "one queue-wait observation per query");
    assert_eq!(stats.execute_ns.count, total, "one execute observation per query");
    assert_eq!(stats.e2e_ns.count, total, "one e2e observation per query");
    assert_eq!(stats.batch_size.count, stats.batches, "one batch-size observation per batch");
    // Every served query was answered exactly one way: by riding a batch
    // (a cache miss) or straight from the result-page cache.
    assert_eq!(
        stats.batch_size.sum + stats.cache_hits,
        total,
        "batch sizes plus cache hits sum to the queries served"
    );
    assert_eq!(stats.cache_hits + stats.cache_misses, total, "every query hit or missed");
    assert!(stats.cache_hits > 0, "a repeated mix must hit the cache");
    assert_eq!(stats.rejected_overload, 0, "blocking clients never overflow the queue");
}
