//! Chaos suite: deterministic fault injection driven end-to-end.
//!
//! Every test arms a [`FaultPlan`] against a serving runtime (or the
//! persistence layer) and pins the *recovery contract*, not just the
//! failure: the affected request gets a typed, retryable error, and
//! everything after it is byte-identical to a fault-free run. The plans
//! are seeded and count-based — no clocks, no RNG — so a failure here
//! reproduces exactly on any machine.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xsact::prelude::*;
use xsact::serve::{serve_tcp, serve_tcp_mux, FaultPlan, END_MARKER};
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};

/// Eight documents so shard 1 is non-empty at every shard count under
/// test (2 and 8).
fn chaos_corpus(shards: usize) -> Arc<Corpus> {
    Arc::new(Corpus::synthetic_movies(8, 40, 42).with_shards(shards))
}

/// A query outcome normalised to bytes: the rendered ranking on success,
/// the error's display form otherwise. Byte-identity between a chaos run
/// and a fault-free oracle is asserted on this form.
fn rendered(session: &mut ServeSession, text: &str) -> String {
    match session.query(text) {
        Ok(answer) => answer.ranking.render(session.top()),
        Err(err) => format!("ERR {err}"),
    }
}

// ------------------------------------------------------- shard supervision

/// The acceptance pin: with a seeded plan panicking shard 1 on its 3rd
/// batch, the server returns a typed `ShardFailed` for exactly that
/// batch, respawns the worker, and then serves QM1–QM8 byte-identical to
/// a fault-free run — at both ends of the shard-count range.
#[test]
fn shard_panic_on_third_batch_recovers_byte_identical() {
    for shards in [2usize, 8] {
        let corpus = chaos_corpus(shards);
        let oracle = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
        let chaos = CorpusServer::start(
            Arc::clone(&corpus),
            ServeConfig {
                faults: FaultPlan::parse("shard_panic:1@3,seed=42").unwrap(),
                ..ServeConfig::default()
            },
        );
        let mut oracle_session = oracle.session();
        let mut chaos_session = chaos.session();

        // Two warm-up batches advance shard 1's hit counter without firing.
        for warmup in ["drama family", "comedy wedding"] {
            assert_eq!(
                rendered(&mut chaos_session, warmup),
                rendered(&mut oracle_session, warmup),
                "warm-up {warmup:?} must not be affected (shards={shards})"
            );
        }

        // The 3rd batch lands on the armed hit: exactly this request fails,
        // with the typed error naming the shard and promising a restart.
        let err = chaos_session.query("action hero").unwrap_err();
        assert!(matches!(err, XsactError::ShardFailed { shard: 1, .. }), "{err}");
        assert!(err.to_string().contains("injected shard_panic fault"), "{err}");

        // Recovery: the full Figure-4 workload is byte-identical to the
        // fault-free oracle on the respawned pool.
        for (label, query) in qm_queries() {
            assert_eq!(
                rendered(&mut chaos_session, &query),
                rendered(&mut oracle_session, &query),
                "{label} diverged after recovery (shards={shards})"
            );
        }

        let stats = chaos.stats();
        assert_eq!(stats.shard_failed, 1, "exactly one batch failed (shards={shards})");
        assert_eq!(stats.shard_restarts, 1, "exactly one respawn (shards={shards})");
        assert_eq!(stats.queries_served, 10, "2 warm-ups + 8 QM answers (shards={shards})");
        assert_eq!(stats.execute_ns.count, stats.queries_served);
        let metrics = chaos.metrics();
        assert!(metrics.contains("xsact_shard_restarts 1"), "{metrics}");
        assert!(oracle.stats().shard_restarts == 0 && oracle.stats().shard_failed == 0);
    }
}

// ------------------------------------------------------ deadlines under load

/// `slow_execute` stalls a worker past the deadline: the answer is
/// computed but *discarded* at the post-execute check, the client gets a
/// typed `DeadlineExceeded`, and the next request is unaffected.
#[test]
fn slow_shard_trips_the_deadline_after_execution() {
    let corpus = chaos_corpus(2);
    let server = CorpusServer::start(
        Arc::clone(&corpus),
        ServeConfig {
            deadline: Some(Duration::from_millis(100)),
            faults: FaultPlan::parse("slow_execute@1x400").unwrap(),
            ..ServeConfig::default()
        },
    );
    let mut session = server.session();
    let err = session.query("drama family").unwrap_err();
    match err {
        XsactError::DeadlineExceeded { elapsed_ms, deadline_ms } => {
            assert_eq!(deadline_ms, 100);
            assert!(elapsed_ms >= 400, "the injected stall dominates: {elapsed_ms}ms");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    let stats = server.stats();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.queries_served, 0, "a late answer must be discarded, not served");
    assert_eq!(stats.e2e_ns.count, 0, "histograms record answered queries only");

    // The site fired once; the retry comes back well under the deadline
    // and byte-identical to sequential execution.
    let answer = session.query("drama family").unwrap();
    let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
    assert_eq!(answer.ranking.render(session.top()), sequential);
    assert_eq!(server.stats().queries_served, 1);
}

// -------------------------------------------------- crash-safe persistence

/// Scratch directory removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("xsact-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `io_error_on_save` fires after the temp file is written but before it
/// is durable — exactly where a crash would land. The save must surface
/// the error, leave no `.tmp` dropping, and leave the previously saved
/// index byte-identical (the atomic rename never ran).
#[test]
fn injected_save_error_never_leaves_a_torn_or_temporary_file() {
    let tmp = TempDir::new("io-error");
    let dir = tmp.0.clone();
    let mut corpus = Corpus::synthetic_movies(2, 12, 7);
    corpus.save_indexes(&dir).expect("baseline save");
    let baseline = std::fs::read(dir.join("movies-00.xidx")).expect("baseline file");

    corpus.set_faults(FaultPlan::parse("io_error_on_save@1").unwrap());
    let err = corpus.save_indexes(&dir).expect_err("injected IO error must surface");
    assert!(err.to_string().contains("injected io_error_on_save fault"), "{err}");

    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    assert_eq!(
        std::fs::read(dir.join("movies-00.xidx")).unwrap(),
        baseline,
        "a failed save must not touch the previously committed bytes"
    );

    // The entry fired once: the retry commits cleanly, and the committed
    // file round-trips through the checksummed loader.
    corpus.save_indexes(&dir).expect("retry after the one-shot fault");
    let doc =
        MoviesGen::new(MovieGenConfig { seed: 7, movies: 12, ..Default::default() }).generate();
    let mut f = std::fs::File::open(dir.join("movies-00.xidx")).unwrap();
    Workbench::from_persisted_index(doc, &mut f).expect("retried save loads cleanly");
}

// --------------------------------------------------- connection resilience

/// One line-protocol exchange: send a request, read up to the terminator.
fn tcp_exchange(
    writer: &mut TcpStream,
    responses: &mut impl Iterator<Item = std::io::Result<String>>,
    request: &str,
) -> Vec<String> {
    writer.write_all(format!("{request}\n").as_bytes()).expect("request sent");
    let mut lines = Vec::new();
    loop {
        match responses.next() {
            Some(Ok(line)) if line == END_MARKER => return lines,
            Some(Ok(line)) => lines.push(line),
            other => panic!("connection ended mid-response: {other:?}"),
        }
    }
}

/// `drop_connection` severs the socket after the answer is computed but
/// before it is written — the victim sees EOF mid-exchange, like a
/// crashed peer, while the listener and every other client carry on.
#[test]
fn dropped_connection_is_isolated_to_one_client() {
    let server = CorpusServer::start(
        chaos_corpus(2),
        ServeConfig {
            faults: FaultPlan::parse("drop_connection@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let handle = serve_tcp(server, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    let mut victim = TcpStream::connect(addr).expect("victim connects");
    victim.write_all(b"QUERY drama family\n").expect("victim request");
    let mut victim_lines = BufReader::new(victim.try_clone().unwrap()).lines();
    let mut saw_terminator = false;
    for line in victim_lines.by_ref() {
        let Ok(line) = line else { break };
        if line == END_MARKER {
            saw_terminator = true;
            break;
        }
    }
    assert!(!saw_terminator, "the injected drop must end the stream before the terminator");

    // A fresh client on the same listener is unaffected.
    let mut ok = TcpStream::connect(addr).expect("second client connects");
    let mut responses = BufReader::new(ok.try_clone().unwrap()).lines();
    let resp = tcp_exchange(&mut ok, &mut responses, "QUERY drama family");
    assert!(resp.first().is_some_and(|l| l.starts_with("OK ")), "{resp:?}");
    drop(ok);

    handle.shutdown();
}

/// `drop_connection` under the multiplexed front end: the armed site must
/// EOF **exactly one** connection while the single poll loop keeps serving
/// every other client — a dropped peer cannot take the thread down with
/// it, because there is no per-connection thread to take.
#[test]
fn dropped_connection_under_mux_is_isolated_to_one_client() {
    let server = CorpusServer::start(
        chaos_corpus(2),
        ServeConfig {
            faults: FaultPlan::parse("drop_connection@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let handle = serve_tcp_mux(server, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    // Two bystanders connect first and stay idle while the victim burns
    // the armed site.
    let mut bystander_a = TcpStream::connect(addr).expect("bystander A connects");
    let mut bystander_b = TcpStream::connect(addr).expect("bystander B connects");

    let mut victim = TcpStream::connect(addr).expect("victim connects");
    victim.write_all(b"QUERY drama family\n").expect("victim request");
    let mut victim_lines = BufReader::new(victim.try_clone().unwrap()).lines();
    let mut saw_terminator = false;
    for line in victim_lines.by_ref() {
        let Ok(line) = line else { break };
        if line == END_MARKER {
            saw_terminator = true;
            break;
        }
    }
    assert!(!saw_terminator, "the injected drop must end the stream before the terminator");

    // The loop thread survived: both bystanders (and a fresh client) are
    // served normally on the same single thread.
    let mut responses_a = BufReader::new(bystander_a.try_clone().unwrap()).lines();
    let resp = tcp_exchange(&mut bystander_a, &mut responses_a, "QUERY drama family");
    assert!(resp.first().is_some_and(|l| l.starts_with("OK ")), "{resp:?}");
    let mut responses_b = BufReader::new(bystander_b.try_clone().unwrap()).lines();
    let resp = tcp_exchange(&mut bystander_b, &mut responses_b, "QUERY comedy wedding");
    assert!(resp.first().is_some_and(|l| l.starts_with("OK ")), "{resp:?}");
    let mut fresh = TcpStream::connect(addr).expect("fresh client connects");
    let mut responses_f = BufReader::new(fresh.try_clone().unwrap()).lines();
    let resp = tcp_exchange(&mut fresh, &mut responses_f, "QUERY action hero");
    assert!(resp.first().is_some_and(|l| l.starts_with("OK ")), "{resp:?}");
    drop((bystander_a, bystander_b, fresh));

    handle.shutdown();
    handle.wait();
}

// ----------------------------------------------------- result-page cache

/// `cache_poison` simulates an insert racing an invalidation: the armed
/// site hands the dispatcher's insert a stale generation, and the cache's
/// generation guard must reject it. The poisoned page is never served —
/// the next identical query is a fresh miss with identical bytes.
#[test]
fn cache_poison_insert_is_rejected_by_the_generation_guard() {
    let corpus = chaos_corpus(2);
    let server = CorpusServer::start(
        Arc::clone(&corpus),
        ServeConfig {
            faults: FaultPlan::parse("cache_poison@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let mut session = server.session();
    let first = session.query("drama family").unwrap().ranking.render(session.top());
    let second = session.query("drama family").unwrap().ranking.render(session.top());
    assert_eq!(first, second, "rejected insert or not, the bytes never change");
    let stats = server.stats();
    assert_eq!(
        (stats.cache_hits, stats.cache_misses),
        (0, 2),
        "the poisoned insert must not be served: both lookups miss"
    );
    // The site fired once: the second execution's insert landed, so the
    // third query is a hit — with the same bytes.
    let third = session.query("drama family").unwrap().ranking.render(session.top());
    assert_eq!(third, first);
    assert_eq!(server.stats().cache_hits, 1, "recovery: caching resumes after the one-shot");
}

/// A `ShardFailed` answer must never be cached: after the panic-and-respawn,
/// the same query re-executes (a cache miss) and succeeds — an error can
/// never be replayed out of the cache.
#[test]
fn shard_failure_is_never_cached() {
    let corpus = chaos_corpus(2);
    let server = CorpusServer::start(
        Arc::clone(&corpus),
        ServeConfig {
            faults: FaultPlan::parse("shard_panic:1@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let mut session = server.session();
    let err = session.query("drama family").unwrap_err();
    assert!(matches!(err, XsactError::ShardFailed { shard: 1, .. }), "{err}");
    // The retry misses (nothing was cached for the failed round) and is
    // byte-identical to sequential execution on the respawned pool.
    let answer = session.query("drama family").unwrap();
    let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
    assert_eq!(answer.ranking.render(session.top()), sequential);
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 0, "the failed round must not produce a hit");
    assert_eq!(stats.cache_misses, 2, "both submissions were fresh lookups");
    assert_eq!(stats.queries_served, 1, "only the successful retry counts as served");
}
