//! Integration tests of the serving runtime: the batching-determinism
//! invariant (pooling and batching never change bytes), drain-on-shutdown,
//! and the TCP line protocol end to end on a loopback socket.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use xsact::data::movies::qm_queries;
use xsact::prelude::*;
use xsact::serve::{serve_tcp, serve_tcp_mux, END_MARKER};

/// The synthetic fleet every test serves: six distinct movie documents.
fn fleet(shards: usize) -> Arc<Corpus> {
    Arc::new(Corpus::synthetic_movies(6, 40, 42).with_shards(shards))
}

/// The QM1–QM8 query texts of the paper's movie workload.
fn qm_mix() -> Vec<String> {
    qm_queries().into_iter().map(|(_, text)| text).collect()
}

// ----------------------------------------------------- batching determinism

/// The tentpole invariant, pinned: N concurrent client threads submitting a
/// shuffled mix of QM1–QM8 receive responses byte-identical to sequential
/// one-query-at-a-time execution — at 1, 2, and 8 shards, under whatever
/// batching the dispatcher happens to form.
#[test]
fn concurrent_batched_responses_match_sequential_bytes() {
    const CLIENTS: u64 = 6;
    const PASSES: usize = 3;
    let k = 4; // ServeConfig::default().default_top
    for shards in [1usize, 2, 8] {
        let corpus = fleet(shards);
        // Sequential oracle: the scoped-thread engine, one query at a time.
        let expected: Vec<(String, String)> = qm_mix()
            .into_iter()
            .map(|text| {
                let rendered = corpus.query(&text).unwrap().ranking().render(k);
                (text, rendered)
            })
            .collect();
        let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let server = &server;
                let expected = &expected;
                scope.spawn(move || {
                    let mut session = server.session();
                    // Each client shuffles its own submission order, so the
                    // dispatcher sees interleavings the oracle never ran.
                    let mut rng = StdRng::seed_from_u64(client);
                    let mut order: Vec<usize> = (0..expected.len()).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.random_range(0..=i));
                    }
                    for _ in 0..PASSES {
                        for &i in &order {
                            let (text, want) = &expected[i];
                            let answer = session.query(text).unwrap();
                            assert_eq!(
                                &answer.ranking.render(k),
                                want,
                                "shards {shards}, client {client}, query {text:?}"
                            );
                        }
                    }
                });
            }
        });
        let stats = server.stats();
        assert_eq!(
            stats.queries_served,
            CLIENTS * PASSES as u64 * expected.len() as u64,
            "every submission answered exactly once at {shards} shards"
        );
        assert!(stats.batches >= 1 && stats.batches <= stats.queries_served);
        assert_eq!(stats.queries_served - stats.batches, stats.coalesced_queries());
    }
}

/// Hammering one query from many threads must coalesce *correctly* whatever
/// batches form: every caller gets the same bytes and the counters balance.
#[test]
fn same_query_storm_coalesces_without_changing_bytes() {
    let corpus = fleet(2);
    let expected = corpus.query("drama family").unwrap().ranking().render(4);
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = server.session();
                for _ in 0..10 {
                    let answer = session.query("drama family").unwrap();
                    assert_eq!(&answer.ranking.render(4), expected);
                    assert!(answer.batch_size >= 1);
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries_served, 80);
    assert!(stats.batches <= 80);
    assert_eq!(stats.batch_size.count, stats.batches, "one batch-size observation per batch");
    assert_eq!(
        stats.e2e_ns.count, stats.queries_served,
        "one end-to-end latency observation per query"
    );
}

// --------------------------------------------------------- shutdown drains

/// Shutdown under load: every submission either completes with correct
/// bytes or is rejected with the typed overload error — nothing hangs,
/// nothing is silently dropped, and the counters account for every query.
#[test]
fn shutdown_drains_admitted_work_and_rejects_the_rest() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 20;
    let corpus = fleet(2);
    let expected = corpus.query("drama family").unwrap().ranking().render(4);
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = server.session();
                for _ in 0..PER_CLIENT {
                    match session.query("drama family") {
                        Ok(answer) => assert_eq!(&answer.ranking.render(4), expected),
                        Err(XsactError::Overloaded { .. }) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            });
        }
        // Shut down mid-storm; admitted work must still be answered.
        server.shutdown();
    });
    server.join();
    let stats = server.stats();
    assert_eq!(
        stats.queries_served + stats.rejected_overload,
        (CLIENTS * PER_CLIENT) as u64,
        "every submission either served or typed-rejected"
    );
}

// ------------------------------------------------------------ TCP protocol

/// A line-protocol client for the tests: send one request, collect the
/// response lines up to (excluding) the `.` terminator.
fn roundtrip(
    writer: &mut TcpStream,
    responses: &mut impl Iterator<Item = std::io::Result<String>>,
    request: &str,
) -> Vec<String> {
    writer.write_all(format!("{request}\n").as_bytes()).expect("request sent");
    let mut lines = Vec::new();
    loop {
        match responses.next() {
            Some(Ok(line)) if line == END_MARKER => return lines,
            Some(Ok(line)) => lines.push(line),
            other => panic!("connection ended mid-response: {other:?}"),
        }
    }
}

#[test]
fn tcp_line_protocol_end_to_end() {
    let corpus = fleet(2);
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds an ephemeral port");

    let stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut responses = BufReader::new(stream).lines();

    // QUERY: bytes identical to the sequential engine, prefixed OK <n>.
    let expected = corpus.query("drama family").unwrap().ranking().render(4);
    let resp = roundtrip(&mut writer, &mut responses, "QUERY drama family");
    assert_eq!(resp[0], format!("OK {}", expected.lines().count()));
    assert_eq!(resp[1..].join("\n") + "\n", expected);

    // TOP changes the session's k; the listing shrinks accordingly.
    assert_eq!(roundtrip(&mut writer, &mut responses, "TOP 2"), vec!["OK top=2"]);
    let bounded = roundtrip(&mut writer, &mut responses, "QUERY drama family");
    assert_eq!(bounded[0], "OK 2");
    assert_eq!(bounded.len(), 3, "header plus exactly two hits");
    assert_eq!(bounded[1..], resp[1..=2], "top-2 is a prefix of the full listing");

    // STATS reports the server counters.
    let stats = roundtrip(&mut writer, &mut responses, "STATS");
    assert_eq!(stats[0], "OK stats");
    assert!(stats.iter().any(|l| l == "queries_served 2"), "{stats:?}");
    assert!(stats.iter().any(|l| l.starts_with("batch_size_hist ")), "{stats:?}");
    assert!(stats.iter().any(|l| l.starts_with("e2e_us count:2 ")), "{stats:?}");

    // METRICS exposes the same registry in Prometheus text format.
    let metrics = roundtrip(&mut writer, &mut responses, "METRICS");
    assert_eq!(metrics[0], "OK metrics");
    assert!(metrics.iter().any(|l| l == "xsact_queries_served 2"), "{metrics:?}");
    assert!(metrics.iter().any(|l| l == "xsact_e2e_ns_count 2"), "{metrics:?}");

    // Typed protocol errors: unknown verbs and unindexable queries.
    let bad = roundtrip(&mut writer, &mut responses, "EXPLODE now");
    assert!(bad[0].starts_with("ERR BAD_REQUEST "), "{bad:?}");
    let empty = roundtrip(&mut writer, &mut responses, "QUERY ???");
    assert!(empty[0].starts_with("ERR EMPTY_QUERY "), "{empty:?}");
    let top_bad = roundtrip(&mut writer, &mut responses, "TOP many");
    assert!(top_bad[0].starts_with("ERR BAD_REQUEST "), "{top_bad:?}");

    // SHUTDOWN answers, then the whole front end winds down.
    let bye = roundtrip(&mut writer, &mut responses, "SHUTDOWN");
    assert_eq!(bye, vec!["OK shutting down"]);
    let final_stats = handle.wait();
    assert_eq!(final_stats.queries_served, 2);
}

#[test]
fn tcp_sessions_are_per_connection() {
    let server = CorpusServer::start(fleet(1), ServeConfig::default());
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");

    // Connection A narrows its top-k; connection B must be unaffected.
    let a = TcpStream::connect(handle.addr()).unwrap();
    let mut a_writer = a.try_clone().unwrap();
    let mut a_resp = BufReader::new(a).lines();
    roundtrip(&mut a_writer, &mut a_resp, "TOP 1");
    let narrowed = roundtrip(&mut a_writer, &mut a_resp, "QUERY drama family");
    assert_eq!(narrowed[0], "OK 1");

    let b = TcpStream::connect(handle.addr()).unwrap();
    let mut b_writer = b.try_clone().unwrap();
    let mut b_resp = BufReader::new(b).lines();
    let full = roundtrip(&mut b_writer, &mut b_resp, "QUERY drama family");
    assert_eq!(full[0], "OK 4", "connection B keeps the default top-k");

    assert_eq!(roundtrip(&mut a_writer, &mut a_resp, "QUIT"), vec!["OK bye"]);
    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.queries_served, 2);
}

#[test]
fn tcp_handle_shutdown_stops_an_idle_server() {
    let server = CorpusServer::start(fleet(1), ServeConfig::default());
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");
    // A connected-but-idle client must not block the wind-down.
    let _idle = TcpStream::connect(handle.addr()).expect("connects");
    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.queries_served, 0);
}

// ----------------------------------------------------- result-page cache

/// The cache half of the tentpole invariant, pinned: a cached answer is
/// byte-identical to a fresh one, at every shard count, whether the cache
/// is off, tiny (evicting constantly), or large — under concurrent
/// shuffled clients replaying the mix, so hits, misses, evictions, and
/// coalescing all interleave.
#[test]
fn cache_matrix_never_changes_bytes() {
    const CLIENTS: u64 = 4;
    const PASSES: usize = 3;
    let k = 4; // ServeConfig::default().default_top
    for shards in [1usize, 2, 8] {
        // (entries, bytes): disabled, tiny (2 pages for 8 keys — every
        // pass evicts), effectively unbounded.
        for (entries, bytes) in [(0usize, 0usize), (2, 0), (1024, 0)] {
            let corpus = fleet(shards);
            let expected: Vec<(String, String)> = qm_mix()
                .into_iter()
                .map(|text| {
                    let rendered = corpus.query(&text).unwrap().ranking().render(k);
                    (text, rendered)
                })
                .collect();
            let server = CorpusServer::start(
                Arc::clone(&corpus),
                ServeConfig {
                    cache_entries: entries,
                    cache_bytes: bytes,
                    ..ServeConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let server = &server;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut session = server.session();
                        let mut rng = StdRng::seed_from_u64(client * 31 + entries as u64);
                        let mut order: Vec<usize> = (0..expected.len()).collect();
                        for i in (1..order.len()).rev() {
                            order.swap(i, rng.random_range(0..=i));
                        }
                        for _ in 0..PASSES {
                            for &i in &order {
                                let (text, want) = &expected[i];
                                let answer = session.query(text).unwrap();
                                assert_eq!(
                                    &answer.ranking.render(k),
                                    want,
                                    "shards {shards}, cache {entries}, query {text:?}"
                                );
                            }
                        }
                    });
                }
            });
            let stats = server.stats();
            let total = CLIENTS * PASSES as u64 * expected.len() as u64;
            assert_eq!(stats.queries_served, total, "shards {shards}, cache {entries}");
            if entries == 0 {
                assert_eq!(
                    (stats.cache_hits, stats.cache_misses, stats.cache_evictions),
                    (0, 0, 0),
                    "a disabled cache counts nothing"
                );
            } else {
                assert_eq!(
                    stats.cache_hits + stats.cache_misses,
                    total,
                    "every query hit or missed (shards {shards}, cache {entries})"
                );
            }
            if entries == 2 {
                assert!(
                    stats.cache_evictions > 0,
                    "two pages for eight keys must evict (shards {shards})"
                );
            }
            if entries == 1024 {
                // The dispatcher inserts before replying, so once a
                // client has an answer the page is cached: only each
                // client's first pass can miss a key.
                assert!(
                    stats.cache_misses <= CLIENTS * expected.len() as u64,
                    "misses {} exceed first-pass worst case (shards {shards})",
                    stats.cache_misses
                );
                assert_eq!(stats.cache_evictions, 0, "an unbounded cache never evicts");
            }
        }
    }
}

/// The invalidation protocol: `invalidate_cache` flash-clears, bumps the
/// generation, and the next identical query misses — with identical bytes.
#[test]
fn invalidate_all_clears_and_bumps_generation() {
    let server = CorpusServer::start(fleet(2), ServeConfig::default());
    let mut session = server.session();
    let fresh = session.query("drama family").unwrap().ranking.render(4);
    let cached = session.query("drama family").unwrap().ranking.render(4);
    assert_eq!(fresh, cached);
    assert_eq!(server.stats().cache_hits, 1, "the replay hit");
    let generation = server.cache_generation();
    server.invalidate_cache();
    assert_eq!(server.cache_generation(), generation + 1);
    let refilled = session.query("drama family").unwrap().ranking.render(4);
    assert_eq!(refilled, fresh, "re-execution after invalidation is byte-identical");
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 1, "the post-invalidation query was a miss");
    assert_eq!(stats.cache_misses, 2);
}

/// A cache hit must skip the shard pool entirely: executor work does not
/// grow, yet the query is served and charged to the session budget.
#[test]
fn cache_hits_skip_the_shard_pool() {
    let server = CorpusServer::start(fleet(2), ServeConfig::default());
    let mut session = server.session();
    session.query("drama family").unwrap();
    let after_miss = server.stats();
    let spent_after_miss = session.spent();
    session.query("drama family").unwrap();
    let after_hit = server.stats();
    assert_eq!(after_hit.postings_scanned, after_miss.postings_scanned, "a hit executes nothing");
    assert_eq!(after_hit.batches, after_miss.batches, "a hit forms no batch");
    assert_eq!(after_hit.queries_served, after_miss.queries_served + 1);
    assert_eq!(
        session.spent(),
        spent_after_miss * 2,
        "the cached answer still charges the session budget"
    );
}

// ------------------------------------------------------ multiplexed front end

/// The mux front end speaks the identical wire protocol: the same request
/// sequence against `serve_tcp` and `serve_tcp_mux` produces identical
/// bytes, verb by verb.
#[test]
fn mux_front_end_is_wire_identical() {
    let requests = [
        "QUERY drama family",
        "TOP 2",
        "QUERY drama family",
        "QUERY ???",
        "EXPLODE now",
        "QUERY comedy wedding",
        "QUIT",
    ];
    let run = |mux: bool| -> Vec<Vec<String>> {
        let server = CorpusServer::start(fleet(2), ServeConfig::default());
        let handle = if mux {
            serve_tcp_mux(server, "127.0.0.1:0").expect("binds")
        } else {
            serve_tcp(server, "127.0.0.1:0").expect("binds")
        };
        let stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut responses = BufReader::new(stream).lines();
        let bodies: Vec<Vec<String>> =
            requests.iter().map(|r| roundtrip(&mut writer, &mut responses, r)).collect();
        handle.shutdown();
        handle.wait();
        bodies
    };
    assert_eq!(run(false), run(true), "one thread or many, the bytes agree");
}

/// One front-end thread, 32 concurrent connections, every request written
/// in two fragments with a pause in between: the incremental line framer
/// must reassemble each mid-stream partial line, and every connection gets
/// the bytes the sequential oracle produced.
#[test]
fn mux_serves_many_connections_with_partial_lines_on_one_thread() {
    const CONNS: usize = 32;
    let corpus = fleet(2);
    let mix = qm_mix();
    let expected: Vec<String> =
        mix.iter().map(|text| corpus.query(text).unwrap().ranking().render(4)).collect();
    let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    let handle = serve_tcp_mux(server, "127.0.0.1:0").expect("binds");
    std::thread::scope(|scope| {
        for conn in 0..CONNS {
            let handle = &handle;
            let mix = &mix;
            let expected = &expected;
            scope.spawn(move || {
                let stream = TcpStream::connect(handle.addr()).expect("connects");
                let mut writer = stream.try_clone().expect("clones");
                let mut responses = BufReader::new(stream).lines();
                for pass in 0..2 {
                    let i = (conn + pass) % mix.len();
                    // Split the request mid-word: the server sees a
                    // partial line, then the rest, then the newline.
                    let request = format!("QUERY {}", mix[i]);
                    let split = request.len() / 2 + conn % 3;
                    writer.write_all(request.as_bytes()[..split].as_ref()).unwrap();
                    writer.flush().unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    writer.write_all(request.as_bytes()[split..].as_ref()).unwrap();
                    writer.write_all(b"\n").unwrap();
                    let mut body = Vec::new();
                    loop {
                        match responses.next() {
                            Some(Ok(line)) if line == END_MARKER => break,
                            Some(Ok(line)) => body.push(line),
                            other => panic!("connection {conn} ended mid-response: {other:?}"),
                        }
                    }
                    let want = &expected[i];
                    assert_eq!(body[0], format!("OK {}", want.lines().count()));
                    assert_eq!(body[1..].join("\n") + "\n", *want, "connection {conn}");
                }
                writer.write_all(b"QUIT\n").unwrap();
            });
        }
    });
    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.queries_served, (CONNS * 2) as u64);
}
