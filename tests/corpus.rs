//! Integration tests of the sharded corpus engine: cross-shard
//! determinism, cross-document comparison tables, concurrent cache
//! consistency, and directory ingestion with the per-document index cache.

use xsact::prelude::*;

/// A corpus where the paper's query spans documents: every store sells
/// TomTom GPS units, so the merged top-k must mix documents.
fn gps_corpus() -> Corpus {
    let stores: Vec<(String, String)> = (0..6)
        .map(|i| {
            let xml = format!(
                "<shop>\
                   <product><name>TomTom Go {i}00</name><kind>GPS</kind>\
                     <reviews><review><pros><compact>yes</compact></pros></review></reviews>\
                   </product>\
                   <product><name>Canon Ixus {i}</name><kind>camera</kind></product>\
                 </shop>"
            );
            (format!("store-{i}"), xml)
        })
        .collect();
    Corpus::from_xml_strings(stores.iter().map(|(n, x)| (n.as_str(), x.as_str()))).unwrap()
}

#[test]
fn shard_counts_1_2_8_yield_byte_identical_rankings_and_tables() {
    let mut corpus = Corpus::synthetic_movies(8, 60, 42);
    let mut baseline: Option<(String, String)> = None;
    for shards in [1usize, 2, 8] {
        corpus.set_shards(shards);
        assert_eq!(corpus.effective_shards(), shards);
        let query = corpus.query("drama family").unwrap().top(4).size_bound(6);
        let ranking = query.ranking().render(usize::MAX);
        let table = query.compare(Algorithm::MultiSwap).unwrap().table();
        match &baseline {
            None => baseline = Some((ranking, table)),
            Some((r, t)) => {
                assert_eq!(*r, ranking, "ranking diverged at {shards} shards");
                assert_eq!(*t, table, "table diverged at {shards} shards");
            }
        }
    }
    let (ranking, _) = baseline.unwrap();
    assert!(ranking.lines().count() > 4, "fixture too small to be meaningful");
}

#[test]
fn bounded_compare_path_matches_ranking_then_compare() {
    // The compare-only path pushes `top` down into each shard (local
    // top-k, merge of shards × k candidates); it must produce exactly the
    // table the full-ranking path produces, at every shard count.
    let mut corpus = Corpus::synthetic_movies(5, 50, 11);
    for shards in [1usize, 2, 8] {
        corpus.set_shards(shards);
        // Full path: render the ranking first, then compare (reuses memo).
        let with_ranking = corpus.query("drama family").unwrap().top(4).size_bound(6);
        let full_render = with_ranking.ranking().render(4);
        let full = with_ranking.compare(Algorithm::MultiSwap).unwrap();
        // Bounded path: compare without ever asking for the ranking.
        let bounded_query = corpus.query("drama family").unwrap().top(4).size_bound(6);
        let bounded = bounded_query.compare(Algorithm::MultiSwap).unwrap();
        assert_eq!(bounded.table(), full.table(), "{shards} shards");
        assert_eq!(bounded.dod(), full.dod(), "{shards} shards");
        let hits =
            |o: &CorpusOutcome| o.hits.iter().map(|h| (h.doc, h.dewey.clone())).collect::<Vec<_>>();
        assert_eq!(hits(&bounded), hits(&full), "{shards} shards");
        // And the bounded hits are exactly the full ranking's head.
        let bounded_render = CorpusRanking { hits: bounded.hits.clone(), shards }.render(4);
        assert_eq!(bounded_render, full_render, "{shards} shards");
    }
}

#[test]
fn compare_after_ranking_reuses_the_fan_out() {
    // Satellite fix: requesting both the ranking and the table must run
    // exactly one fan-out — compare() slices the memoized full ranking
    // instead of launching a second, bounded search.
    let corpus = Corpus::synthetic_movies(3, 40, 5).with_shards(2);
    let searches = |c: &Corpus| -> u64 {
        (0..c.len()).map(|i| c.workbench(DocId(i as u32)).searches_executed()).sum()
    };
    let query = corpus.query("drama family").unwrap().top(4);
    assert!(!query.ranking().hits.is_empty());
    let after_ranking = searches(&corpus);
    assert_eq!(after_ranking, corpus.len() as u64, "one search per document");
    query.compare(Algorithm::MultiSwap).unwrap();
    assert_eq!(searches(&corpus), after_ranking, "compare() must not search again");
    // A compare-only query fans out exactly once too (bounded).
    corpus.query("drama family").unwrap().top(4).compare(Algorithm::MultiSwap).unwrap();
    assert_eq!(searches(&corpus), after_ranking + corpus.len() as u64);
    // Executor counters aggregate corpus-wide.
    assert!(corpus.executor_stats().postings_scanned > 0);
}

#[test]
fn merged_ranking_spans_documents_and_is_score_ordered() {
    let corpus = gps_corpus().with_shards(3);
    let query = corpus.query("TomTom GPS").unwrap();
    let ranking = query.ranking();
    assert_eq!(ranking.hits.len(), 6, "one hit per store");
    let docs: std::collections::HashSet<_> = ranking.hits.iter().map(|h| h.doc).collect();
    assert_eq!(docs.len(), 6);
    for pair in ranking.hits.windows(2) {
        assert!(pair[0].score.score >= pair[1].score.score, "merged ranking must be best-first");
    }
    // Equal scores (structurally identical stores) tie-break on DocId.
    let tied: Vec<_> = ranking
        .hits
        .iter()
        .filter(|h| h.score.score == ranking.hits[0].score.score)
        .map(|h| h.doc)
        .collect();
    let mut sorted = tied.clone();
    sorted.sort();
    assert_eq!(tied, sorted, "tied scores must order by document id");
}

#[test]
fn cross_document_comparison_reproduces_figure1_shape() {
    // Figure 1's two GPS units, but living in *different* documents: the
    // corpus comparison must still line their features up in one table.
    let corpus = gps_corpus();
    let outcome = corpus
        .query("TomTom GPS")
        .unwrap()
        .top(4)
        .size_bound(6)
        .compare(Algorithm::MultiSwap)
        .unwrap();
    assert_eq!(outcome.hits.len(), 4);
    let docs: std::collections::HashSet<_> = outcome.hits.iter().map(|h| h.doc).collect();
    assert_eq!(docs.len(), 4, "top-4 drawn from four different documents");
    let table = outcome.table();
    for hit in &outcome.hits {
        assert!(
            table.contains(hit.doc_name.as_ref()),
            "column for {} missing:\n{table}",
            hit.doc_name
        );
    }
}

#[test]
fn concurrent_corpus_queries_are_consistent_and_lose_no_counter_updates() {
    let corpus = Corpus::synthetic_movies(4, 40, 7).with_shards(2);
    const THREADS: usize = 8;
    const ROUNDS: usize = 5;
    let baseline =
        corpus.query("drama family").unwrap().top(4).compare(Algorithm::MultiSwap).unwrap();
    let base_lookups: u64 =
        (0..corpus.len()).map(|i| corpus.workbench(DocId(i as u32)).cache_stats().lookups()).sum();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    let outcome = corpus
                        .query("drama family")
                        .unwrap()
                        .top(4)
                        .compare(Algorithm::MultiSwap)
                        .unwrap();
                    assert_eq!(outcome.table(), baseline.table());
                    assert_eq!(outcome.dod(), baseline.dod());
                }
            });
        }
    });
    // Every feature lookup increments exactly one counter: the baseline
    // run plus THREADS * ROUNDS runs of 4 lookups each, none lost.
    let lookups: u64 =
        (0..corpus.len()).map(|i| corpus.workbench(DocId(i as u32)).cache_stats().lookups()).sum();
    assert_eq!(base_lookups, 4);
    assert_eq!(lookups, base_lookups + (THREADS * ROUNDS * 4) as u64, "lost counter updates");
    // After the first extraction everything is served from the cache.
    let misses: u64 =
        (0..corpus.len()).map(|i| corpus.workbench(DocId(i as u32)).cache_stats().misses).sum();
    assert!(misses <= 4 * 2, "at most first-touch (plus benign racing) extractions: {misses}");
}

/// Scratch directory removed on drop, so a failing assertion cannot leak
/// it into the system temp dir.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("xsact-corpus-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn directory_ingestion_is_sorted_and_index_cache_round_trips() {
    let tmp = TempDir::new("roundtrip");
    let dir = tmp.0.clone();
    // Write files in non-sorted creation order; ingestion must sort.
    for name in ["zeta", "alpha", "midway"] {
        std::fs::write(
            dir.join(format!("{name}.xml")),
            format!("<shop><product><name>{name} gps</name><kind>GPS</kind></product></shop>"),
        )
        .unwrap();
    }
    std::fs::write(dir.join("notes.txt"), "not xml, must be ignored").unwrap();

    let corpus = Corpus::from_dir(&dir).unwrap();
    assert_eq!(corpus.len(), 3);
    assert_eq!(corpus.doc_name(DocId(0)), "alpha");
    assert_eq!(corpus.doc_name(DocId(1)), "midway");
    assert_eq!(corpus.doc_name(DocId(2)), "zeta");
    let cold = corpus.query("gps").unwrap().ranking().render(10);

    // Round-trip through the index cache: first cached load builds and
    // saves, second load restores; rankings stay identical.
    let cache = dir.join("indexes");
    let built = Corpus::from_dir_cached(&dir, &cache).unwrap();
    for name in ["alpha", "midway", "zeta"] {
        assert!(cache.join(format!("{name}.xidx")).exists(), "{name}.xidx not written");
    }
    let restored = Corpus::from_dir_cached(&dir, &cache).unwrap();
    assert_eq!(built.query("gps").unwrap().ranking().render(10), cold);
    assert_eq!(restored.query("gps").unwrap().ranking().render(10), cold);

    // A corrupt cache entry is rebuilt, not trusted and not fatal.
    std::fs::write(cache.join("alpha.xidx"), b"garbage").unwrap();
    let healed = Corpus::from_dir_cached(&dir, &cache).unwrap();
    assert_eq!(healed.query("gps").unwrap().ranking().render(10), cold);
}

#[test]
fn corpus_errors_are_typed() {
    let corpus = gps_corpus();
    assert!(matches!(corpus.query(""), Err(XsactError::EmptyQuery)));
    assert!(matches!(Corpus::new().query("gps"), Err(XsactError::EmptyCorpus)));
    assert!(matches!(
        corpus.query("zeppelin").unwrap().compare(Algorithm::MultiSwap),
        Err(XsactError::NoResults { .. })
    ));
    assert!(matches!(
        corpus.query("Canon").unwrap().top(1).compare(Algorithm::MultiSwap),
        Err(XsactError::NotEnoughResults { .. })
    ));
    assert!(matches!(
        corpus.query("TomTom").unwrap().threshold(-1.0).compare(Algorithm::MultiSwap),
        Err(XsactError::InvalidConfig(_))
    ));
    let missing = std::env::temp_dir().join("xsact-no-such-dir-test");
    assert!(matches!(Corpus::from_dir(&missing), Err(XsactError::Io(_))));
}

#[test]
fn workbenches_inside_the_corpus_stay_layer_accessible() {
    // The ROADMAP's API decision: orchestration lives in the facade, the
    // layers stay reachable. A corpus exposes each document's workbench,
    // and through it the engine and document.
    let corpus = gps_corpus();
    let wb = corpus.workbench(DocId(2));
    assert!(wb.engine().index().stats().terms > 0);
    let results = wb.query("TomTom").unwrap().results();
    assert_eq!(results.len(), 1);
    assert!(wb.result_xml(&results[0]).starts_with("<product>"));
}
