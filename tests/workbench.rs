//! Integration tests of the `Workbench` pipeline facade: the documented
//! entry point must drive the paper's full flow (search → entity promotion
//! → feature extraction → DFS generation) with typed errors, and its
//! feature cache must make repeated queries free of re-extraction.

use xsact::prelude::*;
use xsact_data::fixtures;
use xsact_data::movies::{MovieGenConfig, MoviesGen};

fn figure1_workbench() -> Workbench {
    Workbench::from_document(fixtures::figure1_document())
}

#[test]
fn every_algorithm_runs_through_the_pipeline() {
    let wb = figure1_workbench();
    let pipeline = wb
        .query(fixtures::PAPER_QUERY)
        .expect("paper query is non-empty")
        .size_bound(fixtures::TABLE_BOUND);
    for algo in Algorithm::ALL {
        let outcome = pipeline.compare(algo).expect("figure 1 has two results");
        assert_eq!(outcome.algorithm, algo);
        assert!(outcome.set.all_valid(&outcome.instance), "{}", algo.name());
        assert!(outcome.dod() <= outcome.dod_upper_bound(), "{}", algo.name());
        assert!(!outcome.table().is_empty());
    }
}

#[test]
fn dod_ordering_matches_the_paper() {
    // multi-swap ≥ single-swap ≥ snippet on the worked example (and the
    // exhaustive oracle confirms the multi-swap optimum).
    let wb = figure1_workbench();
    let pipeline = wb
        .query(fixtures::PAPER_QUERY)
        .expect("paper query is non-empty")
        .size_bound(fixtures::TABLE_BOUND);
    let snippet = pipeline.compare(Algorithm::Snippet).unwrap();
    let single = pipeline.compare(Algorithm::SingleSwap).unwrap();
    let multi = pipeline.compare(Algorithm::MultiSwap).unwrap();
    assert!(single.dod() >= snippet.dod(), "single {} < snippet {}", single.dod(), snippet.dod());
    assert!(multi.dod() >= single.dod(), "multi {} < single {}", multi.dod(), single.dod());
    assert_eq!(multi.dod(), 5);

    let oracle = pipeline.compare(Algorithm::Exhaustive { limit: 5_000_000 }).unwrap();
    assert_eq!(oracle.algorithm, Algorithm::Exhaustive { limit: 5_000_000 });
    assert_eq!(oracle.dod(), multi.dod());
}

#[test]
fn feature_cache_returns_identical_features_across_queries() {
    let wb = figure1_workbench();
    let first = wb.query(fixtures::PAPER_QUERY).unwrap().features().unwrap();
    let stats_after_first = wb.cache_stats();
    assert_eq!(stats_after_first.misses, first.len() as u64);
    assert_eq!(stats_after_first.hits, 0);

    // An identical repeated query re-extracts nothing…
    let second = wb.query(fixtures::PAPER_QUERY).unwrap().features().unwrap();
    let stats_after_second = wb.cache_stats();
    assert_eq!(stats_after_second.misses, stats_after_first.misses, "second extract pass ran");
    assert_eq!(stats_after_second.hits, second.len() as u64);
    // …and the features are identical, value for value.
    assert_eq!(first, second);

    // A different query over the same entities also reuses the cache (the
    // cache is keyed by result root, not by query).
    let third = wb.query("TomTom").unwrap().features().unwrap();
    assert!(third.iter().all(|rf| first.contains(rf)));
    assert_eq!(wb.cache_stats().misses, stats_after_first.misses);
}

#[test]
fn cache_scales_across_a_query_session() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 120, ..Default::default() }).generate();
    let wb = Workbench::from_document(doc);
    let queries = ["drama family", "drama", "family", "war soldier"];
    for q in queries {
        if let Ok(pipeline) = wb.query(q) {
            let _ = pipeline.take(6).features();
        }
    }
    let stats = wb.cache_stats();
    // Overlapping queries (drama ⊃ drama family, …) must have produced hits
    // and the cache never extracts the same root twice.
    assert!(stats.hits > 0, "no cache reuse across overlapping queries");
    assert_eq!(wb.cached_results() as u64, stats.misses);
}

#[test]
fn empty_query_surfaces_typed_error() {
    let wb = figure1_workbench();
    assert!(matches!(wb.query(""), Err(XsactError::EmptyQuery)));
    assert!(matches!(wb.query("  ,,, !"), Err(XsactError::EmptyQuery)));
    // Display is human-readable for the CLI.
    assert!(XsactError::EmptyQuery.to_string().contains("no search terms"));
}

#[test]
fn unmatched_query_surfaces_no_results() {
    let wb = figure1_workbench();
    let err = wb.query("zeppelin").unwrap().features().unwrap_err();
    match err {
        XsactError::NoResults { query } => assert_eq!(query, "{zeppelin}"),
        other => panic!("expected NoResults, got {other:?}"),
    }
    let err = wb.query("zeppelin").unwrap().compare(Algorithm::MultiSwap).unwrap_err();
    assert!(matches!(err, XsactError::NoResults { .. }));
}

#[test]
fn selection_and_semantics_flow_through() {
    let wb = figure1_workbench();
    let slca = wb.query(fixtures::PAPER_QUERY).unwrap().semantics(ResultSemantics::Slca).results();
    let elca = wb.query(fixtures::PAPER_QUERY).unwrap().semantics(ResultSemantics::Elca).results();
    assert!(elca.len() >= slca.len());

    let selected = wb.query(fixtures::PAPER_QUERY).unwrap().select([2, 1]).selection().unwrap();
    assert_eq!(selected.len(), 2);
    assert_eq!(selected[0].label, fixtures::GPS3_NAME);
    assert_eq!(selected[1].label, fixtures::GPS1_NAME);
}

#[test]
fn ranked_pipeline_orders_best_first() {
    let wb = figure1_workbench();
    let ranked = wb.query(fixtures::PAPER_QUERY).unwrap().ranked(true).ranked_results();
    assert!(!ranked.is_empty());
    for pair in ranked.windows(2) {
        assert!(pair[0].1.score >= pair[1].1.score);
    }
    // The ranked flag changes result order, not membership.
    let plain = wb.query(fixtures::PAPER_QUERY).unwrap().results();
    assert_eq!(ranked.len(), plain.len());
}

#[test]
fn ranked_take_pushes_k_down_and_equals_the_truncated_full_sort() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 80, ..Default::default() }).generate();
    let wb = Workbench::from_document(doc);
    let full = wb.query("drama family").unwrap().ranked(true).results();
    assert!(full.len() > 8, "the fixture must have plenty of results");
    for k in [0, 1, 3, 7, full.len(), full.len() + 5] {
        let searches_before = wb.searches_executed();
        let pipeline = wb.query("drama family").unwrap().ranked(true).take(k);
        let selection = pipeline.selection().unwrap();
        assert_eq!(selection, full[..k.min(full.len())], "k = {k}");
        // The bound went down into the executor: exactly one (bounded)
        // search ran, and the pipeline observed its counters.
        assert_eq!(wb.searches_executed(), searches_before + 1, "k = {k}");
        let stats = pipeline.executor_stats().expect("a search ran");
        if k < full.len() {
            assert!(stats.candidates_pruned > 0, "k = {k}: the heap must have evicted");
        }
    }
}

#[test]
fn top_results_equal_the_ranked_results_prefix() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 60, ..Default::default() }).generate();
    let wb = Workbench::from_document(doc);
    let unbounded = wb.query("drama family").unwrap().ranked_results();
    let top = wb.query("drama family").unwrap().take(5).top_results();
    assert_eq!(top, unbounded[..5.min(unbounded.len())]);
    // Without a bound, top_results is the whole ranking.
    let all = wb.query("drama family").unwrap().top_results();
    assert_eq!(all, unbounded);
    // And an unbounded pipeline shares one memoized search between
    // top_results() and ranked_results().
    let before = wb.searches_executed();
    let pipeline = wb.query("drama family").unwrap();
    assert_eq!(pipeline.top_results(), pipeline.ranked_results());
    assert_eq!(wb.searches_executed(), before + 1, "memo must be shared");
}

#[test]
fn executor_stats_accumulate_across_queries() {
    let wb = figure1_workbench();
    assert_eq!(wb.executor_stats(), ExecutorStats::default());
    assert_eq!(wb.searches_executed(), 0);
    let _ = wb.query(fixtures::PAPER_QUERY).unwrap().results();
    let after_one = wb.executor_stats();
    assert!(after_one.postings_scanned > 0);
    assert_eq!(wb.searches_executed(), 1);
    let _ = wb.query(fixtures::PAPER_QUERY).unwrap().ranked(true).results();
    let after_two = wb.executor_stats();
    assert!(after_two.postings_scanned > after_one.postings_scanned);
    assert_eq!(wb.searches_executed(), 2);
    // A zero-postings term short-circuits in the planner: the search is
    // counted, the counters do not move.
    let _ = wb.query("tomtom zeppelin").unwrap().results();
    assert_eq!(wb.executor_stats(), after_two);
    assert_eq!(wb.searches_executed(), 3);
    // clear_cache resets the feature cache, not the executor history.
    wb.clear_cache();
    assert_eq!(wb.executor_stats(), after_two);
}

#[test]
fn workbench_from_xml_end_to_end() {
    let wb = Workbench::from_xml(
        "<shop>\
           <product><name>Alpha GPS</name><kind>gps</kind>\
             <reviews><review><pros><compact>yes</compact></pros></review></reviews></product>\
           <product><name>Beta GPS</name><kind>gps</kind>\
             <reviews><review><pros><fast>yes</fast></pros></review></reviews></product>\
         </shop>",
    )
    .expect("well-formed XML");
    let outcome = wb.query("gps").unwrap().size_bound(4).compare(Algorithm::MultiSwap).unwrap();
    assert_eq!(outcome.labels(), ["Alpha GPS", "Beta GPS"]);
    assert!(outcome.dod() > 0);

    assert!(matches!(Workbench::from_xml("<broken"), Err(XsactError::Xml(_))));
}
