//! Determinism guarantees: equal seeds and inputs give byte-identical
//! datasets, identical search results and identical comparison outcomes —
//! the property that makes every number in EXPERIMENTS.md reproducible.

use xsact::prelude::*;
use xsact_core::Algorithm;
use xsact_data::movies::{MovieGenConfig, MoviesGen};
use xsact_data::{
    JobsGen, JobsGenConfig, OutdoorGen, OutdoorGenConfig, ReviewsGen, ReviewsGenConfig,
};
use xsact_xml::writer::write_subtree;

#[test]
fn all_generators_are_seed_deterministic() {
    let movies =
        |seed| MoviesGen::new(MovieGenConfig { seed, movies: 40, ..Default::default() }).generate();
    let reviews =
        |seed| ReviewsGen::new(ReviewsGenConfig { seed, products: 8, reviews: (3, 12) }).generate();
    let outdoor = |seed| {
        OutdoorGen::new(OutdoorGenConfig { seed, products: (5, 15), focus_bias: 0.7 }).generate()
    };
    let jobs =
        |seed| JobsGen::new(JobsGenConfig { seed, openings: (4, 9), focus_bias: 0.7 }).generate();

    for seed in [0u64, 42, 12345] {
        for (name, gen) in [
            ("movies", &movies as &dyn Fn(u64) -> xsact_xml::Document),
            ("reviews", &reviews),
            ("outdoor", &outdoor),
            ("jobs", &jobs),
        ] {
            let a = gen(seed);
            let b = gen(seed);
            assert_eq!(
                write_subtree(&a, a.root()),
                write_subtree(&b, b.root()),
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn different_seeds_give_different_data() {
    let a = MoviesGen::new(MovieGenConfig { seed: 1, movies: 40, ..Default::default() }).generate();
    let b = MoviesGen::new(MovieGenConfig { seed: 2, movies: 40, ..Default::default() }).generate();
    assert_ne!(write_subtree(&a, a.root()), write_subtree(&b, b.root()));
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let doc = MoviesGen::new(MovieGenConfig { movies: 80, ..Default::default() }).generate();
        let engine = SearchEngine::build(doc);
        let results = engine.search(&Query::parse("drama family"));
        let features: Vec<ResultFeatures> =
            results.iter().take(5).map(|r| engine.extract_features(r)).collect();
        let outcome = Comparison::new(&features).size_bound(5).run(Algorithm::MultiSwap);
        (outcome.dod(), outcome.table())
    };
    let (dod_a, table_a) = run();
    let (dod_b, table_b) = run();
    assert_eq!(dod_a, dod_b);
    assert_eq!(table_a, table_b);
}

#[test]
fn index_fingerprint_is_stable_across_rebuilds() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 30, ..Default::default() }).generate();
    let f1 = xsact_index::document_fingerprint(&doc);
    let f2 = xsact_index::document_fingerprint(&doc);
    assert_eq!(f1, f2);
    // Round-trip through XML keeps the fingerprint (structure unchanged).
    let xml = xsact_xml::writer::write_document(&doc, &xsact_xml::WriteOptions::compact());
    let reparsed = xsact_xml::parse_document(&xml).unwrap();
    assert_eq!(f1, xsact_index::document_fingerprint(&reparsed));
}

#[test]
fn saved_index_round_trips_through_bytes() {
    let doc = MoviesGen::new(MovieGenConfig { movies: 30, ..Default::default() }).generate();
    let index = xsact_index::InvertedIndex::build(&doc);
    let mut bytes = Vec::new();
    xsact_index::save_index(&doc, &index, &mut bytes).unwrap();
    let loaded = xsact_index::load_index(&doc, &mut bytes.as_slice()).unwrap();
    let engine_a = SearchEngine::from_parts(doc.clone(), index);
    let engine_b = SearchEngine::from_parts(doc, loaded);
    for q in ["drama family", "war soldier", "the"] {
        assert_eq!(
            engine_a.search(&Query::parse(q)),
            engine_b.search(&Query::parse(q)),
            "query {q}"
        );
    }
}
