//! Failure-injection and edge-case tests: malformed inputs, degenerate
//! configurations, and boundary conditions across the stack.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use xsact::prelude::*;
use xsact::serve::{serve_tcp, END_MARKER};
use xsact_core::{Algorithm, DfsConfig, Instance};
use xsact_entity::{FeatureType, ResultFeatures};
use xsact_xml::XmlError;

// ------------------------------------------------------------ malformed XML

#[test]
fn malformed_xml_reports_structured_errors() {
    type Check = fn(&XmlError) -> bool;
    let cases: Vec<(&str, Check)> = vec![
        ("<a><b></a>", |e| matches!(e, XmlError::MismatchedTag { .. })),
        ("<a>", |e| matches!(e, XmlError::UnclosedElements { .. })),
        ("</a>", |e| matches!(e, XmlError::UnmatchedClose { .. })),
        ("<a/><b/>", |e| matches!(e, XmlError::MultipleRoots { .. })),
        ("", |e| matches!(e, XmlError::EmptyDocument)),
        ("<a>&broken;</a>", |e| matches!(e, XmlError::BadEntity { .. })),
        ("<a x=1/>", |e| matches!(e, XmlError::UnexpectedChar { .. })),
        ("<a x=\"1\" x=\"2\"/>", |e| matches!(e, XmlError::DuplicateAttribute { .. })),
    ];
    for (input, check) in cases {
        let err = parse_document(input).expect_err(input);
        assert!(check(&err), "{input} gave unexpected error {err}");
        // Every error renders a human-readable message.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn engine_on_trivial_documents() {
    // A document that is only a root element.
    let engine = SearchEngine::build(parse_document("<empty/>").unwrap());
    assert!(engine.search(&Query::parse("anything")).is_empty());
    // Query matching the root only.
    let results = engine.search(&Query::parse("empty"));
    assert_eq!(results.len(), 1);
    let rf = engine.extract_features(&results[0]);
    assert_eq!(rf.type_count(), 0);
}

#[test]
fn zero_postings_term_surfaces_no_results_under_slca() {
    // Satellite: the planner short-circuits a query containing a term with
    // zero postings before any SLCA work; the facade still reports the
    // typed NoResults, and the executor counters prove nothing ran.
    let wb = figure1_like_workbench();
    let err = wb
        .query("tomtom zeppelin")
        .unwrap()
        .semantics(ResultSemantics::Slca)
        .features()
        .unwrap_err();
    assert!(matches!(err, XsactError::NoResults { .. }), "{err}");
    assert_eq!(wb.executor_stats(), ExecutorStats::default(), "short-circuit must cost nothing");
}

#[test]
fn zero_postings_term_surfaces_no_results_under_elca() {
    let wb = figure1_like_workbench();
    let err = wb
        .query("tomtom zeppelin")
        .unwrap()
        .semantics(ResultSemantics::Elca)
        .features()
        .unwrap_err();
    assert!(matches!(err, XsactError::NoResults { .. }), "{err}");
    assert_eq!(wb.executor_stats(), ExecutorStats::default(), "no ELCA full scan may run");
}

fn figure1_like_workbench() -> Workbench {
    Workbench::from_xml(
        "<shop><product><name>TomTom Go</name><kind>GPS</kind></product>\
         <product><name>Garmin</name><kind>GPS</kind></product></shop>",
    )
    .expect("well-formed fixture")
}

// ------------------------------------------------------- degenerate configs

fn one_result() -> Vec<ResultFeatures> {
    vec![ResultFeatures::from_raw(
        "only",
        [("e".to_string(), 4)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 3)],
    )]
}

#[test]
fn single_result_comparison_is_degenerate_but_sound() {
    for algo in Algorithm::ALL {
        let outcome = Comparison::new(&one_result()).size_bound(3).run(algo);
        assert_eq!(outcome.dod(), 0, "{}", algo.name());
        // The table still renders the result's own features.
        if algo != Algorithm::Snippet {
            assert!(outcome.table().contains("only"));
        }
    }
}

#[test]
fn zero_size_bound_yields_empty_dfss() {
    let a = ResultFeatures::from_raw(
        "a",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 4)],
    );
    let b = ResultFeatures::from_raw(
        "b",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 1)],
    );
    for algo in Algorithm::ALL {
        let outcome = Comparison::new(&[a.clone(), b.clone()]).size_bound(0).run(algo);
        assert_eq!(outcome.dod(), 0);
        for i in 0..2 {
            assert_eq!(outcome.dfs_size(i), 0);
        }
    }
}

#[test]
fn results_with_disjoint_types_cannot_differentiate() {
    let a = ResultFeatures::from_raw(
        "a",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "only_in_a"), "yes".to_string(), 4)],
    );
    let b = ResultFeatures::from_raw(
        "b",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "only_in_b"), "yes".to_string(), 4)],
    );
    for algo in Algorithm::ALL {
        let outcome = Comparison::new(&[a.clone(), b.clone()]).size_bound(5).run(algo);
        // Absence is unknown (the paper's NULL analogy): DoD must be 0.
        assert_eq!(outcome.dod(), 0, "{}", algo.name());
    }
}

#[test]
fn results_with_no_features_at_all() {
    let empty = |label: &str| {
        ResultFeatures::from_raw(
            label,
            [("e".to_string(), 1)],
            Vec::<(FeatureType, String, u32)>::new(),
        )
    };
    let outcome =
        Comparison::new(&[empty("a"), empty("b")]).size_bound(5).run(Algorithm::MultiSwap);
    assert_eq!(outcome.dod(), 0);
    assert_eq!(outcome.dfs_size(0), 0);
}

#[test]
fn identical_results_have_zero_dod_under_every_algorithm() {
    let mk = || {
        ResultFeatures::from_raw(
            "same",
            [("e".to_string(), 10)],
            [
                (FeatureType::new("e", "x"), "yes".to_string(), 7),
                (FeatureType::new("e", "y"), "no".to_string(), 3),
            ],
        )
    };
    for algo in Algorithm::ALL {
        let outcome = Comparison::new(&[mk(), mk(), mk()]).size_bound(4).run(algo);
        assert_eq!(outcome.dod(), 0, "{}", algo.name());
    }
}

#[test]
fn huge_size_bound_is_clamped_to_available_types() {
    let a = ResultFeatures::from_raw(
        "a",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 4)],
    );
    let b = ResultFeatures::from_raw(
        "b",
        [("e".to_string(), 5)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 1)],
    );
    let outcome = Comparison::new(&[a, b]).size_bound(1_000_000).run(Algorithm::MultiSwap);
    assert_eq!(outcome.dfs_size(0), 1);
    assert_eq!(outcome.dod(), 1);
}

#[test]
fn extreme_thresholds() {
    let a = ResultFeatures::from_raw(
        "a",
        [("e".to_string(), 10)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 9)],
    );
    let b = ResultFeatures::from_raw(
        "b",
        [("e".to_string(), 10)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 5)],
    );
    // x = 0: any gap differentiates.
    let loose = Comparison::new(&[a.clone(), b.clone()])
        .threshold(0.0)
        .size_bound(2)
        .run(Algorithm::MultiSwap);
    assert_eq!(loose.dod(), 1);
    // x = 10_000: a 90% vs 50% gap (0.4) needs to exceed 100 × 0.5 → never.
    let strict =
        Comparison::new(&[a, b]).threshold(10_000.0).size_bound(2).run(Algorithm::MultiSwap);
    assert_eq!(strict.dod(), 0);
}

#[test]
fn instance_with_zero_entity_instances_is_safe() {
    // An entity path claimed with 0 instances: ratios are defined as 0.
    let a = ResultFeatures::from_raw(
        "a",
        [("e".to_string(), 0)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 2)],
    );
    let b = ResultFeatures::from_raw(
        "b",
        [("e".to_string(), 10)],
        [(FeatureType::new("e", "x"), "yes".to_string(), 2)],
    );
    let inst = Instance::build(&[a, b], DfsConfig::default());
    // Ratio 0 vs 0.2 → differentiable; must not panic or divide by zero.
    assert!(inst.differentiable(0, 1, 0));
}

// ------------------------------------------------- serving failure modes

fn serve_corpus() -> Arc<Corpus> {
    Arc::new(Corpus::synthetic_movies(4, 24, 11).with_shards(2))
}

/// One line-protocol exchange: send a request, read up to the terminator.
fn tcp_exchange(
    writer: &mut TcpStream,
    responses: &mut impl Iterator<Item = std::io::Result<String>>,
    request: &str,
) -> Vec<String> {
    writer.write_all(format!("{request}\n").as_bytes()).expect("request sent");
    let mut lines = Vec::new();
    loop {
        match responses.next() {
            Some(Ok(line)) if line == END_MARKER => return lines,
            Some(Ok(line)) => lines.push(line),
            other => panic!("connection ended mid-response: {other:?}"),
        }
    }
}

/// Satellite: the serving runtime's two new failure modes are *typed* —
/// [`XsactError::Overloaded`] and [`XsactError::BudgetExceeded`] carry
/// their numbers through the facade, not stringly-typed panics.
#[test]
fn overload_and_budget_are_typed_through_the_facade() {
    // A zero-capacity queue is deterministically overloaded.
    let overloaded = CorpusServer::start(
        serve_corpus(),
        ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
    );
    match overloaded.session().query("drama").unwrap_err() {
        XsactError::Overloaded { depth, capacity } => {
            assert_eq!(capacity, 0);
            assert_eq!(depth, 0);
        }
        other => panic!("expected Overloaded, got {other}"),
    }

    // Budget 1 admits exactly one matching query per session.
    let budgeted = CorpusServer::start(
        serve_corpus(),
        ServeConfig { budget: Some(1), ..ServeConfig::default() },
    );
    let mut session = budgeted.session();
    session.query("drama").expect("first query fits the budget");
    match session.query("drama").unwrap_err() {
        XsactError::BudgetExceeded { spent, budget } => {
            assert_eq!(budget, 1);
            assert!(spent >= 1, "spend reflects postings actually scanned");
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    // Both errors render actionable messages.
    let msg = XsactError::Overloaded { depth: 3, capacity: 3 }.to_string();
    assert!(msg.contains("overloaded") && msg.contains('3'), "{msg}");
    let msg = XsactError::BudgetExceeded { spent: 9, budget: 4 }.to_string();
    assert!(msg.contains("budget") && msg.contains('9'), "{msg}");
}

/// Satellite, other half: the same two failure modes surface over the TCP
/// line protocol as stable `ERR <CODE>` lines a scripted client can match.
#[test]
fn overload_and_budget_surface_through_the_line_protocol() {
    // Overload: zero-capacity queue behind a real socket.
    let server = CorpusServer::start(
        serve_corpus(),
        ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
    );
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut responses = BufReader::new(stream).lines();
    let resp = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(resp[0].starts_with("ERR OVERLOADED "), "{resp:?}");
    let stats = tcp_exchange(&mut writer, &mut responses, "STATS");
    assert!(stats.iter().any(|l| l == "rejected_overload 1"), "{stats:?}");
    tcp_exchange(&mut writer, &mut responses, "SHUTDOWN");
    handle.wait();

    // Budget: one query succeeds, the next on the same connection is
    // rejected with the budget code (sessions are per connection).
    let server = CorpusServer::start(
        serve_corpus(),
        ServeConfig { budget: Some(1), ..ServeConfig::default() },
    );
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut responses = BufReader::new(stream).lines();
    let first = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(first[0].starts_with("OK "), "{first:?}");
    let second = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(second[0].starts_with("ERR BUDGET_EXCEEDED "), "{second:?}");
    let stats = tcp_exchange(&mut writer, &mut responses, "STATS");
    assert!(stats.iter().any(|l| l == "rejected_budget 1"), "{stats:?}");
    tcp_exchange(&mut writer, &mut responses, "SHUTDOWN");
    let snapshot = handle.wait();
    assert_eq!(snapshot.queries_served, 1);
    assert_eq!(snapshot.rejected_budget, 1);
}

/// Satellite: the robustness PR's two new failure modes are typed through
/// the facade — [`XsactError::DeadlineExceeded`] and
/// [`XsactError::ShardFailed`] carry their context, map to stable error
/// codes, and never poison the server.
#[test]
fn deadline_and_shard_failure_are_typed_through_the_facade() {
    use std::time::Duration;
    use xsact::serve::{error_code, FaultPlan};

    // A zero deadline deterministically expires every query at dispatch.
    let expired = CorpusServer::start(
        serve_corpus(),
        ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() },
    );
    match expired.session().query("drama").unwrap_err() {
        e @ XsactError::DeadlineExceeded { deadline_ms: 0, .. } => {
            assert_eq!(error_code(&e), "DEADLINE_EXCEEDED");
            assert!(e.to_string().contains("deadline exceeded"), "{e}");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    assert_eq!(expired.stats().rejected_deadline, 1);

    // An armed shard_panic fails exactly one batch, typed, and the
    // respawned worker serves the retry.
    let faulty = CorpusServer::start(
        serve_corpus(),
        ServeConfig {
            faults: FaultPlan::parse("shard_panic@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let mut session = faulty.session();
    match session.query("drama").unwrap_err() {
        e @ XsactError::ShardFailed { .. } => {
            assert_eq!(error_code(&e), "SHARD_FAILED");
            assert!(e.to_string().contains("retry"), "{e}");
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    session.query("drama").expect("the respawned worker serves the retry");
    let stats = faulty.stats();
    assert_eq!((stats.shard_failed, stats.shard_restarts), (1, 1));
}

/// Satellite, other half: the same failure modes surface over the TCP
/// line protocol as stable `ERR <CODE>` lines, and the connection (and
/// server) stay usable afterwards.
#[test]
fn deadline_and_shard_failure_surface_through_the_line_protocol() {
    use std::time::Duration;
    use xsact::serve::FaultPlan;

    // Deadline: zero budget behind a real socket.
    let server = CorpusServer::start(
        serve_corpus(),
        ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() },
    );
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut responses = BufReader::new(stream).lines();
    let resp = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(resp[0].starts_with("ERR DEADLINE_EXCEEDED "), "{resp:?}");
    let stats = tcp_exchange(&mut writer, &mut responses, "STATS");
    assert!(stats.iter().any(|l| l == "rejected_deadline 1"), "{stats:?}");
    tcp_exchange(&mut writer, &mut responses, "SHUTDOWN");
    handle.wait();

    // Shard failure: the panicked batch is an ERR line, the next query on
    // the same connection succeeds, and the counters say what happened.
    let server = CorpusServer::start(
        serve_corpus(),
        ServeConfig {
            faults: FaultPlan::parse("shard_panic@1").unwrap(),
            ..ServeConfig::default()
        },
    );
    let handle = serve_tcp(server, "127.0.0.1:0").expect("binds");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut responses = BufReader::new(stream).lines();
    let failed = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(failed[0].starts_with("ERR SHARD_FAILED "), "{failed:?}");
    let recovered = tcp_exchange(&mut writer, &mut responses, "QUERY drama");
    assert!(recovered[0].starts_with("OK "), "{recovered:?}");
    let metrics = tcp_exchange(&mut writer, &mut responses, "METRICS");
    assert!(metrics.iter().any(|l| l == "xsact_shard_restarts 1"), "{metrics:?}");
    tcp_exchange(&mut writer, &mut responses, "SHUTDOWN");
    let snapshot = handle.wait();
    assert_eq!(snapshot.shard_failed, 1);
    assert_eq!(snapshot.shard_restarts, 1);
    assert_eq!(snapshot.queries_served, 1);
}

#[test]
fn unicode_content_flows_through_the_pipeline() {
    let xml = "<shop><product><name>Caf\u{e9} Nav \u{2603} GPS</name>\
               <reviews><review><pros><compact>\u{ff59}\u{ff45}\u{ff53}</compact></pros></review></reviews></product>\
               <product><name>Plain GPS</name>\
               <reviews><review><pros><compact>yes</compact></pros></review></reviews></product></shop>";
    let engine = SearchEngine::build(parse_document(xml).unwrap());
    let results = engine.search(&Query::parse("caf\u{e9} gps"));
    assert_eq!(results.len(), 1);
    let rf = engine.extract_features(&results[0]);
    assert!(rf.label.contains("Caf\u{e9}"));
}
