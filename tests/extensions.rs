//! Integration tests for the extension features (the paper's "future work"
//! and companion techniques): result ranking, ELCA semantics,
//! interestingness-aware selection and simulated annealing.

use xsact::prelude::*;
use xsact_core::{
    anneal_from, dod_total, interesting_set, snippet_set, total_interestingness, Algorithm,
    AnnealingConfig, DfsConfig, Instance,
};
use xsact_data::movies::{MovieGenConfig, MoviesGen};
use xsact_index::ResultSemantics;

fn movie_engine() -> SearchEngine {
    let doc = MoviesGen::new(MovieGenConfig { movies: 120, ..Default::default() }).generate();
    SearchEngine::build(doc)
}

#[test]
fn ranked_search_is_a_permutation_of_plain_search() {
    let engine = movie_engine();
    let q = Query::parse("drama family");
    let plain = engine.search(&q);
    let ranked = engine.search_ranked(&q);
    assert_eq!(plain.len(), ranked.len());
    let mut plain_roots: Vec<_> = plain.iter().map(|r| r.root).collect();
    let mut ranked_roots: Vec<_> = ranked.iter().map(|(r, _)| r.root).collect();
    plain_roots.sort();
    ranked_roots.sort();
    assert_eq!(plain_roots, ranked_roots);
    // Scores are non-increasing.
    for pair in ranked.windows(2) {
        assert!(pair[0].1.score >= pair[1].1.score);
    }
}

#[test]
fn elca_results_contain_all_slca_results() {
    let engine = movie_engine();
    for text in ["drama family", "war soldier", "comedy wedding"] {
        let q = Query::parse(text);
        let slca = engine.search_with(&q, ResultSemantics::Slca);
        let elca = engine.search_with(&q, ResultSemantics::Elca);
        assert!(elca.len() >= slca.len(), "{text}");
        for r in &slca {
            assert!(elca.iter().any(|e| e.root == r.root), "{text}");
        }
    }
}

#[test]
fn elca_comparison_pipeline_works() {
    let engine = movie_engine();
    let q = Query::parse("drama family");
    let results = engine.search_with(&q, ResultSemantics::Elca);
    assert!(results.len() >= 2);
    let features: Vec<ResultFeatures> =
        results.iter().take(4).map(|r| engine.extract_features(r)).collect();
    let outcome = Comparison::new(&features).size_bound(6).run(Algorithm::MultiSwap);
    assert!(outcome.set.all_valid(&outcome.instance));
}

fn qm_instance(engine: &SearchEngine, bound: usize) -> Instance {
    let q = Query::parse("drama family");
    let results = engine.search(&q);
    let features: Vec<ResultFeatures> =
        results.iter().take(5).map(|r| engine.extract_features(r)).collect();
    Instance::build(&features, DfsConfig { size_bound: bound, threshold_pct: 10.0 })
}

#[test]
fn interesting_set_is_valid_on_real_data() {
    let engine = movie_engine();
    let inst = qm_instance(&engine, 5);
    for lambda in [0.0, 1.0, 5.0] {
        let set = interesting_set(&inst, lambda);
        assert!(set.all_valid(&inst), "lambda {lambda}");
        let _ = total_interestingness(&inst, &set);
    }
}

#[test]
fn annealing_never_hurts_and_respects_validity() {
    let engine = movie_engine();
    let inst = qm_instance(&engine, 4);
    let start = snippet_set(&inst);
    let start_dod = dod_total(&inst, &start);
    let cfg = AnnealingConfig { iterations: 3_000, ..Default::default() };
    let (annealed, dod) = anneal_from(&inst, start, &cfg);
    assert!(dod >= start_dod);
    assert!(annealed.all_valid(&inst));
    assert_eq!(dod, dod_total(&inst, &annealed));
}

#[test]
fn annealing_tracks_multi_swap_quality() {
    let engine = movie_engine();
    let inst = qm_instance(&engine, 5);
    let (multi, _) = xsact_core::multi_swap(&inst);
    let (_, annealed_dod) =
        xsact_core::anneal(&inst, &AnnealingConfig { iterations: 2_000, ..Default::default() });
    // anneal() starts from multi-swap, so it can only match or improve.
    assert!(annealed_dod >= dod_total(&inst, &multi));
}
