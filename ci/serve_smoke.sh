#!/usr/bin/env bash
# Serve smoke lane: boot `xsact serve` on a loopback socket, drive it with
# the scripted client, and golden-diff the responses. Six servers run in
# sequence:
#
#   1. a normal server — scripted queries, diffed against serve_smoke.golden
#   2. a --budget 1 server — the second query must be ERR BUDGET_EXCEEDED
#   3. a --queue 0 server  — every query must be ERR OVERLOADED
#   4. an XSACT_FAULTS=shard_panic@2 server (result-page cache enabled) —
#      the first query must be ERR SHARD_FAILED, the second byte-identical
#      to a healthy run (diffed against serve_chaos.golden), with
#      shard_restarts 1 and cache_hits 0 (a failure is never cached)
#   5. a --mux server — the phase-1 script again, one poll-driven front-end
#      thread, diffed against the *same* serve_smoke.golden (multiplexing
#      never changes bytes)
#   6. a --cache-entries 0 server vs the default — the same --repeat 3
#      client script against both; outputs must be byte-identical (the
#      cache never changes bytes, armed or disarmed)
#
# The script also greps the fault module for its disarmed early-return and
# pins the XSACT_FAULTS read to that one module, so fault injection stays
# one branch on the production hot path.
#
# The script builds nothing unless target/release/xsact is missing, so the
# CI step can reuse the workspace build. Exit code 0 = all six passed.
set -euo pipefail
cd "$(dirname "$0")/.."

XSACT=target/release/xsact
GOLDEN=ci/serve_smoke.golden
if [[ ! -x "$XSACT" ]]; then
    cargo build --release -p xsact-cli
fi

SERVER_PID=""
SERVER_LOG=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# Starts a server on an ephemeral port with the fixed smoke dataset plus
# any extra flags, waits for its "listening on" line, and sets ADDR.
start_server() {
    SERVER_LOG=$(mktemp)
    # stderr joins the log: the chaos phase's injected panic and the
    # "fault injection armed" warning belong there, not in the CI output.
    "$XSACT" serve --addr 127.0.0.1:0 --docs 6 --movies 40 --seed 42 --shards 2 "$@" \
        >"$SERVER_LOG" 2>&1 &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^listening on //p' "$SERVER_LOG")
        [[ -n "$ADDR" ]] && return 0
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "FAIL: server exited before binding; log:" >&2
            cat "$SERVER_LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "FAIL: server never reported its address; log:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
}

# Waits for the server process and echoes its remaining output (the
# shutdown summary), so a hung drain fails the lane visibly.
finish_server() {
    wait "$SERVER_PID"
    SERVER_PID=""
    cat "$SERVER_LOG"
    rm -f "$SERVER_LOG"
}

# Latency values vary run to run; the *shape* of the observability output
# does not. Replace every nanosecond sample in the METRICS exposition and
# every quantile summary in the STATS body with a placeholder, keeping
# metric names, ordering, and the (deterministic) observation counts.
normalize() {
    sed -e 's/^\(xsact_[a-z0-9_]*_ns[^ ]*\) [0-9][0-9]*$/\1 <ns>/' \
        -e 's/^\(\(queue_wait\|execute\|e2e\)_us count:[0-9]*\).*/\1 <quantiles>/'
}

echo "== serve smoke 1/6: scripted session vs golden =="
start_server
"$XSACT" client --addr "$ADDR" <<'EOF' >/tmp/serve_smoke.raw
QUERY drama family
TOP 2
QUERY drama family
STATS
METRICS
QUERY ???
BOGUS verb
SHUTDOWN
EOF
finish_server >/dev/null
normalize </tmp/serve_smoke.raw >/tmp/serve_smoke.out
if ! diff -u "$GOLDEN" /tmp/serve_smoke.out; then
    echo "FAIL: scripted session diverged from $GOLDEN" >&2
    exit 1
fi
# The exposition contract: every latency histogram recorded exactly one
# observation per served query (2 at the time METRICS ran).
for metric in xsact_queue_wait_ns xsact_execute_ns xsact_e2e_ns; do
    grep -q "^${metric}_count 2$" /tmp/serve_smoke.raw || {
        echo "FAIL: ${metric}_count should equal the 2 served queries" >&2
        grep "^${metric}" /tmp/serve_smoke.raw >&2 || true
        exit 1
    }
done
echo "golden diff clean; latency histogram counts match queries served"

echo "== serve smoke 2/6: session budget rejects the second query =="
start_server --budget 1
"$XSACT" client --addr "$ADDR" <<'EOF' >/tmp/serve_budget.out
QUERY drama family
QUERY drama family
SHUTDOWN
EOF
finish_server >/dev/null
grep -q '^OK ' /tmp/serve_budget.out || {
    echo "FAIL: first query should fit the budget" >&2
    cat /tmp/serve_budget.out >&2
    exit 1
}
grep -q '^ERR BUDGET_EXCEEDED ' /tmp/serve_budget.out || {
    echo "FAIL: second query should exceed the budget" >&2
    cat /tmp/serve_budget.out >&2
    exit 1
}
echo "budget rejection surfaced"

echo "== serve smoke 3/6: zero-capacity queue rejects as overloaded =="
start_server --queue 0
"$XSACT" client --addr "$ADDR" <<'EOF' >/tmp/serve_overload.out
QUERY drama family
SHUTDOWN
EOF
finish_server >/dev/null
grep -q '^ERR OVERLOADED ' /tmp/serve_overload.out || {
    echo "FAIL: zero-capacity server should reject with OVERLOADED" >&2
    cat /tmp/serve_overload.out >&2
    exit 1
}
echo "overload rejection surfaced"

echo "== serve smoke 4/6: injected shard panic is typed and recovered =="
# shard_panic@2 fires during the first broadcast (both shards hit the
# counter once); which shard wins the race varies, so shard numbers in
# the ERR line are normalized before the diff. Everything after the
# failed batch must be byte-identical to the healthy phase-1 answers.
XSACT_FAULTS=shard_panic@2 start_server
"$XSACT" client --addr "$ADDR" <<'EOF' >/tmp/serve_chaos.raw
QUERY drama family
QUERY drama family
STATS
METRICS
SHUTDOWN
EOF
finish_server >/dev/null
normalize </tmp/serve_chaos.raw \
    | sed -e 's/shard [0-9][0-9]*/shard N/g' >/tmp/serve_chaos.out
if ! diff -u ci/serve_chaos.golden /tmp/serve_chaos.out; then
    echo "FAIL: chaos session diverged from ci/serve_chaos.golden" >&2
    exit 1
fi
grep -q '^xsact_shard_restarts 1$' /tmp/serve_chaos.raw || {
    echo "FAIL: the panicked worker should be respawned exactly once" >&2
    grep '^xsact_shard' /tmp/serve_chaos.raw >&2 || true
    exit 1
}
# The result-page cache was enabled (the default): both submissions were
# fresh lookups, and the ShardFailed answer was never cached — a hit here
# would mean an error page was replayed.
grep -q '^xsact_cache_hits 0$' /tmp/serve_chaos.raw || {
    echo "FAIL: a failed query must never be served from the cache" >&2
    grep '^xsact_cache' /tmp/serve_chaos.raw >&2 || true
    exit 1
}
grep -q '^xsact_cache_misses 2$' /tmp/serve_chaos.raw || {
    echo "FAIL: both chaos submissions should be cache misses" >&2
    grep '^xsact_cache' /tmp/serve_chaos.raw >&2 || true
    exit 1
}
echo "shard panic surfaced as ERR SHARD_FAILED; recovery matched the golden"

echo "== serve smoke 5/6: mux front end matches the same golden =="
# The identical phase-1 script against --mux: one poll-driven thread
# serves the connection, and the bytes must match the thread-per-connection
# golden exactly — multiplexing never changes bytes.
start_server --mux
"$XSACT" client --addr "$ADDR" <<'EOF2' >/tmp/serve_mux.raw
QUERY drama family
TOP 2
QUERY drama family
STATS
METRICS
QUERY ???
BOGUS verb
SHUTDOWN
EOF2
finish_server >/dev/null
normalize </tmp/serve_mux.raw >/tmp/serve_mux.out
if ! diff -u "$GOLDEN" /tmp/serve_mux.out; then
    echo "FAIL: mux session diverged from $GOLDEN" >&2
    exit 1
fi
echo "mux lane matched the thread-per-connection golden"

echo "== serve smoke 6/6: disarmed cache is byte-identical =="
# The same --repeat 3 script against the default (cached) server and a
# --cache-entries 0 server: repeats are hits on one and fresh executions
# on the other, and the client-visible bytes must not differ.
cache_script() {
    "$XSACT" client --addr "$ADDR" --repeat 3 <<'EOF2'
QUERY drama family
TOP 2
QUERY drama family
QUERY comedy wedding
EOF2
    "$XSACT" client --addr "$ADDR" <<'EOF2'
SHUTDOWN
EOF2
}
start_server
cache_script >/tmp/serve_cached.out
start_server --cache-entries 0
cache_script >/tmp/serve_uncached.out
if ! diff -u /tmp/serve_cached.out /tmp/serve_uncached.out; then
    echo "FAIL: cache on vs off changed client-visible bytes" >&2
    exit 1
fi
echo "cache on/off outputs byte-identical"

echo "== zero-cost guards: disarmed faults stay one branch =="
grep -q 'self.0.as_ref()?' crates/xsact-serve/src/fault.rs || {
    echo "FAIL: FaultPlan::should_fire lost its disarmed early-return" >&2
    exit 1
}
FAULT_READERS=$(grep -rl --include='*.rs' 'env::var("XSACT_FAULTS")' src crates)
if [[ "$FAULT_READERS" != "crates/xsact-serve/src/fault.rs" ]]; then
    echo "FAIL: XSACT_FAULTS must be read only by FaultPlan::from_env; found:" >&2
    echo "$FAULT_READERS" >&2
    exit 1
fi
echo "guards held"

echo "serve smoke: all six scenarios passed"
