//! The serving runtime: a long-lived corpus server with query batching,
//! admission control, session budgets, and a TCP line-protocol front end.
//!
//! The corpus engine executes one query at a time, paying scoped-thread
//! spawn and teardown per query. [`CorpusServer`] amortises that: at
//! startup it builds one persistent [`xsact_corpus::ShardPool`] worker per
//! effective shard, and a dispatcher thread feeds the pool from a bounded
//! [`xsact_serve::SubmissionQueue`]. Concurrent submissions that ask the
//! same question (same canonical query text, same top-k) **coalesce** into
//! one batch: the pool executes once and every waiter receives the same
//! shared [`CorpusRanking`].
//!
//! ## The invariant: batching and pooling never change bytes
//!
//! The pooled path runs `Corpus::execute_shard` — the *same function*
//! the scoped-thread fan-out runs — over the *same*
//! [`xsact_corpus::ShardPlan`] partition, and merges with the same
//! comparator. A response from the server is therefore byte-identical to
//! sequential one-query-at-a-time execution, at any shard count and under
//! any interleaving of concurrent clients (pinned by `tests/serve.rs`).
//! `k` still travels down: each batch executes bounded by its key's
//! top-k, so a served query does exactly the work of its sequential twin.
//!
//! ## Failure modes are typed
//!
//! * Queue full (or server shutting down) →
//!   [`XsactError::Overloaded`] — nothing was executed; back off and
//!   retry.
//! * Session spent its executor-work budget →
//!   [`XsactError::BudgetExceeded`] — rejected before reaching the queue.
//! * Deadline elapsed (queue wait + execute) →
//!   [`XsactError::DeadlineExceeded`] — checked at dispatch (the query
//!   never executed) and again after batch execute; retry with a fresh
//!   deadline.
//! * Shard worker panicked mid-batch → [`XsactError::ShardFailed`] for
//!   exactly the members of the affected batch. The supervisor respawns
//!   the worker before the error is delivered, so a retry — and every
//!   *other* request, concurrent or subsequent — is byte-identical to a
//!   fault-free run (pinned by `tests/chaos.rs`).
//!
//! Shutdown is a drain: admitted submissions are still answered, new ones
//! are turned away. Recovery paths are exercised deterministically via
//! [`FaultPlan`] (`XSACT_FAULTS` in the CLI); a disarmed plan costs one
//! branch per site.
//!
//! ```
//! use std::sync::Arc;
//! use xsact::corpus::Corpus;
//! use xsact::serve::{CorpusServer, ServeConfig};
//!
//! # fn main() -> Result<(), xsact::XsactError> {
//! let corpus = Arc::new(Corpus::synthetic_movies(4, 30, 42).with_shards(2));
//! let server = CorpusServer::start(corpus, ServeConfig::default());
//! let mut session = server.session();
//! let answer = session.query("drama family")?;
//! println!("{}", answer.ranking.render(session.top()));
//! # Ok(())
//! # }
//! ```

use crate::corpus::{merge_shard_lists, Corpus, CorpusHit, CorpusRanking, DEFAULT_TOP};
use crate::error::{XsactError, XsactResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xsact_corpus::{ShardPlan, ShardPool};
use xsact_index::{ExecutorStats, Query};
use xsact_obs::{format_nanos, Histogram, MetricsRegistry};
use xsact_serve::mux::{poll, LineBuffer, PollEntry, INTEREST_READ, INTEREST_WRITE};
use xsact_serve::{coalesce, err_line, Inserted, PageCache, Rejected, Request, SubmissionQueue};

pub use xsact_serve::{FaultPlan, ServeCounters, ServeSnapshot, END_MARKER};

/// Configuration of a [`CorpusServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound of the submission queue; submissions beyond it are rejected
    /// with [`XsactError::Overloaded`]. Zero is valid and rejects every
    /// submission (a deterministic "always overloaded" server, used by the
    /// CI smoke test).
    pub queue_capacity: usize,
    /// Most submissions one dispatch round will pull from the queue (and
    /// therefore the largest possible batch). Clamped to at least 1.
    pub max_batch: usize,
    /// Top-k a fresh session starts with (changeable per session via
    /// [`ServeSession::set_top`] / the `TOP` verb).
    pub default_top: usize,
    /// Per-session executor-work budget in posting entries scanned;
    /// `None` = unlimited. A session whose spend has reached the budget
    /// gets [`XsactError::BudgetExceeded`] before its query is queued, so
    /// budget `1` admits exactly one matching query — handy for
    /// deterministic tests.
    pub budget: Option<u64>,
    /// End-to-end latency threshold above which a served query is logged
    /// to stderr (one line per offending query, with its stage timings);
    /// `None` disables the log. Purely observational — answers are
    /// byte-identical either way.
    pub slow_query: Option<Duration>,
    /// Per-query deadline covering queue wait plus execute; `None` =
    /// unlimited. Checked at dispatch (an expired query is answered
    /// [`XsactError::DeadlineExceeded`] without executing) and again after
    /// batch execute (a late answer is discarded — the caller already
    /// stopped caring).
    pub deadline: Option<Duration>,
    /// Read/write timeout applied to every TCP connection, so a stalled
    /// or slow-dripping client (slowloris) releases its thread instead of
    /// occupying it forever; `None` disables. A timed-out connection is
    /// closed; its session dies with it.
    pub io_timeout: Option<Duration>,
    /// Entry bound of the result-page cache keyed on `(canonical query,
    /// k)`; 0 disables caching entirely. A hit skips the submission queue
    /// *and* the shard pool and returns the stored answer byte-identical
    /// to fresh execution (the corpus is immutable and the executor
    /// deterministic — pinned by `tests/serve.rs`).
    pub cache_entries: usize,
    /// Approximate byte bound of the result-page cache (0 = entry bound
    /// only). Least-recently-used pages are evicted to stay inside both
    /// bounds.
    pub cache_bytes: usize,
    /// Armed fault-injection sites (chaos testing only); the default is
    /// disarmed, which costs one branch per site. Binaries arm it from
    /// `XSACT_FAULTS` at startup.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 16,
            default_top: DEFAULT_TOP,
            budget: None,
            slow_query: None,
            deadline: None,
            io_timeout: Some(Duration::from_secs(30)),
            cache_entries: 1024,
            cache_bytes: 4 << 20,
            faults: FaultPlan::disarmed(),
        }
    }
}

/// What a served query returns: the shared ranking plus the cost of the
/// batch that produced it.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The merged ranking — shared (`Arc`) among every member of the
    /// batch, byte-identical to sequential execution.
    pub ranking: Arc<CorpusRanking>,
    /// Executor work of the whole batch (each member is charged the full
    /// batch cost against its session budget — riding along is not free,
    /// it is shared).
    pub stats: ExecutorStats,
    /// How many queries the batch answered (1 = no coalescing happened).
    pub batch_size: usize,
    /// How long this query sat in the submission queue before its dispatch
    /// round swept it up.
    pub queue_wait: Duration,
    /// How long the shard pool took to execute the batch that answered
    /// this query.
    pub execute: Duration,
}

/// One queued query: what to run, the key it coalesces under, and where
/// the answer goes.
struct Submission {
    /// Canonical text of the parsed query — the batch key's first half
    /// (two spellings of the same term multiset coalesce).
    canonical: String,
    query: Query,
    k: usize,
    /// Typed outcome: the shared answer, or the failure that kept this
    /// member from getting one (deadline, shard panic).
    reply: mpsc::Sender<XsactResult<QueryAnswer>>,
    /// When the session pushed this submission (queue-wait starts here).
    submitted: Instant,
    /// Queue wait, measured by the dispatcher when its round sweeps this
    /// submission up (zero until then).
    queued: Duration,
    /// Cache generation observed at the lookup-miss that queued this
    /// submission; the dispatcher's insert is rejected if an
    /// `invalidate_all` bumped the generation in between (the anti-poison
    /// guard).
    cache_gen: u64,
}

/// State shared by the server handle, its sessions, and the dispatcher.
struct ServerInner {
    corpus: Arc<Corpus>,
    queue: SubmissionQueue<Submission>,
    counters: ServeCounters,
    config: ServeConfig,
    /// The result-page cache (`None` when `cache_entries` is 0). Sessions
    /// check it before queueing; the dispatcher inserts successful
    /// answers. The mutex is uncontended next to a search — lookups are a
    /// few string compares.
    cache: Option<Mutex<PageCache<QueryAnswer>>>,
}

/// A running corpus server; see the module docs. Dropping it shuts down
/// gracefully: the queue closes, admitted work drains, the dispatcher and
/// its shard pool join.
pub struct CorpusServer {
    inner: Arc<ServerInner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl CorpusServer {
    /// Starts the dispatcher and its persistent shard pool (one worker
    /// per [`Corpus::effective_shards`], pinned for the server's
    /// lifetime).
    pub fn start(corpus: Arc<Corpus>, config: ServeConfig) -> CorpusServer {
        let config = ServeConfig { max_batch: config.max_batch.max(1), ..config };
        let cache = (config.cache_entries > 0)
            .then(|| Mutex::new(PageCache::new(config.cache_entries, config.cache_bytes)));
        let inner = Arc::new(ServerInner {
            corpus,
            queue: SubmissionQueue::new(config.queue_capacity),
            counters: ServeCounters::default(),
            config,
            cache,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("xsact-dispatch".to_owned())
                .spawn(move || dispatch_loop(&inner))
                .expect("failed to spawn dispatcher")
        };
        CorpusServer { inner, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Opens a session: its own top-k and its own budget meter, safe to
    /// use from any thread (the TCP front end opens one per connection).
    pub fn session(&self) -> ServeSession {
        ServeSession {
            inner: Arc::clone(&self.inner),
            top: self.inner.config.default_top,
            spent: 0,
        }
    }

    /// The served corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.inner.corpus
    }

    /// A point-in-time copy of the server-level counters (the `STATS`
    /// verb's body).
    pub fn stats(&self) -> ServeSnapshot {
        self.inner.counters.snapshot()
    }

    /// The full metrics exposition, Prometheus text format (the `METRICS`
    /// verb's body and the `/metrics` HTTP response).
    pub fn metrics(&self) -> String {
        self.inner.counters.exposition()
    }

    /// The server's metrics registry — shareable with an
    /// [`xsact_obs::serve_metrics`] HTTP endpoint so scrapes see live
    /// values.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.inner.counters.registry())
    }

    /// Flash-clears the result-page cache and bumps its generation, so an
    /// insert racing this call (a lookup-miss that executed across it) is
    /// rejected. The hook a future mutable corpus calls on every write;
    /// a no-op when caching is disabled.
    pub fn invalidate_cache(&self) {
        if let Some(cache) = &self.inner.cache {
            cache.lock().expect("cache lock poisoned").invalidate_all();
        }
    }

    /// The result-page cache's current generation (0 when caching is
    /// disabled) — observable so tests can pin the invalidation protocol.
    pub fn cache_generation(&self) -> u64 {
        self.inner
            .cache
            .as_ref()
            .map_or(0, |cache| cache.lock().expect("cache lock poisoned").generation())
    }

    /// Begins shutdown: the queue closes (new submissions rejected),
    /// admitted submissions keep draining. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.inner.queue.close();
    }

    /// [`shutdown`](Self::shutdown), then blocks until the dispatcher has
    /// drained the queue and the shard pool has joined.
    pub fn join(&self) {
        self.shutdown();
        let handle = self.dispatcher.lock().expect("dispatcher lock poisoned").take();
        if let Some(handle) = handle {
            handle.join().expect("dispatcher panicked");
        }
    }
}

impl Drop for CorpusServer {
    fn drop(&mut self) {
        self.join();
    }
}

/// One shard's answer for a dispatch round: per coalesced group (in round
/// order), that shard's top-k hits and the executor stats of the search.
type ShardRoundResults = Vec<(Vec<CorpusHit>, ExecutorStats)>;

/// The dispatcher: pop one submission (blocking), sweep in whoever else is
/// already in line, coalesce by `(canonical query, k)`, execute each group
/// once on the shard pool, fan each shared answer out. Exits when the
/// queue is closed *and* drained.
fn dispatch_loop(inner: &ServerInner) {
    let shards = inner.corpus.effective_shards();
    // Per-shard busy-time histograms, registered alongside the serving
    // metrics so one scrape shows pool balance. Recorded inside the worker
    // closure, so they measure true worker busy time (search only, no
    // queue or merge).
    let shard_busy: Vec<Arc<Histogram>> = (0..shards)
        .map(|shard| inner.counters.registry().histogram(&format!("xsact_shard_{shard}_busy_ns")))
        .collect();
    let mut pool: ShardPool<Vec<(Query, usize)>, ShardRoundResults> = ShardPool::new(shards, {
        let corpus = Arc::clone(&inner.corpus);
        let faults = inner.config.faults.clone();
        move |shard, batch: &Vec<(Query, usize)>| {
            if let Some(millis) = faults.should_fire("slow_execute", shard) {
                std::thread::sleep(Duration::from_millis(millis));
            }
            if faults.should_fire("shard_panic", shard).is_some() {
                panic!("injected shard_panic fault (shard {shard})");
            }
            let busy = Instant::now();
            // The exact partition the scoped fan-out uses — a pure
            // function of (shards, documents), recomputed per broadcast
            // because it is trivially cheap next to a search. The whole
            // round executes in one broadcast so queries sharing terms
            // resolve each (doc, term) posting list once per shard.
            let parts = ShardPlan::new(shards).partition(corpus.len());
            let result = corpus.execute_shard_batch(batch, &parts[shard]);
            shard_busy[shard].record_duration(busy.elapsed());
            result
        }
    });
    while let Some(first) = inner.queue.pop() {
        let round_start = Instant::now();
        let mut round = vec![first];
        round.extend(inner.queue.drain_pending(inner.config.max_batch - 1));
        for submission in &mut round {
            submission.queued = submission.submitted.elapsed();
        }
        let groups = coalesce(round, |s| (s.canonical.clone(), s.k));
        inner.counters.record_batch_form(round_start.elapsed());
        // Dispatch-time deadline check: a member whose budget already
        // elapsed never executes — its answer could only arrive late.
        let live_groups: Vec<Vec<Submission>> =
            groups.into_iter().filter_map(|group| reject_expired(inner, group)).collect();
        if live_groups.is_empty() {
            continue; // every member expired; nothing to run
        }
        // One broadcast executes the whole round: each shard worker runs
        // every group's query over its document slice through one shared
        // plan-fragment table, so queries sharing terms resolve each
        // posting list once per (doc, term).
        let round_batch: Vec<(Query, usize)> =
            live_groups.iter().map(|group| (group[0].query.clone(), group[0].k)).collect();
        let execute_start = Instant::now();
        let restarts_before = pool.restarts();
        let shard_results = pool.broadcast(round_batch);
        let execute = execute_start.elapsed();
        let panicked = shard_results.iter().find_map(|r| r.as_ref().err().cloned());
        if let Some(panic) = panicked {
            // The round is lost, but *only* this round: the supervisor
            // already respawned every failed worker inside broadcast, so
            // the next round runs on a healthy pool.
            let members: usize = live_groups.iter().map(Vec::len).sum();
            inner.counters.record_shard_failure(members, pool.restarts() - restarts_before);
            for member in live_groups.into_iter().flatten() {
                let _ = member.reply.send(Err(XsactError::ShardFailed {
                    shard: panic.shard,
                    detail: panic.detail.clone(),
                }));
            }
            continue;
        }
        // Per-shard result streams, consumed group by group in shard
        // order — exactly the order the per-group broadcast produced.
        let mut per_shard: Vec<std::vec::IntoIter<(Vec<CorpusHit>, ExecutorStats)>> = shard_results
            .into_iter()
            .map(|result| result.expect("panic outcomes handled above").into_iter())
            .collect();
        for group in live_groups {
            let k = group[0].k;
            let canonical = group[0].canonical.clone();
            // The most conservative generation across members: if *any*
            // member looked up before an invalidation, do not cache.
            let cache_gen = group.iter().map(|m| m.cache_gen).min().unwrap_or(0);
            let mut stats = ExecutorStats::default();
            let mut lists = Vec::with_capacity(per_shard.len());
            for shard_stream in &mut per_shard {
                let (hits, shard_stats) =
                    shard_stream.next().expect("one result per group per shard");
                stats += shard_stats;
                lists.push(hits);
            }
            let ranking = Arc::new(merge_shard_lists(lists, k, shards));
            // Post-execute deadline check: an answer that arrived after
            // the member's deadline is discarded, not delivered late.
            let answered = match reject_expired(inner, group) {
                Some(answered) => answered,
                None => continue,
            };
            // Latency histograms record once per *answered* member — the
            // exposition contract pins each count to queries_served, and
            // rejected members are counted in their rejection counters
            // instead.
            inner.counters.record_execute(execute, answered.len());
            inner.counters.record_batch(
                answered.len(),
                stats.postings_scanned,
                stats.gallop_probes,
                stats.candidates_pruned,
                stats.postings_shared,
            );
            let batch_size = answered.len();
            // Only delivered answers are cached — a `ShardFailed`, a
            // deadline rejection, or any other error can never be
            // replayed from the cache.
            if let Some(cache) = &inner.cache {
                let answer = QueryAnswer {
                    ranking: Arc::clone(&ranking),
                    stats,
                    batch_size,
                    queue_wait: Duration::ZERO,
                    execute,
                };
                let generation = match inner.config.faults.should_fire("cache_poison", 0) {
                    // Chaos site: pretend this insert raced an
                    // `invalidate_all` — the generation guard must reject
                    // it (pinned by `tests/chaos.rs`).
                    Some(_) => cache_gen.wrapping_sub(1),
                    None => cache_gen,
                };
                let bytes = answer_bytes(&canonical, &answer);
                let mut cache = cache.lock().expect("cache lock poisoned");
                match cache.insert(generation, &canonical, k, answer, bytes) {
                    Inserted::Stored { evicted } if evicted > 0 => {
                        inner.counters.record_cache_evictions(evicted);
                    }
                    Inserted::Stored { .. } | Inserted::TooLarge => {}
                    Inserted::StaleGeneration => {
                        debug_assert!(
                            generation != cache.generation(),
                            "a current-generation insert must never be rejected"
                        );
                    }
                }
            }
            for member in answered {
                inner.counters.record_queue_wait(member.queued);
                // A waiter that gave up (dropped its receiver) is fine —
                // the batch ran for the others.
                let _ = member.reply.send(Ok(QueryAnswer {
                    ranking: Arc::clone(&ranking),
                    stats,
                    batch_size,
                    queue_wait: member.queued,
                    execute,
                }));
            }
        }
    }
}

/// Approximate heap footprint of one cached answer, for the cache's byte
/// bound: the key, the fixed-size answer, and each hit's owned strings.
/// Deterministic — the same answer always weighs the same.
fn answer_bytes(key: &str, answer: &QueryAnswer) -> usize {
    let hits: usize = answer
        .ranking
        .hits
        .iter()
        .map(|hit| std::mem::size_of::<CorpusHit>() + hit.result.label.len() + hit.doc_name.len())
        .sum();
    key.len() + std::mem::size_of::<QueryAnswer>() + hits
}

/// Splits expired members out of `group`, answering each with a typed
/// [`XsactError::DeadlineExceeded`]; returns the still-live members, or
/// `None` when nobody survived. With no configured deadline this is a
/// single branch.
fn reject_expired(inner: &ServerInner, group: Vec<Submission>) -> Option<Vec<Submission>> {
    let Some(deadline) = inner.config.deadline else { return Some(group) };
    let mut live = Vec::with_capacity(group.len());
    for member in group {
        let elapsed = member.submitted.elapsed();
        if elapsed >= deadline {
            inner.counters.record_deadline_rejection();
            let _ = member.reply.send(Err(XsactError::DeadlineExceeded {
                elapsed_ms: elapsed.as_millis().try_into().unwrap_or(u64::MAX),
                deadline_ms: deadline.as_millis().try_into().unwrap_or(u64::MAX),
            }));
        } else {
            live.push(member);
        }
    }
    if live.is_empty() {
        None
    } else {
        Some(live)
    }
}

/// One caller's view of a [`CorpusServer`]: a top-k setting and a budget
/// meter. Sessions are independent; drop one and nothing happens to the
/// server.
pub struct ServeSession {
    inner: Arc<ServerInner>,
    top: usize,
    spent: u64,
}

impl ServeSession {
    /// The session's current top-k.
    pub fn top(&self) -> usize {
        self.top
    }

    /// Sets the session's top-k for subsequent queries (the `TOP` verb).
    pub fn set_top(&mut self, k: usize) {
        self.top = k;
    }

    /// Posting entries this session's queries have scanned so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The session's budget, if the server configured one.
    pub fn budget(&self) -> Option<u64> {
        self.inner.config.budget
    }

    /// Submits one query and blocks for the (possibly batched) answer.
    ///
    /// Typed failure modes, in checking order: [`XsactError::EmptyQuery`]
    /// (no indexable terms), [`XsactError::BudgetExceeded`] (the session's
    /// spend reached its budget; nothing queued),
    /// [`XsactError::Overloaded`] (the queue was full or the server is
    /// shutting down; nothing executed), and — from the dispatcher —
    /// [`XsactError::DeadlineExceeded`] and [`XsactError::ShardFailed`]
    /// (both retryable; a failed shard is respawned before the error is
    /// delivered).
    pub fn query(&mut self, text: &str) -> XsactResult<QueryAnswer> {
        let (start, submitted) = self.submit(text);
        let result = match submitted {
            Submitted::Immediate(result) => result,
            // An admitted submission is always answered
            // (drain-on-shutdown); a recv error means the dispatcher
            // died, which only a panic can cause — surface it as such
            // rather than inventing an error code.
            Submitted::Queued(pending) => {
                pending.rx.recv().expect("dispatcher died with admitted work queued")
            }
        };
        self.settle(text, start, result)
    }

    /// The non-blocking first half of [`query`](Self::query): parse,
    /// admission checks, the cache lookup, and the queue push. Returns
    /// either an immediate outcome (a cache hit or an admission error) or
    /// the pending slot the dispatcher will answer — the mux front end
    /// polls other connections instead of blocking on it.
    fn submit(&mut self, text: &str) -> (Instant, Submitted) {
        let start = Instant::now();
        let query = Query::parse(text);
        if query.is_empty() {
            return (start, Submitted::Immediate(Err(XsactError::EmptyQuery)));
        }
        if let Some(budget) = self.inner.config.budget {
            if self.spent >= budget {
                self.inner.counters.record_budget_rejection();
                return (
                    start,
                    Submitted::Immediate(Err(XsactError::BudgetExceeded {
                        spent: self.spent,
                        budget,
                    })),
                );
            }
        }
        let canonical = query.to_string();
        let mut cache_gen = 0;
        if let Some(cache) = &self.inner.cache {
            let mut cache = cache.lock().expect("cache lock poisoned");
            if let Some(answer) = cache.lookup(&canonical, self.top) {
                // A hit skips the queue and the shard pool entirely; the
                // bytes are identical because the cached answer *is* the
                // executor's answer. The histogram contract
                // (`_count == queries_served`) still holds: the hit
                // records zero queue wait and zero execute, and `settle`
                // records the real end-to-end latency.
                self.inner.counters.record_cache_hit();
                return (
                    start,
                    Submitted::Immediate(Ok(QueryAnswer {
                        queue_wait: Duration::ZERO,
                        execute: Duration::ZERO,
                        ..answer
                    })),
                );
            }
            cache_gen = cache.generation();
            self.inner.counters.record_cache_miss();
        }
        let (reply, answer_rx) = mpsc::channel();
        let submission = Submission {
            canonical,
            query,
            k: self.top,
            reply,
            submitted: start,
            queued: Duration::ZERO,
            cache_gen,
        };
        if let Err(rejection) = self.inner.queue.push(submission) {
            self.inner.counters.record_overload_rejection();
            let error = match rejection {
                Rejected::Full { depth, capacity } => XsactError::Overloaded { depth, capacity },
                Rejected::Closed => XsactError::Overloaded {
                    depth: self.inner.queue.depth(),
                    capacity: self.inner.queue.capacity(),
                },
            };
            return (start, Submitted::Immediate(Err(error)));
        }
        (start, Submitted::Queued(PendingAnswer { rx: answer_rx }))
    }

    /// The second half of [`query`](Self::query): budget charging, the
    /// end-to-end histogram, and the slow-query log. The `?` surfaces the
    /// dispatcher's typed failures (deadline, shard panic) without
    /// charging the session budget or recording an e2e sample.
    fn settle(
        &mut self,
        text: &str,
        start: Instant,
        result: XsactResult<QueryAnswer>,
    ) -> XsactResult<QueryAnswer> {
        let answer = result?;
        self.spent = self.spent.saturating_add(answer.stats.postings_scanned);
        let e2e = start.elapsed();
        self.inner.counters.record_e2e(e2e);
        if let Some(threshold) = self.inner.config.slow_query {
            if e2e >= threshold {
                eprintln!(
                    "xsact-serve: slow query {text:?} k={}: e2e={} queue_wait={} execute={} \
                     batch={} ({})",
                    self.top,
                    format_nanos(e2e.as_nanos().try_into().unwrap_or(u64::MAX)),
                    format_nanos(answer.queue_wait.as_nanos().try_into().unwrap_or(u64::MAX)),
                    format_nanos(answer.execute.as_nanos().try_into().unwrap_or(u64::MAX)),
                    answer.batch_size,
                    answer.stats,
                );
            }
        }
        Ok(answer)
    }
}

/// What [`ServeSession::submit`] produced: an outcome available right now
/// (cache hit, admission error) or a slot the dispatcher will fill.
enum Submitted {
    Immediate(XsactResult<QueryAnswer>),
    Queued(PendingAnswer),
}

/// The receiving end of one queued query. `try_recv` lets the mux front
/// end check for the answer without blocking its loop.
struct PendingAnswer {
    rx: mpsc::Receiver<XsactResult<QueryAnswer>>,
}

/// The protocol error code of a facade error (`ERR <code> <message>`).
/// Codes are stable identifiers; messages may evolve.
pub fn error_code(error: &XsactError) -> &'static str {
    match error {
        XsactError::Overloaded { .. } => "OVERLOADED",
        XsactError::BudgetExceeded { .. } => "BUDGET_EXCEEDED",
        XsactError::DeadlineExceeded { .. } => "DEADLINE_EXCEEDED",
        XsactError::ShardFailed { .. } => "SHARD_FAILED",
        XsactError::EmptyQuery => "EMPTY_QUERY",
        _ => "INTERNAL",
    }
}

/// State shared by the accept loop, the connection threads, and the
/// shutdown trigger.
struct TcpShared {
    server: CorpusServer,
    stop: AtomicBool,
    addr: SocketAddr,
    /// `try_clone`d handles of live connections, so shutdown can end their
    /// blocking reads (read half only — in-flight responses still go out).
    conns: Mutex<Vec<TcpStream>>,
}

impl TcpShared {
    /// Starts TCP teardown exactly once: close the submission queue
    /// (drain), wake the accept loop with a self-connect, and end every
    /// connection's read half so its thread can finish and exit.
    fn trigger_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.server.shutdown();
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().expect("conns lock poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

/// A running TCP front end; see [`serve_tcp`].
pub struct TcpServeHandle {
    shared: Arc<TcpShared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl TcpServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts shutdown from outside (equivalent to a client's `SHUTDOWN`
    /// verb). Idempotent; does not block — follow with
    /// [`wait`](Self::wait).
    pub fn shutdown(&self) {
        self.shared.trigger_stop();
    }

    /// Blocks until the server has stopped (via the `SHUTDOWN` verb or
    /// [`shutdown`](Self::shutdown)): joins the accept loop, every
    /// connection thread, and the dispatcher, then returns the final
    /// counters.
    pub fn wait(mut self) -> ServeSnapshot {
        if let Some(accept) = self.accept.take() {
            for conn in accept.join().expect("accept loop panicked") {
                let _ = conn.join();
            }
        }
        self.shared.server.join();
        self.shared.server.stats()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:4141`, port 0 for an ephemeral port) and
/// serves `server` over the line protocol: one thread per connection, one
/// [`ServeSession`] per connection, every response terminated by a lone
/// `.` line. Returns once the listener is bound and accepting.
pub fn serve_tcp(server: CorpusServer, addr: &str) -> XsactResult<TcpServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(TcpShared {
        server,
        stop: AtomicBool::new(false),
        addr,
        conns: Mutex::new(Vec::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("xsact-accept".to_owned())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().expect("conns lock poisoned").push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    conn_threads.push(std::thread::spawn(move || {
                        serve_connection(&shared, stream);
                    }));
                }
                conn_threads
            })
            .expect("failed to spawn accept loop")
    };
    Ok(TcpServeHandle { shared, accept: Some(accept) })
}

/// One connection's request loop. Exits on `QUIT`, `SHUTDOWN`, EOF, a
/// broken stream, or an I/O timeout (a slowloris client that stops
/// mid-line loses its thread after [`ServeConfig::io_timeout`], not
/// never).
fn serve_connection(shared: &TcpShared, stream: TcpStream) {
    let io_timeout = shared.server.inner.config.io_timeout;
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    let faults = shared.server.inner.config.faults.clone();
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut session = shared.server.session();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let (body, done) = match Request::parse(&line) {
            Ok(None) => continue,
            Ok(Some(request)) => respond(shared, &mut session, request),
            Err(message) => (format!("{}\n", err_line("BAD_REQUEST", &message)), false),
        };
        if faults.should_fire("drop_connection", 0).is_some() {
            // Chaos site: vanish without a reply — the client sees EOF
            // mid-exchange, exactly like a crashed peer.
            let _ = writer.shutdown(Shutdown::Both);
            break;
        }
        let write_start = Instant::now();
        let written = writer.write_all(format!("{body}{END_MARKER}\n").as_bytes());
        shared.server.inner.counters.record_reply_write(write_start.elapsed());
        if written.is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

/// Builds one response body (always newline-terminated; the caller appends
/// the end marker) and whether the connection should close afterwards.
fn respond(shared: &TcpShared, session: &mut ServeSession, request: Request) -> (String, bool) {
    match request {
        Request::Query { text } => {
            let result = session.query(&text);
            (render_answer(result, session.top()), false)
        }
        Request::Top { k } => {
            session.set_top(k);
            (format!("OK top={k}\n"), false)
        }
        Request::Stats => (format!("OK stats\n{}\n", shared.server.stats()), false),
        // The exposition already ends with a newline; no extra framing.
        Request::Metrics => (format!("OK metrics\n{}", shared.server.metrics()), false),
        Request::Quit => ("OK bye\n".to_owned(), true),
        Request::Shutdown => {
            // Answer first, then tear down — the trigger ends this
            // connection's read half, which is fine: we are done reading.
            shared.trigger_stop();
            ("OK shutting down\n".to_owned(), true)
        }
    }
}

/// Renders one query outcome as its protocol body — the single formatting
/// path both front ends (thread-per-connection and mux) share, so their
/// bytes cannot diverge.
fn render_answer(result: XsactResult<QueryAnswer>, top: usize) -> String {
    match result {
        Ok(answer) => {
            let shown = answer.ranking.hits.len().min(top);
            format!("OK {shown}\n{}", answer.ranking.render(top))
        }
        Err(e) => format!("{}\n", err_line(error_code(&e), &e.to_string())),
    }
}

/// One multiplexed connection's state: the socket (nonblocking), the
/// incremental line framer, the pending outbound bytes, its session, and
/// at most one in-flight query.
struct MuxConn {
    stream: TcpStream,
    lines: LineBuffer,
    out: Vec<u8>,
    session: ServeSession,
    /// The one in-flight query: its text (for `settle`'s slow-query log),
    /// its start instant, and the dispatcher's pending slot.
    pending: Option<(String, Instant, PendingAnswer)>,
    last_activity: Instant,
    /// Peer sent EOF — close once the outbound buffer drains.
    eof: bool,
    /// `QUIT`/`SHUTDOWN` answered — close once the outbound buffer drains.
    done: bool,
}

impl MuxConn {
    /// Queues one response body (end marker appended) for writing.
    fn enqueue_response(&mut self, body: &str) {
        self.out.extend_from_slice(body.as_bytes());
        self.out.extend_from_slice(END_MARKER.as_bytes());
        self.out.push(b'\n');
    }
}

/// The raw file descriptor `poll(2)` wants; off Unix the fallback ignores
/// it.
#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// Binds `addr` and serves `server` over the line protocol with **one**
/// front-end thread multiplexing every connection via readiness polling
/// (`poll(2)`; a timed fallback off Unix). Wire behaviour is identical to
/// [`serve_tcp`] — same framing, same verbs, same session and budget
/// semantics, same drain-on-shutdown — the only difference is the
/// threading model. Each connection has at most one query in flight, as in
/// the thread-per-connection front end; while one connection waits on the
/// dispatcher the loop keeps serving the others.
pub fn serve_tcp_mux(server: CorpusServer, addr: &str) -> XsactResult<TcpServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(TcpShared {
        server,
        stop: AtomicBool::new(false),
        addr,
        // Mux connections are owned by the loop itself; the shutdown
        // trigger's self-connect wakes the poll, and the loop drains.
        conns: Mutex::new(Vec::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("xsact-mux".to_owned())
            .spawn(move || {
                mux_loop(&shared, listener);
                Vec::new() // no per-connection threads to join
            })
            .expect("failed to spawn mux loop")
    };
    Ok(TcpServeHandle { shared, accept: Some(accept) })
}

/// The mux front end's readiness loop; see [`serve_tcp_mux`].
fn mux_loop(shared: &TcpShared, listener: TcpListener) {
    let io_timeout = shared.server.inner.config.io_timeout;
    let faults = shared.server.inner.config.faults.clone();
    let mut conns: Vec<MuxConn> = Vec::new();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        if stopping && conns.is_empty() {
            break;
        }
        // Build this round's poll set: the listener (accept readiness)
        // plus every connection — read interest unless a query is in
        // flight or the connection is winding down, write interest while
        // output is buffered.
        let mut entries = Vec::with_capacity(conns.len() + 1);
        if !stopping {
            entries.push(PollEntry::new(raw_fd(&listener), INTEREST_READ));
        }
        let listener_slots = entries.len();
        for conn in &conns {
            let mut interest = 0;
            if conn.pending.is_none() && !conn.done && !conn.eof && !stopping {
                interest |= INTEREST_READ;
            }
            if !conn.out.is_empty() {
                interest |= INTEREST_WRITE;
            }
            entries.push(PollEntry::new(raw_fd(&conn.stream), interest));
        }
        // Short timeout while answers are pending (mpsc readiness is not
        // a file descriptor), longer when purely waiting on sockets.
        let any_pending = conns.iter().any(|c| c.pending.is_some());
        let timeout = if any_pending || stopping {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(50)
        };
        let _ = poll(&mut entries, Some(timeout));
        // Accept every waiting connection (nonblocking accept loop).
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.push(MuxConn {
                            stream,
                            lines: LineBuffer::new(),
                            out: Vec::new(),
                            session: shared.server.session(),
                            pending: None,
                            last_activity: Instant::now(),
                            eof: false,
                            done: false,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let mut index = 0;
        while index < conns.len() {
            let entry = entries.get(listener_slots + index).copied();
            let drop_conn =
                mux_step(shared, &faults, &mut conns[index], entry, stopping, io_timeout);
            if drop_conn {
                let conn = conns.swap_remove(index);
                let _ = conn.stream.shutdown(Shutdown::Both);
                // `entries` is rebuilt next round; swap_remove only
                // perturbs this round's already-consumed slots.
            } else {
                index += 1;
            }
        }
    }
}

/// Advances one mux connection by one round: read newly arrived bytes,
/// frame and serve complete lines, check the in-flight query, flush
/// buffered output. Returns `true` when the connection should close.
fn mux_step(
    shared: &TcpShared,
    faults: &FaultPlan,
    conn: &mut MuxConn,
    entry: Option<PollEntry>,
    stopping: bool,
    io_timeout: Option<Duration>,
) -> bool {
    // 1. Read whatever arrived, unless a query is in flight (one in
    //    flight per connection, as in thread-per-connection) or the
    //    connection is winding down.
    let may_read = conn.pending.is_none() && !conn.done && !conn.eof && !stopping;
    let readable = entry.map_or(may_read, |e| e.readable());
    if may_read && readable {
        let mut buf = [0u8; 4096];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.lines.push(&buf[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }
    // 2. Serve complete lines until one query is in flight or the framer
    //    runs dry. Partial lines stay buffered — mid-stream fragmentation
    //    is invisible to the protocol.
    while conn.pending.is_none() && !conn.done && !stopping {
        let line = match conn.lines.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => break,
            // Oversized or non-UTF-8 input: drop the connection, exactly
            // like a broken stream in the thread-per-connection loop.
            Err(_) => return true,
        };
        match Request::parse(&line) {
            Ok(None) => continue,
            Ok(Some(Request::Query { text })) => {
                let (start, submitted) = conn.session.submit(&text);
                match submitted {
                    Submitted::Immediate(result) => {
                        let result = conn.session.settle(&text, start, result);
                        let body = render_answer(result, conn.session.top());
                        if mux_deliver(faults, conn, &body) {
                            return true;
                        }
                    }
                    Submitted::Queued(pending) => {
                        conn.pending = Some((text, start, pending));
                    }
                }
            }
            Ok(Some(request)) => {
                let (body, done) = respond(shared, &mut conn.session, request);
                conn.done = done;
                if mux_deliver(faults, conn, &body) {
                    return true;
                }
            }
            Err(message) => {
                let body = format!("{}\n", err_line("BAD_REQUEST", &message));
                if mux_deliver(faults, conn, &body) {
                    return true;
                }
            }
        }
    }
    // 3. Check the in-flight query. On shutdown the dispatcher drains
    //    admitted work, so a pending answer always arrives — block for it
    //    only when stopping (the poll timeout otherwise paces retries).
    if let Some((text, start, pending)) = conn.pending.take() {
        let outcome = if stopping {
            Some(pending.rx.recv().expect("dispatcher died with admitted work queued"))
        } else {
            match pending.rx.try_recv() {
                Ok(result) => Some(result),
                Err(mpsc::TryRecvError::Empty) => {
                    conn.pending = Some((text.clone(), start, pending));
                    None
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("dispatcher died with admitted work queued")
                }
            }
        };
        if let Some(result) = outcome {
            let result = conn.session.settle(&text, start, result);
            let body = render_answer(result, conn.session.top());
            conn.last_activity = Instant::now();
            if mux_deliver(faults, conn, &body) {
                return true;
            }
        }
    }
    // 4. Flush buffered output.
    while !conn.out.is_empty() {
        let write_start = Instant::now();
        match conn.stream.write(&conn.out) {
            Ok(0) => return true,
            Ok(n) => {
                shared.server.inner.counters.record_reply_write(write_start.elapsed());
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // 5. Close when done: protocol-complete or EOF with nothing left to
    //    send, or idle past the I/O timeout (slowloris protection — same
    //    contract as the read timeout in thread-per-connection).
    if (conn.done || conn.eof || stopping) && conn.out.is_empty() && conn.pending.is_none() {
        return true;
    }
    if let Some(limit) = io_timeout {
        if conn.pending.is_none() && conn.out.is_empty() && conn.last_activity.elapsed() >= limit {
            return true;
        }
    }
    false
}

/// Queues one response on a mux connection, honouring the
/// `drop_connection` chaos site: if the site fires, the response is
/// discarded and the connection closed — the peer sees EOF mid-exchange,
/// exactly like a crashed peer, while the loop keeps serving every other
/// connection. Returns `true` when the connection should close.
fn mux_deliver(faults: &FaultPlan, conn: &mut MuxConn, body: &str) -> bool {
    if faults.should_fire("drop_connection", 0).is_some() {
        return true;
    }
    conn.enqueue_response(body);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_corpus(shards: usize) -> Arc<Corpus> {
        Arc::new(Corpus::synthetic_movies(5, 24, 11).with_shards(shards))
    }

    #[test]
    fn served_answer_matches_sequential_bytes() {
        let corpus = test_corpus(2);
        let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
        let mut session = server.session();
        let answer = session.query("drama family").unwrap();
        let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
        assert_eq!(answer.ranking.render(session.top()), sequential);
        assert!(!sequential.is_empty());
    }

    #[test]
    fn budget_admits_then_rejects() {
        let server = CorpusServer::start(
            test_corpus(1),
            ServeConfig { budget: Some(1), ..ServeConfig::default() },
        );
        let mut session = server.session();
        session.query("drama").unwrap();
        assert!(session.spent() >= 1, "a matching query scans postings");
        let err = session.query("drama").unwrap_err();
        assert!(matches!(err, XsactError::BudgetExceeded { budget: 1, .. }), "{err}");
        // Budgets are per session, not per server.
        server.session().query("drama").unwrap();
        assert_eq!(server.stats().rejected_budget, 1);
    }

    #[test]
    fn zero_capacity_queue_is_always_overloaded() {
        let server = CorpusServer::start(
            test_corpus(1),
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        );
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::Overloaded { capacity: 0, .. }), "{err}");
        assert_eq!(server.stats().rejected_overload, 1);
        assert_eq!(server.stats().queries_served, 0);
    }

    #[test]
    fn shutdown_rejects_new_work_as_overloaded() {
        let server = CorpusServer::start(test_corpus(1), ServeConfig::default());
        server.shutdown();
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::Overloaded { .. }), "{err}");
    }

    #[test]
    fn empty_query_is_rejected_before_queueing() {
        let server = CorpusServer::start(test_corpus(1), ServeConfig::default());
        let err = server.session().query("???").unwrap_err();
        assert!(matches!(err, XsactError::EmptyQuery));
        assert_eq!(server.stats().queries_served, 0);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(error_code(&XsactError::Overloaded { depth: 1, capacity: 1 }), "OVERLOADED");
        assert_eq!(
            error_code(&XsactError::BudgetExceeded { spent: 2, budget: 1 }),
            "BUDGET_EXCEEDED"
        );
        assert_eq!(
            error_code(&XsactError::DeadlineExceeded { elapsed_ms: 2, deadline_ms: 1 }),
            "DEADLINE_EXCEEDED"
        );
        assert_eq!(
            error_code(&XsactError::ShardFailed { shard: 0, detail: "boom".into() }),
            "SHARD_FAILED"
        );
        assert_eq!(error_code(&XsactError::EmptyQuery), "EMPTY_QUERY");
        assert_eq!(error_code(&XsactError::EmptyCorpus), "INTERNAL");
    }

    #[test]
    fn zero_deadline_rejects_at_dispatch_without_executing() {
        let server = CorpusServer::start(
            test_corpus(2),
            ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() },
        );
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::DeadlineExceeded { .. }), "{err}");
        let stats = server.stats();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.queries_served, 0, "an expired query never executes");
        assert_eq!(stats.queue_wait_ns.count, 0, "histograms record answered queries only");
    }

    #[test]
    fn shard_panic_is_typed_and_recovery_is_byte_identical() {
        let corpus = test_corpus(2);
        let server = CorpusServer::start(
            Arc::clone(&corpus),
            ServeConfig {
                faults: FaultPlan::parse("shard_panic@1").unwrap(),
                ..ServeConfig::default()
            },
        );
        let mut session = server.session();
        let err = session.query("drama family").unwrap_err();
        assert!(matches!(err, XsactError::ShardFailed { .. }), "{err}");
        assert!(err.to_string().contains("injected shard_panic fault"), "{err}");
        // The same session retries on the respawned worker and the answer
        // is byte-identical to sequential execution.
        let answer = session.query("drama family").unwrap();
        let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
        assert_eq!(answer.ranking.render(session.top()), sequential);
        let stats = server.stats();
        assert_eq!(stats.shard_failed, 1);
        assert_eq!(stats.shard_restarts, 1);
        assert_eq!(stats.queries_served, 1, "only the recovered query counts as served");
        assert_eq!(stats.execute_ns.count, stats.queries_served);
    }

    #[test]
    fn latency_histogram_counts_equal_queries_served() {
        let server = CorpusServer::start(test_corpus(2), ServeConfig::default());
        let mut session = server.session();
        session.query("drama").unwrap();
        session.query("family").unwrap();
        session.query("drama").unwrap();
        let stats = server.stats();
        assert_eq!(stats.queries_served, 3);
        assert_eq!(stats.queue_wait_ns.count, stats.queries_served);
        assert_eq!(stats.execute_ns.count, stats.queries_served);
        assert_eq!(stats.e2e_ns.count, stats.queries_served);
        let metrics = server.metrics();
        assert!(metrics.contains("xsact_queries_served 3"), "{metrics}");
        assert!(metrics.contains("xsact_e2e_ns_count 3"), "{metrics}");
        assert!(metrics.contains("# TYPE xsact_shard_0_busy_ns summary"), "{metrics}");
    }

    #[test]
    fn stats_count_batches_and_queries() {
        let server = CorpusServer::start(test_corpus(2), ServeConfig::default());
        let mut session = server.session();
        session.query("drama").unwrap();
        session.query("family").unwrap();
        let stats = server.stats();
        assert_eq!(stats.queries_served, 2);
        assert!(stats.batches >= 1);
        assert!(stats.postings_scanned > 0);
    }
}
