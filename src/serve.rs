//! The serving runtime: a long-lived corpus server with query batching,
//! admission control, session budgets, and a TCP line-protocol front end.
//!
//! The corpus engine executes one query at a time, paying scoped-thread
//! spawn and teardown per query. [`CorpusServer`] amortises that: at
//! startup it builds one persistent [`xsact_corpus::ShardPool`] worker per
//! effective shard, and a dispatcher thread feeds the pool from a bounded
//! [`xsact_serve::SubmissionQueue`]. Concurrent submissions that ask the
//! same question (same canonical query text, same top-k) **coalesce** into
//! one batch: the pool executes once and every waiter receives the same
//! shared [`CorpusRanking`].
//!
//! ## The invariant: batching and pooling never change bytes
//!
//! The pooled path runs `Corpus::execute_shard` — the *same function*
//! the scoped-thread fan-out runs — over the *same*
//! [`xsact_corpus::ShardPlan`] partition, and merges with the same
//! comparator. A response from the server is therefore byte-identical to
//! sequential one-query-at-a-time execution, at any shard count and under
//! any interleaving of concurrent clients (pinned by `tests/serve.rs`).
//! `k` still travels down: each batch executes bounded by its key's
//! top-k, so a served query does exactly the work of its sequential twin.
//!
//! ## Failure modes are typed
//!
//! * Queue full (or server shutting down) →
//!   [`XsactError::Overloaded`] — nothing was executed; back off and
//!   retry.
//! * Session spent its executor-work budget →
//!   [`XsactError::BudgetExceeded`] — rejected before reaching the queue.
//! * Deadline elapsed (queue wait + execute) →
//!   [`XsactError::DeadlineExceeded`] — checked at dispatch (the query
//!   never executed) and again after batch execute; retry with a fresh
//!   deadline.
//! * Shard worker panicked mid-batch → [`XsactError::ShardFailed`] for
//!   exactly the members of the affected batch. The supervisor respawns
//!   the worker before the error is delivered, so a retry — and every
//!   *other* request, concurrent or subsequent — is byte-identical to a
//!   fault-free run (pinned by `tests/chaos.rs`).
//!
//! Shutdown is a drain: admitted submissions are still answered, new ones
//! are turned away. Recovery paths are exercised deterministically via
//! [`FaultPlan`] (`XSACT_FAULTS` in the CLI); a disarmed plan costs one
//! branch per site.
//!
//! ```
//! use std::sync::Arc;
//! use xsact::corpus::Corpus;
//! use xsact::serve::{CorpusServer, ServeConfig};
//!
//! # fn main() -> Result<(), xsact::XsactError> {
//! let corpus = Arc::new(Corpus::synthetic_movies(4, 30, 42).with_shards(2));
//! let server = CorpusServer::start(corpus, ServeConfig::default());
//! let mut session = server.session();
//! let answer = session.query("drama family")?;
//! println!("{}", answer.ranking.render(session.top()));
//! # Ok(())
//! # }
//! ```

use crate::corpus::{merge_shard_lists, Corpus, CorpusHit, CorpusRanking, DEFAULT_TOP};
use crate::error::{XsactError, XsactResult};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xsact_corpus::{ShardPlan, ShardPool};
use xsact_index::{ExecutorStats, Query};
use xsact_obs::{format_nanos, Histogram, MetricsRegistry};
use xsact_serve::{coalesce, err_line, Rejected, Request, SubmissionQueue};

pub use xsact_serve::{FaultPlan, ServeCounters, ServeSnapshot, END_MARKER};

/// Configuration of a [`CorpusServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound of the submission queue; submissions beyond it are rejected
    /// with [`XsactError::Overloaded`]. Zero is valid and rejects every
    /// submission (a deterministic "always overloaded" server, used by the
    /// CI smoke test).
    pub queue_capacity: usize,
    /// Most submissions one dispatch round will pull from the queue (and
    /// therefore the largest possible batch). Clamped to at least 1.
    pub max_batch: usize,
    /// Top-k a fresh session starts with (changeable per session via
    /// [`ServeSession::set_top`] / the `TOP` verb).
    pub default_top: usize,
    /// Per-session executor-work budget in posting entries scanned;
    /// `None` = unlimited. A session whose spend has reached the budget
    /// gets [`XsactError::BudgetExceeded`] before its query is queued, so
    /// budget `1` admits exactly one matching query — handy for
    /// deterministic tests.
    pub budget: Option<u64>,
    /// End-to-end latency threshold above which a served query is logged
    /// to stderr (one line per offending query, with its stage timings);
    /// `None` disables the log. Purely observational — answers are
    /// byte-identical either way.
    pub slow_query: Option<Duration>,
    /// Per-query deadline covering queue wait plus execute; `None` =
    /// unlimited. Checked at dispatch (an expired query is answered
    /// [`XsactError::DeadlineExceeded`] without executing) and again after
    /// batch execute (a late answer is discarded — the caller already
    /// stopped caring).
    pub deadline: Option<Duration>,
    /// Read/write timeout applied to every TCP connection, so a stalled
    /// or slow-dripping client (slowloris) releases its thread instead of
    /// occupying it forever; `None` disables. A timed-out connection is
    /// closed; its session dies with it.
    pub io_timeout: Option<Duration>,
    /// Armed fault-injection sites (chaos testing only); the default is
    /// disarmed, which costs one branch per site. Binaries arm it from
    /// `XSACT_FAULTS` at startup.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 16,
            default_top: DEFAULT_TOP,
            budget: None,
            slow_query: None,
            deadline: None,
            io_timeout: Some(Duration::from_secs(30)),
            faults: FaultPlan::disarmed(),
        }
    }
}

/// What a served query returns: the shared ranking plus the cost of the
/// batch that produced it.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The merged ranking — shared (`Arc`) among every member of the
    /// batch, byte-identical to sequential execution.
    pub ranking: Arc<CorpusRanking>,
    /// Executor work of the whole batch (each member is charged the full
    /// batch cost against its session budget — riding along is not free,
    /// it is shared).
    pub stats: ExecutorStats,
    /// How many queries the batch answered (1 = no coalescing happened).
    pub batch_size: usize,
    /// How long this query sat in the submission queue before its dispatch
    /// round swept it up.
    pub queue_wait: Duration,
    /// How long the shard pool took to execute the batch that answered
    /// this query.
    pub execute: Duration,
}

/// One queued query: what to run, the key it coalesces under, and where
/// the answer goes.
struct Submission {
    /// Canonical text of the parsed query — the batch key's first half
    /// (two spellings of the same term multiset coalesce).
    canonical: String,
    query: Query,
    k: usize,
    /// Typed outcome: the shared answer, or the failure that kept this
    /// member from getting one (deadline, shard panic).
    reply: mpsc::Sender<XsactResult<QueryAnswer>>,
    /// When the session pushed this submission (queue-wait starts here).
    submitted: Instant,
    /// Queue wait, measured by the dispatcher when its round sweeps this
    /// submission up (zero until then).
    queued: Duration,
}

/// State shared by the server handle, its sessions, and the dispatcher.
struct ServerInner {
    corpus: Arc<Corpus>,
    queue: SubmissionQueue<Submission>,
    counters: ServeCounters,
    config: ServeConfig,
}

/// A running corpus server; see the module docs. Dropping it shuts down
/// gracefully: the queue closes, admitted work drains, the dispatcher and
/// its shard pool join.
pub struct CorpusServer {
    inner: Arc<ServerInner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl CorpusServer {
    /// Starts the dispatcher and its persistent shard pool (one worker
    /// per [`Corpus::effective_shards`], pinned for the server's
    /// lifetime).
    pub fn start(corpus: Arc<Corpus>, config: ServeConfig) -> CorpusServer {
        let config = ServeConfig { max_batch: config.max_batch.max(1), ..config };
        let inner = Arc::new(ServerInner {
            corpus,
            queue: SubmissionQueue::new(config.queue_capacity),
            counters: ServeCounters::default(),
            config,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("xsact-dispatch".to_owned())
                .spawn(move || dispatch_loop(&inner))
                .expect("failed to spawn dispatcher")
        };
        CorpusServer { inner, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Opens a session: its own top-k and its own budget meter, safe to
    /// use from any thread (the TCP front end opens one per connection).
    pub fn session(&self) -> ServeSession {
        ServeSession {
            inner: Arc::clone(&self.inner),
            top: self.inner.config.default_top,
            spent: 0,
        }
    }

    /// The served corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.inner.corpus
    }

    /// A point-in-time copy of the server-level counters (the `STATS`
    /// verb's body).
    pub fn stats(&self) -> ServeSnapshot {
        self.inner.counters.snapshot()
    }

    /// The full metrics exposition, Prometheus text format (the `METRICS`
    /// verb's body and the `/metrics` HTTP response).
    pub fn metrics(&self) -> String {
        self.inner.counters.exposition()
    }

    /// The server's metrics registry — shareable with an
    /// [`xsact_obs::serve_metrics`] HTTP endpoint so scrapes see live
    /// values.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.inner.counters.registry())
    }

    /// Begins shutdown: the queue closes (new submissions rejected),
    /// admitted submissions keep draining. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.inner.queue.close();
    }

    /// [`shutdown`](Self::shutdown), then blocks until the dispatcher has
    /// drained the queue and the shard pool has joined.
    pub fn join(&self) {
        self.shutdown();
        let handle = self.dispatcher.lock().expect("dispatcher lock poisoned").take();
        if let Some(handle) = handle {
            handle.join().expect("dispatcher panicked");
        }
    }
}

impl Drop for CorpusServer {
    fn drop(&mut self) {
        self.join();
    }
}

/// The dispatcher: pop one submission (blocking), sweep in whoever else is
/// already in line, coalesce by `(canonical query, k)`, execute each group
/// once on the shard pool, fan each shared answer out. Exits when the
/// queue is closed *and* drained.
fn dispatch_loop(inner: &ServerInner) {
    let shards = inner.corpus.effective_shards();
    // Per-shard busy-time histograms, registered alongside the serving
    // metrics so one scrape shows pool balance. Recorded inside the worker
    // closure, so they measure true worker busy time (search only, no
    // queue or merge).
    let shard_busy: Vec<Arc<Histogram>> = (0..shards)
        .map(|shard| inner.counters.registry().histogram(&format!("xsact_shard_{shard}_busy_ns")))
        .collect();
    let mut pool: ShardPool<(Query, usize), (Vec<CorpusHit>, ExecutorStats)> =
        ShardPool::new(shards, {
            let corpus = Arc::clone(&inner.corpus);
            let faults = inner.config.faults.clone();
            move |shard, (query, k): &(Query, usize)| {
                if let Some(millis) = faults.should_fire("slow_execute", shard) {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                if faults.should_fire("shard_panic", shard).is_some() {
                    panic!("injected shard_panic fault (shard {shard})");
                }
                let busy = Instant::now();
                // The exact partition the scoped fan-out uses — a pure
                // function of (shards, documents), recomputed per broadcast
                // because it is trivially cheap next to a search.
                let parts = ShardPlan::new(shards).partition(corpus.len());
                let result = corpus.execute_shard(query, &parts[shard], *k);
                shard_busy[shard].record_duration(busy.elapsed());
                result
            }
        });
    while let Some(first) = inner.queue.pop() {
        let round_start = Instant::now();
        let mut round = vec![first];
        round.extend(inner.queue.drain_pending(inner.config.max_batch - 1));
        for submission in &mut round {
            submission.queued = submission.submitted.elapsed();
        }
        let groups = coalesce(round, |s| (s.canonical.clone(), s.k));
        inner.counters.record_batch_form(round_start.elapsed());
        for group in groups {
            // Dispatch-time deadline check: a member whose budget already
            // elapsed never executes — its answer could only arrive late.
            let live = match reject_expired(inner, group) {
                Some(live) => live,
                None => continue, // every member expired; nothing to run
            };
            let k = live[0].k;
            let execute_start = Instant::now();
            let restarts_before = pool.restarts();
            let shard_results = pool.broadcast((live[0].query.clone(), k));
            let execute = execute_start.elapsed();
            let panicked = shard_results.iter().find_map(|r| r.as_ref().err().cloned());
            if let Some(panic) = panicked {
                // The batch is lost, but *only* this batch: the supervisor
                // already respawned every failed worker inside broadcast,
                // so the next group runs on a healthy pool.
                inner.counters.record_shard_failure(live.len(), pool.restarts() - restarts_before);
                for member in live {
                    let _ = member.reply.send(Err(XsactError::ShardFailed {
                        shard: panic.shard,
                        detail: panic.detail.clone(),
                    }));
                }
                continue;
            }
            let mut stats = ExecutorStats::default();
            let mut lists = Vec::with_capacity(shard_results.len());
            for result in shard_results {
                let (hits, shard_stats) = result.expect("panic outcomes handled above");
                stats += shard_stats;
                lists.push(hits);
            }
            let ranking = Arc::new(merge_shard_lists(lists, k, shards));
            // Post-execute deadline check: an answer that arrived after
            // the member's deadline is discarded, not delivered late.
            let answered = match reject_expired(inner, live) {
                Some(answered) => answered,
                None => continue,
            };
            // Latency histograms record once per *answered* member — the
            // exposition contract pins each count to queries_served, and
            // rejected members are counted in their rejection counters
            // instead.
            inner.counters.record_execute(execute, answered.len());
            inner.counters.record_batch(
                answered.len(),
                stats.postings_scanned,
                stats.gallop_probes,
                stats.candidates_pruned,
            );
            let batch_size = answered.len();
            for member in answered {
                inner.counters.record_queue_wait(member.queued);
                // A waiter that gave up (dropped its receiver) is fine —
                // the batch ran for the others.
                let _ = member.reply.send(Ok(QueryAnswer {
                    ranking: Arc::clone(&ranking),
                    stats,
                    batch_size,
                    queue_wait: member.queued,
                    execute,
                }));
            }
        }
    }
}

/// Splits expired members out of `group`, answering each with a typed
/// [`XsactError::DeadlineExceeded`]; returns the still-live members, or
/// `None` when nobody survived. With no configured deadline this is a
/// single branch.
fn reject_expired(inner: &ServerInner, group: Vec<Submission>) -> Option<Vec<Submission>> {
    let Some(deadline) = inner.config.deadline else { return Some(group) };
    let mut live = Vec::with_capacity(group.len());
    for member in group {
        let elapsed = member.submitted.elapsed();
        if elapsed >= deadline {
            inner.counters.record_deadline_rejection();
            let _ = member.reply.send(Err(XsactError::DeadlineExceeded {
                elapsed_ms: elapsed.as_millis().try_into().unwrap_or(u64::MAX),
                deadline_ms: deadline.as_millis().try_into().unwrap_or(u64::MAX),
            }));
        } else {
            live.push(member);
        }
    }
    if live.is_empty() {
        None
    } else {
        Some(live)
    }
}

/// One caller's view of a [`CorpusServer`]: a top-k setting and a budget
/// meter. Sessions are independent; drop one and nothing happens to the
/// server.
pub struct ServeSession {
    inner: Arc<ServerInner>,
    top: usize,
    spent: u64,
}

impl ServeSession {
    /// The session's current top-k.
    pub fn top(&self) -> usize {
        self.top
    }

    /// Sets the session's top-k for subsequent queries (the `TOP` verb).
    pub fn set_top(&mut self, k: usize) {
        self.top = k;
    }

    /// Posting entries this session's queries have scanned so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The session's budget, if the server configured one.
    pub fn budget(&self) -> Option<u64> {
        self.inner.config.budget
    }

    /// Submits one query and blocks for the (possibly batched) answer.
    ///
    /// Typed failure modes, in checking order: [`XsactError::EmptyQuery`]
    /// (no indexable terms), [`XsactError::BudgetExceeded`] (the session's
    /// spend reached its budget; nothing queued),
    /// [`XsactError::Overloaded`] (the queue was full or the server is
    /// shutting down; nothing executed), and — from the dispatcher —
    /// [`XsactError::DeadlineExceeded`] and [`XsactError::ShardFailed`]
    /// (both retryable; a failed shard is respawned before the error is
    /// delivered).
    pub fn query(&mut self, text: &str) -> XsactResult<QueryAnswer> {
        let start = Instant::now();
        let query = Query::parse(text);
        if query.is_empty() {
            return Err(XsactError::EmptyQuery);
        }
        if let Some(budget) = self.inner.config.budget {
            if self.spent >= budget {
                self.inner.counters.record_budget_rejection();
                return Err(XsactError::BudgetExceeded { spent: self.spent, budget });
            }
        }
        let (reply, answer_rx) = mpsc::channel();
        let submission = Submission {
            canonical: query.to_string(),
            query,
            k: self.top,
            reply,
            submitted: start,
            queued: Duration::ZERO,
        };
        self.inner.queue.push(submission).map_err(|rejection| {
            self.inner.counters.record_overload_rejection();
            match rejection {
                Rejected::Full { depth, capacity } => XsactError::Overloaded { depth, capacity },
                Rejected::Closed => XsactError::Overloaded {
                    depth: self.inner.queue.depth(),
                    capacity: self.inner.queue.capacity(),
                },
            }
        })?;
        // An admitted submission is always answered (drain-on-shutdown);
        // a recv error means the dispatcher died, which only a panic can
        // cause — surface it as such rather than inventing an error code.
        // The `?` surfaces the dispatcher's typed failures (deadline,
        // shard panic) without charging the session budget.
        let answer = answer_rx.recv().expect("dispatcher died with admitted work queued")?;
        self.spent = self.spent.saturating_add(answer.stats.postings_scanned);
        let e2e = start.elapsed();
        self.inner.counters.record_e2e(e2e);
        if let Some(threshold) = self.inner.config.slow_query {
            if e2e >= threshold {
                eprintln!(
                    "xsact-serve: slow query {text:?} k={}: e2e={} queue_wait={} execute={} \
                     batch={} ({})",
                    self.top,
                    format_nanos(e2e.as_nanos().try_into().unwrap_or(u64::MAX)),
                    format_nanos(answer.queue_wait.as_nanos().try_into().unwrap_or(u64::MAX)),
                    format_nanos(answer.execute.as_nanos().try_into().unwrap_or(u64::MAX)),
                    answer.batch_size,
                    answer.stats,
                );
            }
        }
        Ok(answer)
    }
}

/// The protocol error code of a facade error (`ERR <code> <message>`).
/// Codes are stable identifiers; messages may evolve.
pub fn error_code(error: &XsactError) -> &'static str {
    match error {
        XsactError::Overloaded { .. } => "OVERLOADED",
        XsactError::BudgetExceeded { .. } => "BUDGET_EXCEEDED",
        XsactError::DeadlineExceeded { .. } => "DEADLINE_EXCEEDED",
        XsactError::ShardFailed { .. } => "SHARD_FAILED",
        XsactError::EmptyQuery => "EMPTY_QUERY",
        _ => "INTERNAL",
    }
}

/// State shared by the accept loop, the connection threads, and the
/// shutdown trigger.
struct TcpShared {
    server: CorpusServer,
    stop: AtomicBool,
    addr: SocketAddr,
    /// `try_clone`d handles of live connections, so shutdown can end their
    /// blocking reads (read half only — in-flight responses still go out).
    conns: Mutex<Vec<TcpStream>>,
}

impl TcpShared {
    /// Starts TCP teardown exactly once: close the submission queue
    /// (drain), wake the accept loop with a self-connect, and end every
    /// connection's read half so its thread can finish and exit.
    fn trigger_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.server.shutdown();
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().expect("conns lock poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

/// A running TCP front end; see [`serve_tcp`].
pub struct TcpServeHandle {
    shared: Arc<TcpShared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl TcpServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts shutdown from outside (equivalent to a client's `SHUTDOWN`
    /// verb). Idempotent; does not block — follow with
    /// [`wait`](Self::wait).
    pub fn shutdown(&self) {
        self.shared.trigger_stop();
    }

    /// Blocks until the server has stopped (via the `SHUTDOWN` verb or
    /// [`shutdown`](Self::shutdown)): joins the accept loop, every
    /// connection thread, and the dispatcher, then returns the final
    /// counters.
    pub fn wait(mut self) -> ServeSnapshot {
        if let Some(accept) = self.accept.take() {
            for conn in accept.join().expect("accept loop panicked") {
                let _ = conn.join();
            }
        }
        self.shared.server.join();
        self.shared.server.stats()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:4141`, port 0 for an ephemeral port) and
/// serves `server` over the line protocol: one thread per connection, one
/// [`ServeSession`] per connection, every response terminated by a lone
/// `.` line. Returns once the listener is bound and accepting.
pub fn serve_tcp(server: CorpusServer, addr: &str) -> XsactResult<TcpServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(TcpShared {
        server,
        stop: AtomicBool::new(false),
        addr,
        conns: Mutex::new(Vec::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("xsact-accept".to_owned())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().expect("conns lock poisoned").push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    conn_threads.push(std::thread::spawn(move || {
                        serve_connection(&shared, stream);
                    }));
                }
                conn_threads
            })
            .expect("failed to spawn accept loop")
    };
    Ok(TcpServeHandle { shared, accept: Some(accept) })
}

/// One connection's request loop. Exits on `QUIT`, `SHUTDOWN`, EOF, a
/// broken stream, or an I/O timeout (a slowloris client that stops
/// mid-line loses its thread after [`ServeConfig::io_timeout`], not
/// never).
fn serve_connection(shared: &TcpShared, stream: TcpStream) {
    let io_timeout = shared.server.inner.config.io_timeout;
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    let faults = shared.server.inner.config.faults.clone();
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut session = shared.server.session();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let (body, done) = match Request::parse(&line) {
            Ok(None) => continue,
            Ok(Some(request)) => respond(shared, &mut session, request),
            Err(message) => (format!("{}\n", err_line("BAD_REQUEST", &message)), false),
        };
        if faults.should_fire("drop_connection", 0).is_some() {
            // Chaos site: vanish without a reply — the client sees EOF
            // mid-exchange, exactly like a crashed peer.
            let _ = writer.shutdown(Shutdown::Both);
            break;
        }
        let write_start = Instant::now();
        let written = writer.write_all(format!("{body}{END_MARKER}\n").as_bytes());
        shared.server.inner.counters.record_reply_write(write_start.elapsed());
        if written.is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

/// Builds one response body (always newline-terminated; the caller appends
/// the end marker) and whether the connection should close afterwards.
fn respond(shared: &TcpShared, session: &mut ServeSession, request: Request) -> (String, bool) {
    match request {
        Request::Query { text } => match session.query(&text) {
            Ok(answer) => {
                let shown = answer.ranking.hits.len().min(session.top());
                (format!("OK {shown}\n{}", answer.ranking.render(session.top())), false)
            }
            Err(e) => (format!("{}\n", err_line(error_code(&e), &e.to_string())), false),
        },
        Request::Top { k } => {
            session.set_top(k);
            (format!("OK top={k}\n"), false)
        }
        Request::Stats => (format!("OK stats\n{}\n", shared.server.stats()), false),
        // The exposition already ends with a newline; no extra framing.
        Request::Metrics => (format!("OK metrics\n{}", shared.server.metrics()), false),
        Request::Quit => ("OK bye\n".to_owned(), true),
        Request::Shutdown => {
            // Answer first, then tear down — the trigger ends this
            // connection's read half, which is fine: we are done reading.
            shared.trigger_stop();
            ("OK shutting down\n".to_owned(), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_corpus(shards: usize) -> Arc<Corpus> {
        Arc::new(Corpus::synthetic_movies(5, 24, 11).with_shards(shards))
    }

    #[test]
    fn served_answer_matches_sequential_bytes() {
        let corpus = test_corpus(2);
        let server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
        let mut session = server.session();
        let answer = session.query("drama family").unwrap();
        let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
        assert_eq!(answer.ranking.render(session.top()), sequential);
        assert!(!sequential.is_empty());
    }

    #[test]
    fn budget_admits_then_rejects() {
        let server = CorpusServer::start(
            test_corpus(1),
            ServeConfig { budget: Some(1), ..ServeConfig::default() },
        );
        let mut session = server.session();
        session.query("drama").unwrap();
        assert!(session.spent() >= 1, "a matching query scans postings");
        let err = session.query("drama").unwrap_err();
        assert!(matches!(err, XsactError::BudgetExceeded { budget: 1, .. }), "{err}");
        // Budgets are per session, not per server.
        server.session().query("drama").unwrap();
        assert_eq!(server.stats().rejected_budget, 1);
    }

    #[test]
    fn zero_capacity_queue_is_always_overloaded() {
        let server = CorpusServer::start(
            test_corpus(1),
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        );
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::Overloaded { capacity: 0, .. }), "{err}");
        assert_eq!(server.stats().rejected_overload, 1);
        assert_eq!(server.stats().queries_served, 0);
    }

    #[test]
    fn shutdown_rejects_new_work_as_overloaded() {
        let server = CorpusServer::start(test_corpus(1), ServeConfig::default());
        server.shutdown();
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::Overloaded { .. }), "{err}");
    }

    #[test]
    fn empty_query_is_rejected_before_queueing() {
        let server = CorpusServer::start(test_corpus(1), ServeConfig::default());
        let err = server.session().query("???").unwrap_err();
        assert!(matches!(err, XsactError::EmptyQuery));
        assert_eq!(server.stats().queries_served, 0);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(error_code(&XsactError::Overloaded { depth: 1, capacity: 1 }), "OVERLOADED");
        assert_eq!(
            error_code(&XsactError::BudgetExceeded { spent: 2, budget: 1 }),
            "BUDGET_EXCEEDED"
        );
        assert_eq!(
            error_code(&XsactError::DeadlineExceeded { elapsed_ms: 2, deadline_ms: 1 }),
            "DEADLINE_EXCEEDED"
        );
        assert_eq!(
            error_code(&XsactError::ShardFailed { shard: 0, detail: "boom".into() }),
            "SHARD_FAILED"
        );
        assert_eq!(error_code(&XsactError::EmptyQuery), "EMPTY_QUERY");
        assert_eq!(error_code(&XsactError::EmptyCorpus), "INTERNAL");
    }

    #[test]
    fn zero_deadline_rejects_at_dispatch_without_executing() {
        let server = CorpusServer::start(
            test_corpus(2),
            ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() },
        );
        let err = server.session().query("drama").unwrap_err();
        assert!(matches!(err, XsactError::DeadlineExceeded { .. }), "{err}");
        let stats = server.stats();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.queries_served, 0, "an expired query never executes");
        assert_eq!(stats.queue_wait_ns.count, 0, "histograms record answered queries only");
    }

    #[test]
    fn shard_panic_is_typed_and_recovery_is_byte_identical() {
        let corpus = test_corpus(2);
        let server = CorpusServer::start(
            Arc::clone(&corpus),
            ServeConfig {
                faults: FaultPlan::parse("shard_panic@1").unwrap(),
                ..ServeConfig::default()
            },
        );
        let mut session = server.session();
        let err = session.query("drama family").unwrap_err();
        assert!(matches!(err, XsactError::ShardFailed { .. }), "{err}");
        assert!(err.to_string().contains("injected shard_panic fault"), "{err}");
        // The same session retries on the respawned worker and the answer
        // is byte-identical to sequential execution.
        let answer = session.query("drama family").unwrap();
        let sequential = corpus.query("drama family").unwrap().ranking().render(session.top());
        assert_eq!(answer.ranking.render(session.top()), sequential);
        let stats = server.stats();
        assert_eq!(stats.shard_failed, 1);
        assert_eq!(stats.shard_restarts, 1);
        assert_eq!(stats.queries_served, 1, "only the recovered query counts as served");
        assert_eq!(stats.execute_ns.count, stats.queries_served);
    }

    #[test]
    fn latency_histogram_counts_equal_queries_served() {
        let server = CorpusServer::start(test_corpus(2), ServeConfig::default());
        let mut session = server.session();
        session.query("drama").unwrap();
        session.query("family").unwrap();
        session.query("drama").unwrap();
        let stats = server.stats();
        assert_eq!(stats.queries_served, 3);
        assert_eq!(stats.queue_wait_ns.count, stats.queries_served);
        assert_eq!(stats.execute_ns.count, stats.queries_served);
        assert_eq!(stats.e2e_ns.count, stats.queries_served);
        let metrics = server.metrics();
        assert!(metrics.contains("xsact_queries_served 3"), "{metrics}");
        assert!(metrics.contains("xsact_e2e_ns_count 3"), "{metrics}");
        assert!(metrics.contains("# TYPE xsact_shard_0_busy_ns summary"), "{metrics}");
    }

    #[test]
    fn stats_count_batches_and_queries() {
        let server = CorpusServer::start(test_corpus(2), ServeConfig::default());
        let mut session = server.session();
        session.query("drama").unwrap();
        session.query("family").unwrap();
        let stats = server.stats();
        assert_eq!(stats.queries_served, 2);
        assert!(stats.batches >= 1);
        assert!(stats.postings_scanned > 0);
    }
}
