//! The [`Corpus`]: a sharded, multi-document workbench pool.
//!
//! One [`Workbench`] serves one document; a `Corpus`
//! serves many. It ingests XML documents (strings, generated fixtures, or
//! a directory of `.xml` files), builds one workbench per document, and
//! executes every query by **fanning out across shards in parallel** and
//! **k-way merging** the per-shard ranked lists into one deterministic
//! global ranking tagged with document ids:
//!
//! * documents are assigned to shards round-robin
//!   ([`xsact_corpus::ShardPlan`]) — a pure function of document count and
//!   shard count;
//! * each shard worker (a std scoped thread, see [`xsact_corpus::fan_out`])
//!   runs the ranked search over its documents;
//! * per-shard lists merge under a *total* order — score descending, then
//!   document id, then Dewey id — so the merged ranking is byte-identical
//!   for any shard count.
//!
//! The top of the merged ranking can be compared *across documents*: the
//! corpus pulls each hit's features from its owning workbench (cached,
//! thread-safe) and builds one comparison table whose columns may come
//! from different documents.
//!
//! ```
//! use xsact::corpus::Corpus;
//! use xsact::Algorithm;
//!
//! # fn main() -> Result<(), xsact::XsactError> {
//! let corpus = Corpus::synthetic_movies(4, 60, 42).with_shards(2);
//! let outcome = corpus.query("drama family")?.top(4).compare(Algorithm::MultiSwap)?;
//! assert!(outcome.hits.iter().any(|h| h.doc != outcome.hits[0].doc), "spans documents");
//! println!("{}", outcome.table());
//! # Ok(())
//! # }
//! ```

use crate::error::{XsactError, XsactResult};
use crate::workbench::Workbench;
use std::cmp::Ordering;
use std::fs;
use std::path::Path;
use xsact_core::{Algorithm, Comparison, ComparisonOutcome, DfsConfig};
use xsact_corpus::{fan_out, k_way_merge};
use xsact_data::movies::{MovieGenConfig, MoviesGen};
use xsact_entity::ResultFeatures;
use xsact_index::{ExecutorStats, Query, ScoredResult, SearchResult};
use xsact_obs::TraceSink;
use xsact_serve::FaultPlan;
use xsact_xml::{DeweyId, Document};

pub use xsact_corpus::{DocId, ShardPlan};

/// The demo compares the first four ticked results; corpus queries default
/// to the same top-k.
pub const DEFAULT_TOP: usize = 4;

/// One ingested document: its stable id, display name, and workbench.
/// The name is an `Arc<str>` because every hit of every query carries it —
/// tagging a hit must not allocate in the fan-out hot path.
#[derive(Debug)]
struct CorpusDoc {
    id: DocId,
    name: std::sync::Arc<str>,
    wb: Workbench,
}

/// A sharded pool of per-document workbenches; see the module docs.
#[derive(Debug)]
pub struct Corpus {
    docs: Vec<CorpusDoc>,
    shards: usize,
    /// Armed fault-injection sites for the persistence paths (chaos
    /// testing only); disarmed by default, which costs one branch.
    faults: FaultPlan,
}

impl Corpus {
    /// An empty corpus with the default shard count (the machine's
    /// available parallelism). Add documents with
    /// [`add_document`](Self::add_document) / [`add_xml`](Self::add_xml).
    pub fn new() -> Corpus {
        let shards = std::thread::available_parallelism().map_or(1, usize::from);
        Corpus { docs: Vec::new(), shards, faults: FaultPlan::disarmed() }
    }

    /// Builds a corpus from `(name, document)` pairs; ids follow iteration
    /// order.
    pub fn from_documents(docs: impl IntoIterator<Item = (String, Document)>) -> Corpus {
        let mut corpus = Corpus::new();
        for (name, doc) in docs {
            corpus.add_document(name, doc);
        }
        corpus
    }

    /// Parses and ingests `(name, xml)` pairs. Fails with
    /// [`XsactError::Xml`] on the first malformed document.
    pub fn from_xml_strings<'a>(
        docs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> XsactResult<Corpus> {
        let mut corpus = Corpus::new();
        for (name, xml) in docs {
            corpus.add_xml(name, xml)?;
        }
        Ok(corpus)
    }

    /// Ingests every `*.xml` file of `dir` in **sorted filename order**
    /// (so document ids are stable across runs and machines), using the
    /// file stem as the document name. Fails with
    /// [`XsactError::EmptyCorpus`] when the directory holds no XML files.
    pub fn from_dir(dir: impl AsRef<Path>) -> XsactResult<Corpus> {
        Corpus::from_dir_impl(dir.as_ref(), None)
    }

    /// Like [`from_dir`](Self::from_dir), but skips the per-document
    /// indexing scan whenever `index_dir` holds a previously saved index
    /// for the document (`<stem>.xidx`, fingerprint-checked), and saves
    /// any index it did have to build — so each shard's cold start is paid
    /// once, not on every process launch.
    ///
    /// A stale or corrupt index file is never trusted: the fingerprint
    /// check makes the load fail, and the corpus silently rebuilds and
    /// overwrites it.
    pub fn from_dir_cached(
        dir: impl AsRef<Path>,
        index_dir: impl AsRef<Path>,
    ) -> XsactResult<Corpus> {
        fs::create_dir_all(index_dir.as_ref())?;
        Corpus::from_dir_impl(dir.as_ref(), Some(index_dir.as_ref()))
    }

    fn from_dir_impl(dir: &Path, index_dir: Option<&Path>) -> XsactResult<Corpus> {
        let mut paths: Vec<_> = fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
            .collect();
        paths.sort();
        let mut corpus = Corpus::new();
        for path in paths {
            let name = path
                .file_stem()
                .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
            let doc = xsact_xml::parse_document(&fs::read_to_string(&path)?)?;
            let index_path = index_dir.map(|d| d.join(format!("{name}.xidx")));
            let wb = match &index_path {
                Some(ip) => match fs::File::open(ip) {
                    Ok(mut f) => match Workbench::from_persisted_index(doc.clone(), &mut f) {
                        Ok(wb) => wb,
                        Err(e) => {
                            // Degrade loudly but gracefully: one warning
                            // per unusable file saying *why* (stale
                            // fingerprint, checksum mismatch, old
                            // version), then rebuild from the XML and
                            // resave so the next launch loads cleanly.
                            eprintln!(
                                "xsact: index cache {} unusable ({e}); rebuilding from XML",
                                ip.display()
                            );
                            let wb = Workbench::from_document(doc);
                            // Best-effort cache write: the corpus is
                            // already built in memory, so an unwritable
                            // index_dir (read-only, disk full) must not
                            // fail ingestion — the next load just
                            // rebuilds again.
                            let _ = save_index_atomic(&wb, ip);
                            wb
                        }
                    },
                    // No cache file yet (cold start) — build and write
                    // it quietly.
                    Err(_) => {
                        let wb = Workbench::from_document(doc);
                        let _ = save_index_atomic(&wb, ip);
                        wb
                    }
                },
                None => Workbench::from_document(doc),
            };
            corpus.push(name, wb);
        }
        if corpus.is_empty() {
            return Err(XsactError::EmptyCorpus);
        }
        Ok(corpus)
    }

    /// A synthetic fleet of movie datasets — `docs` documents of
    /// `movies_per_doc` movies each, seeded `seed`, `seed + 1`, … so every
    /// document differs but the whole corpus is reproducible. Used by the
    /// scaling bench, the corpus tests, and the CLI's `--docs` mode.
    pub fn synthetic_movies(docs: usize, movies_per_doc: usize, seed: u64) -> Corpus {
        Corpus::from_documents((0..docs).map(|i| {
            let cfg = MovieGenConfig {
                seed: seed + i as u64,
                movies: movies_per_doc,
                ..Default::default()
            };
            (format!("movies-{i:02}"), MoviesGen::new(cfg).generate())
        }))
    }

    /// Sets the shard count (builder form). Values are clamped to `1..`;
    /// counts above the document count leave trailing shards empty, which
    /// is harmless. The shard count **never** affects query results — only
    /// how the work is spread over threads.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Corpus {
        self.set_shards(shards);
        self
    }

    /// Sets the shard count in place.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Arms fault-injection sites on the persistence paths (builder
    /// form); chaos tests only.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Corpus {
        self.set_faults(faults);
        self
    }

    /// Arms fault-injection sites in place.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingests a parsed document under `name`, returning its id.
    pub fn add_document(&mut self, name: impl Into<String>, doc: Document) -> DocId {
        self.push(name.into(), Workbench::from_document(doc))
    }

    /// Parses and ingests an XML string under `name`.
    pub fn add_xml(&mut self, name: impl Into<String>, xml: &str) -> XsactResult<DocId> {
        Ok(self.push(name.into(), Workbench::from_xml(xml)?))
    }

    fn push(&mut self, name: String, wb: Workbench) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(CorpusDoc { id, name: name.into(), wb });
        id
    }

    /// Number of ingested documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The display name of a document.
    pub fn doc_name(&self, id: DocId) -> &str {
        &self.docs[id.index()].name
    }

    /// The workbench serving a document, for layer-level access.
    pub fn workbench(&self, id: DocId) -> &Workbench {
        &self.docs[id.index()].wb
    }

    /// Saves every document's inverted index into `dir` as
    /// `<name>.xidx`, for later cold-start skipping via
    /// [`from_dir_cached`](Self::from_dir_cached). Each file is written
    /// crash-safely (see [`save_index_atomic`]): a crash mid-save leaves
    /// the previous file (or none), never a torn one.
    pub fn save_indexes(&self, dir: impl AsRef<Path>) -> XsactResult<()> {
        fs::create_dir_all(dir.as_ref())?;
        for doc in &self.docs {
            let path = dir.as_ref().join(format!("{}.xidx", doc.name));
            save_index_atomic_faulted(&doc.wb, &path, &self.faults)?;
        }
        Ok(())
    }

    /// Starts a corpus-wide query. Fails with
    /// [`XsactError::EmptyQuery`] / [`XsactError::EmptyCorpus`] before any
    /// thread is spawned.
    pub fn query(&self, text: &str) -> XsactResult<CorpusQuery<'_>> {
        self.build_query(text, None)
    }

    /// [`query`](Self::query) with a stage trace attached from the start:
    /// the `parse` span, one `shard N` span per worker (so skew across
    /// shards is visible), and the global `merge` span all land in
    /// `sink`. Tracing never changes the ranked bytes (pinned by
    /// `tests/obs.rs`).
    pub fn query_traced<'a>(
        &'a self,
        text: &str,
        sink: &'a TraceSink,
    ) -> XsactResult<CorpusQuery<'a>> {
        self.build_query(text, Some(sink))
    }

    fn build_query<'a>(
        &'a self,
        text: &str,
        trace: Option<&'a TraceSink>,
    ) -> XsactResult<CorpusQuery<'a>> {
        if self.docs.is_empty() {
            return Err(XsactError::EmptyCorpus);
        }
        let span = trace.map(|sink| sink.span("parse"));
        let query = Query::parse(text);
        if let Some(mut span) = span {
            span.note("terms", query.terms().len() as u64);
            span.finish();
        }
        if query.is_empty() {
            return Err(XsactError::EmptyQuery);
        }
        Ok(CorpusQuery {
            corpus: self,
            query,
            top: DEFAULT_TOP,
            config: DfsConfig::default(),
            trace,
            ranking_memo: std::cell::OnceCell::new(),
            topk_memo: std::cell::OnceCell::new(),
        })
    }

    /// Executor counters aggregated over every document workbench — the
    /// corpus-wide view of [`Workbench::executor_stats`].
    pub fn executor_stats(&self) -> ExecutorStats {
        self.docs.iter().fold(ExecutorStats::default(), |acc, doc| acc + doc.wb.executor_stats())
    }

    /// The number of shards a query will actually use: empty shards are
    /// not spawned, so this is `min(shards, len)`.
    pub fn effective_shards(&self) -> usize {
        self.shards.min(self.docs.len()).max(1)
    }

    /// One shard's unit of work, shared verbatim by the scoped-thread
    /// fan-out ([`CorpusQuery::ranking`]) and the serving runtime's
    /// persistent shard pool (`crate::serve`): rank each document of the
    /// shard's round-robin slice through the streaming executor bounded by
    /// `k`, then merge the per-document lists under the ranking's total
    /// order and truncate to `k`. Because both execution paths run *this*
    /// function over *the same* [`ShardPlan`] partition, pooling can never
    /// change result bytes.
    ///
    /// Returns the shard's merged list plus the executor work it cost,
    /// summed over the shard's documents (also recorded into each owning
    /// workbench's cumulative counters).
    pub(crate) fn execute_shard(
        &self,
        query: &Query,
        doc_indexes: &[usize],
        k: usize,
    ) -> (Vec<CorpusHit>, ExecutorStats) {
        let mut stats = ExecutorStats::default();
        let per_doc: Vec<Vec<CorpusHit>> = doc_indexes
            .iter()
            .map(|&d| {
                let (hits, s) = search_one(query, &self.docs[d], k);
                stats += s;
                hits
            })
            .collect();
        let mut merged = k_way_merge(per_doc, CorpusHit::ranking_order);
        merged.truncate(k);
        (merged, stats)
    }

    /// [`execute_shard`](Self::execute_shard) over a whole dispatch
    /// round: every query of the batch runs against every document of the
    /// shard's slice, with one per-document plan-fragment table shared
    /// across the batch (`Workbench::search_top_k_batch`), so queries
    /// sharing terms resolve each (doc, term) posting list once. The
    /// returned per-query `(merged list, stats)` pairs are byte-identical
    /// to calling `execute_shard` once per query — sharing only memoises
    /// index resolutions — except that `ExecutorStats::postings_shared`
    /// counts the reused entries.
    pub(crate) fn execute_shard_batch(
        &self,
        queries: &[(Query, usize)],
        doc_indexes: &[usize],
    ) -> Vec<(Vec<CorpusHit>, ExecutorStats)> {
        let mut per_query: Vec<(Vec<Vec<CorpusHit>>, ExecutorStats)> = queries
            .iter()
            .map(|_| (Vec::with_capacity(doc_indexes.len()), ExecutorStats::default()))
            .collect();
        for &d in doc_indexes {
            let doc = &self.docs[d];
            for (slot, (hits, stats)) in
                per_query.iter_mut().zip(doc.wb.search_top_k_batch(queries))
            {
                slot.1 += stats;
                slot.0.push(tag_hits(doc, hits));
            }
        }
        per_query
            .into_iter()
            .zip(queries)
            .map(|((per_doc, stats), (_, k))| {
                let mut merged = k_way_merge(per_doc, CorpusHit::ranking_order);
                merged.truncate(*k);
                (merged, stats)
            })
            .collect()
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Corpus::new()
    }
}

/// Crash-safe index save: the bytes go to `<path>.tmp`, are fsynced, and
/// only then atomically renamed over `path`. A crash (or `kill -9`) at
/// any point leaves either the previous file or no file under the final
/// name — never a torn one — and the `.xidx` checksum trailer catches
/// anything the filesystem still manages to mangle. The temp file is
/// removed on failure.
pub fn save_index_atomic(wb: &Workbench, path: &Path) -> XsactResult<()> {
    save_index_atomic_faulted(wb, path, &FaultPlan::disarmed())
}

/// [`save_index_atomic`] with an `io_error_on_save` injection site, for
/// the chaos suite to prove a failed save never leaves a temp file or a
/// loadable-but-wrong index behind.
fn save_index_atomic_faulted(wb: &Workbench, path: &Path, faults: &FaultPlan) -> XsactResult<()> {
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let result = (|| -> XsactResult<()> {
        let mut file = fs::File::create(&tmp)?;
        wb.save_index(&mut file)?;
        if faults.should_fire("io_error_on_save", 0).is_some() {
            return Err(XsactError::Io(std::io::Error::other("injected io_error_on_save fault")));
        }
        // fsync before the rename: an atomic rename of unsynced bytes can
        // still surface an empty file after a power loss.
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// One entry of a merged corpus ranking: a search result plus the document
/// it came from and its relevance score.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusHit {
    /// Owning document.
    pub doc: DocId,
    /// The owning document's display name (shared, not per-hit allocated).
    pub doc_name: std::sync::Arc<str>,
    /// The result subtree inside that document.
    pub result: SearchResult,
    /// Dewey id of the result root — part of the merge's total order, and
    /// cheap to render.
    pub dewey: DeweyId,
    /// Relevance score and its components.
    pub score: ScoredResult,
}

impl CorpusHit {
    /// The merge's total order: score descending, then document id, then
    /// Dewey id. Depends only on the hit itself — never on shard count or
    /// thread timing — which is what makes corpus rankings deterministic.
    /// `pub(crate)` so the serving runtime's global merge uses the *same*
    /// comparator as the scoped fan-out.
    pub(crate) fn ranking_order(&self, other: &CorpusHit) -> Ordering {
        other
            .score
            .score
            .total_cmp(&self.score.score)
            .then_with(|| self.doc.cmp(&other.doc))
            .then_with(|| self.dewey.cmp(&other.dewey))
    }
}

/// The merged, deterministic result of one corpus query.
#[derive(Debug, Clone)]
pub struct CorpusRanking {
    /// Globally ranked hits, best first.
    pub hits: Vec<CorpusHit>,
    /// How many shard workers produced it.
    pub shards: usize,
}

impl CorpusRanking {
    /// Renders the top `limit` entries, one line per hit — the corpus
    /// analogue of the demo's result page.
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        for (i, hit) in self.hits.iter().take(limit).enumerate() {
            out.push_str(&format!(
                "  [{:>2}] {}  @{}  (score {:.3})\n",
                i + 1,
                hit.result.label,
                hit.doc_name,
                hit.score.score
            ));
        }
        out
    }
}

/// The outcome of a cross-document comparison: which hits were compared,
/// and the comparison table they produced.
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// The compared hits, in ranking order (= table column order).
    pub hits: Vec<CorpusHit>,
    /// The underlying comparison result.
    pub comparison: ComparisonOutcome,
}

impl CorpusOutcome {
    /// Total degree of differentiation.
    pub fn dod(&self) -> u32 {
        self.comparison.dod()
    }

    /// The cross-document comparison table.
    pub fn table(&self) -> String {
        self.comparison.table()
    }
}

/// A configured query over a [`Corpus`]: fan out, merge, optionally
/// compare.
#[derive(Debug, Clone)]
pub struct CorpusQuery<'a> {
    corpus: &'a Corpus,
    query: Query,
    top: usize,
    config: DfsConfig,
    /// The *full* merged ranking, computed once per query value —
    /// `ranking()` followed by `compare()` (the CLI's exact shape) must
    /// not fan the search out across the corpus twice. No builder method
    /// changes what the search returns (`top`/`size_bound`/`threshold`
    /// only shape the comparison), so the memo survives them.
    ranking_memo: std::cell::OnceCell<CorpusRanking>,
    /// The *bounded* merged top-k, produced by pushing `top` down into
    /// each shard's streaming executor: every shard computes only its
    /// local top-k and the global merge touches `shards × k` candidates.
    /// Used by the comparison terminals when the full ranking was never
    /// requested; reset by [`top`](CorpusQuery::top).
    topk_memo: std::cell::OnceCell<CorpusRanking>,
    /// Where stage spans go when the caller asked for a trace
    /// ([`Corpus::query_traced`]); `None` takes no timestamps. Purely
    /// observational, so it never resets a memo.
    trace: Option<&'a TraceSink>,
}

impl<'a> CorpusQuery<'a> {
    /// How many merged results enter the comparison (default
    /// [`DEFAULT_TOP`]). This bound is **pushed down** into the shard
    /// workers: a comparison-only query computes `top` results per
    /// document and merges `shards × top` candidates, never the full
    /// corpus-wide ranking.
    #[must_use]
    pub fn top(mut self, k: usize) -> Self {
        self.top = k;
        self.topk_memo = std::cell::OnceCell::new();
        self
    }

    /// Sets the comparison-table size bound `L` (features per DFS).
    #[must_use]
    pub fn size_bound(mut self, bound: usize) -> Self {
        self.config.size_bound = bound;
        self
    }

    /// Sets the differentiability threshold `x` in percent.
    #[must_use]
    pub fn threshold(mut self, pct: f64) -> Self {
        self.config.threshold_pct = pct;
        self
    }

    /// The query text, as parsed.
    pub fn query_text(&self) -> String {
        self.query.to_string()
    }

    /// Executes the fan-out and returns the merged global ranking
    /// (memoized — repeated terminals reuse the first run's result; clone
    /// the return value for an owned copy).
    ///
    /// Per shard count `N`, the corpus spawns min(N, documents) workers;
    /// each runs the ranked search over its round-robin slice of the
    /// documents and merges its own per-document lists, then the shard
    /// lists k-way merge into the global ranking. The output is
    /// byte-identical for every `N`.
    pub fn ranking(&self) -> &CorpusRanking {
        self.ranked()
    }

    fn ranked(&self) -> &CorpusRanking {
        self.ranking_memo.get_or_init(|| self.fan_out_ranked(usize::MAX))
    }

    /// The bounded fan-out: each shard computes only its local top-k, and
    /// the global merge sees `shards × k` candidates. Because the merge
    /// order is total and per-document lists are exact truncations of
    /// their full rankings, the result equals the full ranking's first
    /// `k` entries byte for byte (pinned by `tests/corpus.rs`).
    fn ranked_top_k(&self) -> &CorpusRanking {
        // Probe at least one result so "matched nothing" (a typed
        // `NoResults`) stays distinguishable from `top(0)`.
        self.topk_memo.get_or_init(|| self.fan_out_ranked(self.top.max(1)))
    }

    /// The one fan-out/merge pipeline behind both memo paths, so the full
    /// and bounded rankings cannot drift apart: spawn
    /// min(shards, documents) workers, rank each worker's round-robin
    /// document slice through the streaming executor bounded by `k`
    /// (`usize::MAX` = unbounded), merge per shard, then merge the shard
    /// lists — every merge truncated to `k`.
    fn fan_out_ranked(&self, k: usize) -> CorpusRanking {
        // The worker closure captures only `Sync` state (the corpus, the
        // parsed query, and the mutex-guarded trace sink) — not `self`,
        // whose memo cells are single-thread.
        let (corpus, query, trace) = (self.corpus, &self.query, self.trace);
        let shards = corpus.effective_shards();
        // effective_shards() ≤ document count, so round-robin
        // partitioning never produces an empty shard.
        let parts = ShardPlan::new(shards).partition(corpus.docs.len());
        let shard_lists = fan_out(parts, |shard, doc_indexes| {
            let span = trace.map(|sink| sink.span(format!("shard {shard}")));
            let (hits, stats) = corpus.execute_shard(query, &doc_indexes, k);
            if let Some(mut span) = span {
                span.note("docs", doc_indexes.len() as u64);
                span.note("postings_scanned", stats.postings_scanned);
                span.note("hits", hits.len() as u64);
                span.finish();
            }
            hits
        });
        let span = trace.map(|sink| sink.span("merge"));
        let candidates: usize = shard_lists.iter().map(Vec::len).sum();
        let ranking = merge_shard_lists(shard_lists, k, shards);
        if let Some(mut span) = span {
            span.note("candidates", candidates as u64);
            span.note("kept", ranking.hits.len() as u64);
            span.finish();
        }
        ranking
    }

    /// The features of the top-k hits, pulled from each hit's owning
    /// workbench (cached). In a multi-document corpus every label is
    /// qualified with its document name, so equally-named results from
    /// different documents stay distinguishable table columns.
    pub fn features(&self) -> XsactResult<Vec<ResultFeatures>> {
        Ok(self.features_of(&self.top_hits()?))
    }

    fn features_of(&self, hits: &[CorpusHit]) -> Vec<ResultFeatures> {
        let qualify = self.corpus.len() > 1;
        hits.iter()
            .map(|h| {
                let label = if qualify {
                    format!("{} ({})", h.result.label, h.doc_name)
                } else {
                    h.result.label.clone()
                };
                self.corpus.docs[h.doc.index()].wb.subtree_features(h.result.root, label)
            })
            .collect()
    }

    fn top_hits(&self) -> XsactResult<Vec<CorpusHit>> {
        // Reuse the full ranking when it is already memoized (the CLI
        // renders it before comparing) instead of fanning out a second,
        // bounded search; otherwise run only the bounded top-k fan-out.
        let ranking = match self.ranking_memo.get() {
            Some(full) => full,
            None => self.ranked_top_k(),
        };
        if ranking.hits.is_empty() {
            return Err(XsactError::NoResults { query: self.query_text() });
        }
        let k = self.top.min(ranking.hits.len());
        Ok(ranking.hits[..k].to_vec())
    }

    /// Fans out, merges, and compares the global top-k — which may span
    /// several documents — into one comparison table.
    pub fn compare(&self, algorithm: Algorithm) -> XsactResult<CorpusOutcome> {
        if !self.config.threshold_pct.is_finite() || self.config.threshold_pct < 0.0 {
            return Err(XsactError::InvalidConfig(format!(
                "differentiability threshold must be a non-negative percentage, got {}",
                self.config.threshold_pct
            )));
        }
        let hits = self.top_hits()?;
        if hits.len() < 2 {
            return Err(XsactError::NotEnoughResults {
                query: self.query_text(),
                found: hits.len(),
            });
        }
        let features = self.features_of(&hits);
        let comparison = Comparison::new(&features)
            .size_bound(self.config.size_bound)
            .threshold(self.config.threshold_pct);
        let outcome = match algorithm {
            Algorithm::Exhaustive { limit } => comparison
                .run_exhaustive(limit)
                .ok_or(XsactError::ExhaustiveLimitExceeded { limit })?,
            _ => comparison.run(algorithm),
        };
        Ok(CorpusOutcome { hits, comparison: outcome })
    }
}

/// The global half of the merge pipeline, shared by the scoped fan-out and
/// the serving runtime: k-way merge the per-shard lists under the
/// ranking's total order and truncate to `k`.
pub(crate) fn merge_shard_lists(
    shard_lists: Vec<Vec<CorpusHit>>,
    k: usize,
    shards: usize,
) -> CorpusRanking {
    let mut hits = k_way_merge(shard_lists, CorpusHit::ranking_order);
    hits.truncate(k);
    CorpusRanking { hits, shards }
}

/// One document's slice of a shard's work: the ranked search through the
/// streaming executor (bounded by `k`, `usize::MAX` for the full ranking),
/// tagged with the document's identity for the cross-shard merge, plus the
/// executor work it cost. Counters also land in the owning workbench's
/// [`Workbench::executor_stats`].
fn search_one(query: &Query, doc: &CorpusDoc, k: usize) -> (Vec<CorpusHit>, ExecutorStats) {
    let (hits, stats) = doc.wb.search_top_k_stats(query, k);
    (tag_hits(doc, hits), stats)
}

/// Tags one document's ranked hits with the document's identity for the
/// cross-shard merge — shared by the per-query and batch shard paths so
/// the tagging cannot drift.
fn tag_hits(doc: &CorpusDoc, hits: Vec<(SearchResult, ScoredResult)>) -> Vec<CorpusHit> {
    let document = doc.wb.document();
    hits.into_iter()
        .map(|(result, score)| CorpusHit {
            doc: doc.id,
            doc_name: doc.name.clone(),
            dewey: document.dewey(result.root).to_owned(),
            result,
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shop(tag: &str, products: &[(&str, &str)]) -> String {
        let mut xml = format!("<{tag}>");
        for (name, kind) in products {
            xml.push_str(&format!("<product><name>{name}</name><kind>{kind}</kind></product>"));
        }
        xml.push_str(&format!("</{tag}>"));
        xml
    }

    fn small_corpus() -> Corpus {
        let a = shop("shop", &[("Alpha gps", "gps"), ("Beta cam", "camera")]);
        let b = shop("shop", &[("Gamma gps", "gps navigation")]);
        let c = shop("shop", &[("Delta player", "audio")]);
        Corpus::from_xml_strings([
            ("store-a", a.as_str()),
            ("store-b", b.as_str()),
            ("store-c", c.as_str()),
        ])
        .unwrap()
    }

    #[test]
    fn corpus_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Corpus>();
    }

    #[test]
    fn ingestion_assigns_stable_ids_and_names() {
        let corpus = small_corpus();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.doc_name(DocId(0)), "store-a");
        assert_eq!(corpus.doc_name(DocId(2)), "store-c");
        assert!(!corpus.is_empty());
    }

    #[test]
    fn query_tags_hits_with_document_ids() {
        let corpus = small_corpus().with_shards(2);
        let query = corpus.query("gps").unwrap();
        let ranking = query.ranking();
        assert_eq!(ranking.hits.len(), 2);
        let docs: Vec<DocId> = ranking.hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&DocId(0)) && docs.contains(&DocId(1)));
        let rendered = ranking.render(10);
        assert!(rendered.contains("@store-a") && rendered.contains("@store-b"));
    }

    #[test]
    fn empty_corpus_and_empty_query_are_typed() {
        let empty = Corpus::new();
        assert!(matches!(empty.query("gps"), Err(XsactError::EmptyCorpus)));
        let corpus = small_corpus();
        assert!(matches!(corpus.query("???"), Err(XsactError::EmptyQuery)));
        assert!(matches!(
            corpus.query("zeppelin").unwrap().compare(Algorithm::MultiSwap),
            Err(XsactError::NoResults { .. })
        ));
    }

    #[test]
    fn single_hit_cannot_compare() {
        let corpus = small_corpus();
        let err = corpus.query("audio").unwrap().compare(Algorithm::MultiSwap).unwrap_err();
        assert!(matches!(err, XsactError::NotEnoughResults { found: 1, .. }));
    }

    #[test]
    fn shard_count_never_changes_the_ranking() {
        let mut corpus = Corpus::synthetic_movies(5, 40, 7);
        let baseline = {
            corpus.set_shards(1);
            corpus.query("drama family").unwrap().ranking().clone()
        };
        assert!(baseline.hits.len() > 2);
        for shards in [2, 3, 8, 64] {
            corpus.set_shards(shards);
            let query = corpus.query("drama family").unwrap();
            assert_eq!(query.ranking().render(100), baseline.render(100), "{shards} shards");
        }
    }

    #[test]
    fn comparison_spans_documents_with_qualified_labels() {
        let corpus = small_corpus();
        let outcome = corpus.query("gps").unwrap().top(2).compare(Algorithm::MultiSwap).unwrap();
        let labels = outcome.comparison.labels().join(" | ");
        assert!(labels.contains("(store-a)") && labels.contains("(store-b)"), "{labels}");
        assert!(outcome.hits[0].doc != outcome.hits[1].doc);
        assert!(outcome.table().contains("store-a"));
    }

    #[test]
    fn synthetic_fleet_is_reproducible_but_diverse() {
        let a = Corpus::synthetic_movies(3, 20, 9);
        let b = Corpus::synthetic_movies(3, 20, 9);
        for id in [DocId(0), DocId(1), DocId(2)] {
            assert_eq!(
                xsact_xml::writer::write_subtree(
                    a.workbench(id).document(),
                    a.workbench(id).document().root()
                ),
                xsact_xml::writer::write_subtree(
                    b.workbench(id).document(),
                    b.workbench(id).document().root()
                ),
            );
        }
        // Different seeds per document: doc 0 and doc 1 differ.
        assert_ne!(
            xsact_xml::writer::write_subtree(
                a.workbench(DocId(0)).document(),
                a.workbench(DocId(0)).document().root()
            ),
            xsact_xml::writer::write_subtree(
                a.workbench(DocId(1)).document(),
                a.workbench(DocId(1)).document().root()
            ),
        );
    }

    #[test]
    fn effective_shards_clamp_to_documents() {
        let corpus = small_corpus().with_shards(64);
        assert_eq!(corpus.shards(), 64);
        assert_eq!(corpus.effective_shards(), 3);
        assert_eq!(small_corpus().with_shards(0).effective_shards(), 1);
    }

    /// A singleton batch is the identity: `execute_shard_batch([q])`
    /// returns exactly what `execute_shard(q)` returns, hits and legacy
    /// counters alike, over every document slice.
    #[test]
    fn singleton_batch_equals_execute_shard() {
        let corpus = small_corpus();
        let slices: [&[usize]; 4] = [&[0, 1, 2], &[0], &[1, 2], &[]];
        for slice in slices {
            for (text, k) in [("gps", 4), ("gps navigation", 2), ("player", 1), ("gps", 0)] {
                let query = Query::parse(text);
                let (hits, stats) = corpus.execute_shard(&query, slice, k);
                let batch = corpus.execute_shard_batch(&[(query, k)], slice);
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].0, hits, "{text:?} k={k} slice {slice:?}");
                assert_eq!(
                    (
                        batch[0].1.postings_scanned,
                        batch[0].1.gallop_probes,
                        batch[0].1.candidates_pruned,
                    ),
                    (stats.postings_scanned, stats.gallop_probes, stats.candidates_pruned),
                    "{text:?} k={k} slice {slice:?}"
                );
                assert_eq!(batch[0].1.postings_shared, 0, "one query shares nothing");
            }
        }
    }

    /// A term-overlapping batch shares posting resolutions without
    /// changing a single hit or legacy counter relative to independent
    /// execution.
    #[test]
    fn overlapping_batch_shares_postings_without_changing_results() {
        let corpus = small_corpus();
        let slice = [0usize, 1, 2];
        let batch: Vec<(Query, usize)> = [("gps", 4), ("gps navigation", 4), ("gps camera", 4)]
            .into_iter()
            .map(|(text, k)| (Query::parse(text), k))
            .collect();
        let shared = corpus.execute_shard_batch(&batch, &slice);
        let mut total_shared = 0;
        for ((query, k), (hits, stats)) in batch.iter().zip(&shared) {
            let (independent_hits, independent_stats) = corpus.execute_shard(query, &slice, *k);
            assert_eq!(hits, &independent_hits, "{query} diverged under sharing");
            assert_eq!(
                (stats.postings_scanned, stats.gallop_probes, stats.candidates_pruned),
                (
                    independent_stats.postings_scanned,
                    independent_stats.gallop_probes,
                    independent_stats.candidates_pruned,
                ),
                "{query}: sharing changed the work counters"
            );
            total_shared += stats.postings_shared;
        }
        assert!(total_shared > 0, "\"gps\" repeats across the batch: entries must be shared");
    }
}
