//! The [`Workbench`]: one session-oriented entry point for the whole XSACT
//! pipeline.
//!
//! The paper's flow (Figure 3) is *load structured data → keyword search →
//! select results → extract features → generate Differentiation Feature
//! Sets → render the comparison table*. Before this module existed every
//! consumer hand-wired that five-crate sequence; the `Workbench` owns it:
//!
//! * it holds the [`SearchEngine`] (inverted index + structural summary)
//!   built once per document,
//! * it owns a **per-result feature cache** keyed by the result's root
//!   [`NodeId`] (plus its display label), so repeated queries over the same
//!   session never re-extract features for a result they have already seen
//!   (feature extraction walks the whole result subtree and is the dominant
//!   per-query cost after the index is built),
//! * it exposes the fluent [`QueryPipeline`] with typed
//!   [`XsactError`] failures instead of `String`s and
//!   `unwrap()`s.
//!
//! ```
//! use xsact::prelude::*;
//!
//! # fn main() -> Result<(), XsactError> {
//! let wb = Workbench::from_document(xsact::data::fixtures::figure1_document());
//! let outcome = wb
//!     .query("TomTom GPS")?
//!     .size_bound(7)
//!     .compare(Algorithm::MultiSwap)?;
//! assert_eq!(outcome.dod(), 5); // the paper's headline number
//! # Ok(())
//! # }
//! ```

use crate::error::{XsactError, XsactResult};
use std::cell::{Cell, OnceCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use xsact_core::{Algorithm, Comparison, ComparisonOutcome, DfsConfig, Instance};
use xsact_entity::ResultFeatures;
use xsact_index::{
    ExecutorStats, Query, ResultSemantics, ScoredResult, SearchEngine, SearchResult,
};
use xsact_obs::TraceSink;
use xsact_xml::{parse_document, Document, NodeId};

/// Hit/miss counters of the workbench's feature cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Feature lookups served from the cache.
    pub hits: u64,
    /// Feature lookups that had to run extraction.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of feature lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Number of independent lock shards in the feature cache. Lock contention
/// is per-shard, so concurrent queries over disjoint results rarely touch
/// the same lock; a small power of two keeps the modulo cheap.
const CACHE_SHARDS: usize = 8;

type FeatureKey = (NodeId, String);

/// One lock shard of the feature cache: a map under its own `RwLock` plus
/// its share of the hit/miss counters. Counters are atomics (not guarded by
/// the lock) so a hit only ever takes the shard's *read* lock.
#[derive(Debug, Default)]
struct CacheShard {
    map: RwLock<HashMap<FeatureKey, ResultFeatures>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The sharded, thread-safe feature cache. Every lookup increments exactly
/// one of `hits`/`misses` with an atomic add, so the aggregated counters
/// never lose updates under concurrency and
/// `stats().lookups()` always equals the number of `get_or_extract` calls.
#[derive(Debug)]
struct FeatureCache {
    shards: [CacheShard; CACHE_SHARDS],
}

impl FeatureCache {
    fn new() -> Self {
        FeatureCache { shards: std::array::from_fn(|_| CacheShard::default()) }
    }

    fn shard_of(&self, key: &FeatureKey) -> &CacheShard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % CACHE_SHARDS]
    }

    fn get_or_extract(
        &self,
        key: FeatureKey,
        extract: impl FnOnce(&FeatureKey) -> ResultFeatures,
    ) -> ResultFeatures {
        let shard = self.shard_of(&key);
        if let Some(cached) = shard.map.read().expect("cache lock poisoned").get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        // Extract outside the lock: extraction walks the whole result
        // subtree, and holding the write lock across it would serialise
        // every concurrent miss. Two racing misses may both extract; the
        // result is identical (extraction is deterministic), so whichever
        // insert lands second is a no-op.
        let rf = extract(&key);
        shard.map.write().expect("cache lock poisoned").entry(key).or_insert_with(|| rf.clone());
        rf
    }

    fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, s| CacheStats {
            hits: acc.hits + s.hits.load(Ordering::Relaxed),
            misses: acc.misses + s.misses.load(Ordering::Relaxed),
        })
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().expect("cache lock poisoned").len()).sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().expect("cache lock poisoned").clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }
}

/// Cumulative executor counters of one workbench: every search executed
/// through the facade (pipeline terminals, bounded top-k runs, corpus
/// fan-out workers) adds its [`ExecutorStats`] here with relaxed atomics,
/// so the aggregate is exact at any quiescent point and cheap to record
/// under concurrency.
#[derive(Debug, Default)]
struct ExecCounters {
    searches: AtomicU64,
    postings_scanned: AtomicU64,
    gallop_probes: AtomicU64,
    candidates_pruned: AtomicU64,
    postings_shared: AtomicU64,
}

impl ExecCounters {
    fn record(&self, stats: ExecutorStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.postings_scanned.fetch_add(stats.postings_scanned, Ordering::Relaxed);
        self.gallop_probes.fetch_add(stats.gallop_probes, Ordering::Relaxed);
        self.candidates_pruned.fetch_add(stats.candidates_pruned, Ordering::Relaxed);
        self.postings_shared.fetch_add(stats.postings_shared, Ordering::Relaxed);
    }

    fn totals(&self) -> ExecutorStats {
        ExecutorStats {
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
            gallop_probes: self.gallop_probes.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
            postings_shared: self.postings_shared.load(Ordering::Relaxed),
        }
    }
}

/// A query-ready XSACT session over one document.
///
/// Create one per document with [`Workbench::from_xml`] or
/// [`Workbench::from_document`], then issue any number of queries through
/// [`Workbench::query`]. The underlying layer crates remain independently
/// usable; the workbench only orchestrates them and adds caching.
///
/// A workbench is `Sync`: the feature cache is sharded behind `RwLock`s
/// with atomic hit/miss counters, so any number of threads may query the
/// same workbench concurrently (the corpus engine fans out over shards of
/// workbenches this way).
#[derive(Debug)]
pub struct Workbench {
    engine: SearchEngine,
    features: FeatureCache,
    exec: ExecCounters,
}

impl Workbench {
    /// Parses `xml` and builds the search engine over it.
    pub fn from_xml(xml: &str) -> XsactResult<Workbench> {
        Ok(Workbench::from_document(parse_document(xml)?))
    }

    /// Builds the search engine over an existing document.
    pub fn from_document(doc: Document) -> Workbench {
        Workbench::from_engine(SearchEngine::build(doc))
    }

    /// Wraps an already-built engine (e.g. one restored from a persisted
    /// index).
    pub fn from_engine(engine: SearchEngine) -> Workbench {
        Workbench { engine, features: FeatureCache::new(), exec: ExecCounters::default() }
    }

    /// Builds a workbench from a document plus a previously
    /// [saved](Workbench::save_index) index, skipping the indexing scan.
    /// Fails with [`XsactError::Io`] if the bytes are corrupt or were
    /// written for a different document (fingerprint mismatch).
    pub fn from_persisted_index(doc: Document, r: &mut impl Read) -> XsactResult<Workbench> {
        let index = xsact_index::load_index(&doc, r)?;
        Ok(Workbench::from_engine(SearchEngine::from_parts(doc, index)))
    }

    /// Serialises the inverted index (with the document fingerprint) so a
    /// later session can skip the indexing scan.
    pub fn save_index(&self, w: &mut impl Write) -> XsactResult<()> {
        xsact_index::save_index(self.engine.document(), self.engine.index(), w)?;
        Ok(())
    }

    /// Starts a query pipeline. Fails with [`XsactError::EmptyQuery`] when
    /// `text` contains no indexable terms.
    pub fn query(&self, text: &str) -> XsactResult<QueryPipeline<'_>> {
        self.build_pipeline(text, None)
    }

    /// [`query`](Self::query) with a stage trace attached from the start,
    /// so the `parse` span is captured too (a pipeline obtained from
    /// [`query`](Self::query) can still opt in later via
    /// [`QueryPipeline::traced`], minus the parse span).
    pub fn query_traced<'a>(
        &'a self,
        text: &str,
        sink: &'a TraceSink,
    ) -> XsactResult<QueryPipeline<'a>> {
        self.build_pipeline(text, Some(sink))
    }

    fn build_pipeline<'a>(
        &'a self,
        text: &str,
        trace: Option<&'a TraceSink>,
    ) -> XsactResult<QueryPipeline<'a>> {
        let span = trace.map(|sink| sink.span("parse"));
        let query = Query::parse(text);
        if let Some(mut span) = span {
            span.note("terms", query.terms().len() as u64);
            span.finish();
        }
        if query.is_empty() {
            return Err(XsactError::EmptyQuery);
        }
        Ok(QueryPipeline {
            wb: self,
            query,
            semantics: ResultSemantics::default(),
            ranked: false,
            take: None,
            select: Vec::new(),
            config: DfsConfig::default(),
            trace,
            search_memo: OnceCell::new(),
            topk_memo: OnceCell::new(),
            instance_memo: OnceCell::new(),
            exec_stats: Cell::new(None),
        })
    }

    /// Runs the streaming top-k executor directly: the best `k` results
    /// with scores, best-first, equal to the full ranked search truncated
    /// to `k`. Executor counters are recorded into
    /// [`executor_stats`](Self::executor_stats). This is the entry point
    /// the corpus engine's shard workers use for bounded fan-out.
    pub fn search_top_k(&self, query: &Query, k: usize) -> Vec<(SearchResult, ScoredResult)> {
        self.search_top_k_stats(query, k).0
    }

    /// [`search_top_k`](Self::search_top_k) plus this run's own counters
    /// (the workbench totals are updated either way). The serving
    /// runtime's shard workers use this to charge batch work to session
    /// budgets.
    pub(crate) fn search_top_k_stats(
        &self,
        query: &Query,
        k: usize,
    ) -> (Vec<(SearchResult, ScoredResult)>, ExecutorStats) {
        self.search_top_k_traced(query, k, None)
    }

    /// [`search_top_k_stats`](Self::search_top_k_stats) with an optional
    /// per-stage trace. Tracing only observes the run — the returned hits
    /// are byte-identical with the sink present or absent (pinned by
    /// `tests/obs.rs`), and with `None` no timestamps are taken.
    pub(crate) fn search_top_k_traced(
        &self,
        query: &Query,
        k: usize,
        trace: Option<&TraceSink>,
    ) -> (Vec<(SearchResult, ScoredResult)>, ExecutorStats) {
        let top = self.engine.search_top_k_traced(query, k, ResultSemantics::Slca, trace);
        self.exec.record(top.stats);
        (top.hits, top.stats)
    }

    /// Runs a whole batch of top-k searches through one per-batch
    /// plan-fragment table: queries sharing terms resolve each shared
    /// posting list once (`ExecutorStats::postings_shared` counts the
    /// reuse). Hits and the legacy counters are byte-identical to calling
    /// [`search_top_k_stats`](Self::search_top_k_stats) per query — the
    /// table only memoises index resolutions. Each query's stats are
    /// recorded into the workbench totals, exactly like the independent
    /// path.
    pub(crate) fn search_top_k_batch(
        &self,
        queries: &[(Query, usize)],
    ) -> Vec<(Vec<(SearchResult, ScoredResult)>, ExecutorStats)> {
        let mut fragments = xsact_index::PlanFragments::new();
        queries
            .iter()
            .map(|(query, k)| {
                let top = self.engine.search_top_k_shared(
                    query,
                    *k,
                    ResultSemantics::Slca,
                    &mut fragments,
                );
                self.exec.record(top.stats);
                (top.hits, top.stats)
            })
            .collect()
    }

    /// Runs the full (unbounded) search under `semantics`, recording
    /// executor counters.
    fn search_all_stats(
        &self,
        query: &Query,
        semantics: ResultSemantics,
        trace: Option<&TraceSink>,
    ) -> (Vec<SearchResult>, ExecutorStats) {
        let (results, stats) = self.engine.search_with_stats_traced(query, semantics, trace);
        self.exec.record(stats);
        (results, stats)
    }

    /// The underlying search engine, for callers that need layer-level
    /// access (index statistics, raw SLCA runs, …).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// The underlying document.
    pub fn document(&self) -> &Document {
        self.engine.document()
    }

    /// Heap-footprint statistics of the document's interned substrate
    /// (symbol interner, flat Dewey arena, node table) next to an estimate
    /// of the pre-interning layout — what the bench smoke prints per PR.
    pub fn substrate_stats(&self) -> xsact_xml::SubstrateStats {
        self.engine.document().substrate_stats()
    }

    /// Heap-footprint statistics of the inverted index: term count, total
    /// postings, and the delta-bit-packed resident bytes next to what the
    /// flat `u32` arena would cost.
    pub fn index_stats(&self) -> xsact_index::IndexStats {
        self.engine.index().stats()
    }

    /// The features of one search result, served from the per-root cache.
    pub fn features_for(&self, result: &SearchResult) -> ResultFeatures {
        self.subtree_features(result.root, result.label.clone())
    }

    /// The features of an arbitrary subtree under `label`, served from the
    /// cache. This is the entry point for scenarios that re-root results
    /// above the engine's master entity (e.g. comparing *brands* while the
    /// engine returns *products*).
    pub fn subtree_features(&self, root: NodeId, label: impl Into<String>) -> ResultFeatures {
        self.features.get_or_extract((root, label.into()), |key| {
            xsact_entity::extract_features(
                self.engine.document(),
                self.engine.summary(),
                key.0,
                key.1.clone(),
            )
        })
    }

    /// The result subtree serialised as XML (the demo's "click the name to
    /// see the entire result").
    pub fn result_xml(&self, result: &SearchResult) -> String {
        self.engine.result_xml(result)
    }

    /// Hit/miss counters of the feature cache, aggregated over all lock
    /// shards. Under concurrency the two counters are read one shard at a
    /// time, so a snapshot taken *while* other threads are querying may mix
    /// counter values from slightly different instants — but every lookup
    /// is counted exactly once, so once the other threads are done (or at
    /// any quiescent point) `lookups()` equals the precise number of
    /// feature lookups since the last [`clear_cache`](Self::clear_cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.features.stats()
    }

    /// Cumulative executor counters of every search this workbench has
    /// run through the facade (pipeline terminals, bounded `take(k)`
    /// runs, corpus fan-out), aggregated with the same exactly-once
    /// guarantee as [`cache_stats`](Self::cache_stats). Counters survive
    /// [`clear_cache`](Self::clear_cache) — they describe executor work,
    /// not cache contents.
    pub fn executor_stats(&self) -> ExecutorStats {
        self.exec.totals()
    }

    /// How many searches the executor counters aggregate over.
    pub fn searches_executed(&self) -> u64 {
        self.exec.searches.load(Ordering::Relaxed)
    }

    /// Number of results whose features are currently cached.
    pub fn cached_results(&self) -> usize {
        self.features.len()
    }

    /// Drops all cached features **and** resets the hit/miss counters to
    /// zero, so [`cache_stats`](Self::cache_stats) after a clear reports
    /// the warm-rate of the fresh cache only — a clear is a full reset to
    /// the just-built state, not merely an eviction.
    pub fn clear_cache(&self) {
        self.features.clear();
    }
}

/// A fluent, configured query over a [`Workbench`].
///
/// Builder methods refine *what* is searched ([`semantics`](Self::semantics),
/// [`ranked`](Self::ranked)), *which* results enter the comparison
/// ([`take`](Self::take), [`select`](Self::select)) and *how* DFSs are
/// generated ([`size_bound`](Self::size_bound),
/// [`threshold`](Self::threshold)); terminal methods
/// ([`results`](Self::results), [`features`](Self::features),
/// [`compare`](Self::compare)) execute it.
#[derive(Debug, Clone)]
pub struct QueryPipeline<'a> {
    wb: &'a Workbench,
    query: Query,
    semantics: ResultSemantics,
    ranked: bool,
    take: Option<usize>,
    select: Vec<usize>,
    config: DfsConfig,
    /// Where stage spans go, when the caller asked for a trace
    /// ([`traced`](Self::traced)); `None` means no timestamps are taken.
    /// Purely observational — never consulted for memo resets because it
    /// cannot change what any terminal returns.
    trace: Option<&'a TraceSink>,
    /// The search result list, computed once per pipeline configuration —
    /// the terminals (`results` → `selection` → `features` → `compare`)
    /// chain into each other, and without the memo each level would re-run
    /// the same SLCA search. Builder methods that change what the search
    /// returns reset it.
    search_memo: OnceCell<Vec<SearchResult>>,
    /// The *bounded* ranked prefix (streaming top-k executor), memoized
    /// per `take(k)` configuration. In ranked mode a `take(k)` selection
    /// is served from here — only `k` results are scored, labelled and
    /// kept — unless the full list was already materialised, in which
    /// case truncating it is free. Reset by every builder method that
    /// changes the search or the bound.
    topk_memo: OnceCell<Vec<(SearchResult, ScoredResult)>>,
    /// The preprocessed comparison instance (interning + differentiability
    /// bit matrix) over the selected result features, built once per
    /// pipeline configuration so comparing the same result set with
    /// several algorithms pays preprocessing once. Reset by every builder
    /// method that changes the selection or the DFS config.
    instance_memo: OnceCell<Instance>,
    /// Executor counters summed over the searches this pipeline has run
    /// (`None` until a terminal executes one).
    exec_stats: Cell<Option<ExecutorStats>>,
}

impl<'a> QueryPipeline<'a> {
    /// Chooses the LCA semantics (SLCA by default).
    #[must_use]
    pub fn semantics(mut self, semantics: ResultSemantics) -> Self {
        self.semantics = semantics;
        self.search_memo = OnceCell::new();
        self.topk_memo = OnceCell::new();
        self.instance_memo = OnceCell::new();
        self
    }

    /// Orders results by TF-IDF relevance instead of document order.
    ///
    /// Ranking is defined over SLCA results only (the engine's
    /// `search_ranked`), so this overrides a previously chosen
    /// [`semantics`](Self::semantics).
    #[must_use]
    pub fn ranked(mut self, ranked: bool) -> Self {
        self.ranked = ranked;
        self.search_memo = OnceCell::new();
        self.topk_memo = OnceCell::new();
        self.instance_memo = OnceCell::new();
        self
    }

    /// Compares only the first `n` results (after ranking, if enabled).
    ///
    /// In [`ranked`](Self::ranked) mode the bound is **pushed down into
    /// the executor**: a `take(k)` selection runs the streaming top-k
    /// search — only `k` results are scored and materialised — instead of
    /// ranking the full result list and truncating it. The outcome is
    /// identical either way (the ranking order is total; pinned by
    /// `tests/properties.rs`).
    #[must_use]
    pub fn take(mut self, n: usize) -> Self {
        self.take = Some(n);
        self.topk_memo = OnceCell::new();
        self.instance_memo = OnceCell::new();
        self
    }

    /// Compares exactly the given 1-based result positions — the ticked
    /// checkboxes of the demo's result page. Takes precedence over
    /// [`take`](Self::take); an out-of-range position surfaces as
    /// [`XsactError::InvalidSelection`] at execution time.
    #[must_use]
    pub fn select(mut self, positions: impl IntoIterator<Item = usize>) -> Self {
        self.select = positions.into_iter().collect();
        self.topk_memo = OnceCell::new();
        self.instance_memo = OnceCell::new();
        self
    }

    /// Sets the comparison-table size bound `L` (features per DFS).
    #[must_use]
    pub fn size_bound(mut self, bound: usize) -> Self {
        self.config.size_bound = bound;
        self.instance_memo = OnceCell::new();
        self
    }

    /// Sets the differentiability threshold `x` in percent.
    #[must_use]
    pub fn threshold(mut self, pct: f64) -> Self {
        self.config.threshold_pct = pct;
        self.instance_memo = OnceCell::new();
        self
    }

    /// Records per-stage spans (`parse` → `plan` → `slca-stream` → `rank`)
    /// into `sink` when the pipeline's searches execute. Tracing is purely
    /// observational: results are byte-identical with or without it, and
    /// stages already served from a memo record no spans (nothing ran).
    #[must_use]
    pub fn traced(mut self, sink: &'a TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// The query text, as parsed.
    pub fn query_text(&self) -> String {
        self.query.to_string()
    }

    /// Runs the search and returns all results in pipeline order (document
    /// order, or best-first when [`ranked`](Self::ranked) is enabled). An
    /// empty list is a valid outcome here; the comparison terminals turn it
    /// into [`XsactError::NoResults`].
    pub fn results(&self) -> Vec<SearchResult> {
        self.raw_results().to_vec()
    }

    fn raw_results(&self) -> &[SearchResult] {
        self.search_memo.get_or_init(|| {
            if self.ranked {
                let (hits, stats) =
                    self.wb.search_top_k_traced(&self.query, usize::MAX, self.trace);
                self.note_stats(stats);
                hits.into_iter().map(|(r, _)| r).collect()
            } else {
                let (results, stats) =
                    self.wb.search_all_stats(&self.query, self.semantics, self.trace);
                self.note_stats(stats);
                results
            }
        })
    }

    /// Runs the search and returns results with their relevance scores,
    /// best first. When the pipeline is in [`ranked`](Self::ranked) mode
    /// this also seeds the search memo, so a following terminal
    /// (`selection`/`features`/`compare`) does not search again.
    ///
    /// This is always the *full* ranking; with a [`take(k)`](Self::take)
    /// bound set, each call re-runs the unbounded search (the top-k memo
    /// holds only `k` entries and cannot serve it) — prefer
    /// [`top_results`](Self::top_results) on a bounded pipeline.
    pub fn ranked_results(&self) -> Vec<(SearchResult, ScoredResult)> {
        let ranked = if self.take.is_none() {
            // Without a bound the top-k memo holds (or will hold) the full
            // ranking — share it, so pairing this with
            // [`top_results`](Self::top_results) searches once, not twice.
            self.bounded_hits().to_vec()
        } else {
            let (ranked, stats) = self.wb.search_top_k_traced(&self.query, usize::MAX, self.trace);
            self.note_stats(stats);
            ranked
        };
        if self.ranked {
            let _ = self.search_memo.set(ranked.iter().map(|(r, _)| r.clone()).collect());
        }
        ranked
    }

    /// The ranked top of the result list with scores, served by the
    /// **bounded** streaming executor: with [`take(k)`](Self::take) set,
    /// only `k` results are scored, labelled and kept — the full ranking
    /// is never materialised. Without a bound this equals
    /// [`ranked_results`](Self::ranked_results). Always ranks (like
    /// `ranked_results`), whatever the pipeline's
    /// [`ranked`](Self::ranked) flag says.
    pub fn top_results(&self) -> Vec<(SearchResult, ScoredResult)> {
        self.bounded_hits().to_vec()
    }

    fn bounded_hits(&self) -> &[(SearchResult, ScoredResult)] {
        self.topk_memo.get_or_init(|| {
            let k = self.take.unwrap_or(usize::MAX);
            let (hits, stats) = self.wb.search_top_k_traced(&self.query, k, self.trace);
            self.note_stats(stats);
            hits
        })
    }

    fn note_stats(&self, stats: ExecutorStats) {
        self.exec_stats.set(Some(self.exec_stats.get().unwrap_or_default() + stats));
    }

    /// Executor counters summed over the searches this pipeline has run
    /// so far (`None` before the first terminal). The CLI's `--explain`
    /// flag prints this.
    pub fn executor_stats(&self) -> Option<ExecutorStats> {
        self.exec_stats.get()
    }

    /// The results that enter the comparison after applying
    /// [`select`](Self::select) / [`take`](Self::take).
    pub fn selection(&self) -> XsactResult<Vec<SearchResult>> {
        if self.select.is_empty() {
            if let (Some(_), true, None) = (self.take, self.ranked, self.search_memo.get()) {
                // Ranked take(k) with no full list materialised yet: push
                // the bound down into the streaming executor instead of
                // ranking everything and truncating.
                return Ok(self.bounded_hits().iter().map(|(r, _)| r.clone()).collect());
            }
        }
        let results = self.raw_results();
        if !self.select.is_empty() {
            return self
                .select
                .iter()
                .map(|&i| {
                    i.checked_sub(1)
                        .and_then(|i| results.get(i))
                        .cloned()
                        .ok_or(XsactError::InvalidSelection { index: i, available: results.len() })
                })
                .collect();
        }
        let cap = self.take.unwrap_or(results.len());
        Ok(results.iter().take(cap).cloned().collect())
    }

    /// Extracts (or recalls from the workbench cache) the features of the
    /// selected results. Fails with [`XsactError::NoResults`] when the
    /// query matched nothing.
    pub fn features(&self) -> XsactResult<Vec<ResultFeatures>> {
        let selected = self.selection()?;
        if selected.is_empty() {
            return Err(XsactError::NoResults { query: self.query_text() });
        }
        Ok(selected.iter().map(|r| self.wb.features_for(r)).collect())
    }

    /// The preprocessed comparison instance over the selected results —
    /// interning plus the differentiability bit matrix — built once per
    /// pipeline configuration and shared by every
    /// [`compare`](Self::compare) call, so comparing the same result set
    /// with several algorithms pays preprocessing once.
    pub fn instance(&self) -> XsactResult<&Instance> {
        if let Some(inst) = self.instance_memo.get() {
            return Ok(inst);
        }
        self.validate_config()?;
        let features = self.features()?;
        if features.len() < 2 {
            return Err(XsactError::NotEnoughResults {
                query: self.query_text(),
                found: features.len(),
            });
        }
        let comparison = Comparison::new(&features)
            .size_bound(self.config.size_bound)
            .threshold(self.config.threshold_pct);
        let _ = self.instance_memo.set(comparison.instance());
        Ok(self.instance_memo.get().expect("just set"))
    }

    /// Generates Differentiation Feature Sets for the selected results with
    /// the chosen algorithm and returns the full [`ComparisonOutcome`]
    /// (DoD, table, per-result selections, timings). The preprocessed
    /// instance is memoized per pipeline (see [`instance`](Self::instance)),
    /// so only the first `compare` on a pipeline pays interning and the
    /// differentiability matrix.
    pub fn compare(&self, algorithm: Algorithm) -> XsactResult<ComparisonOutcome> {
        let instance = self.instance()?;
        match algorithm {
            Algorithm::Exhaustive { limit } => Comparison::run_exhaustive_on(instance, limit)
                .ok_or(XsactError::ExhaustiveLimitExceeded { limit }),
            _ => Ok(Comparison::run_on(instance, algorithm)),
        }
    }

    fn validate_config(&self) -> XsactResult<()> {
        if !self.config.threshold_pct.is_finite() || self.config.threshold_pct < 0.0 {
            return Err(XsactError::InvalidConfig(format!(
                "differentiability threshold must be a non-negative percentage, got {}",
                self.config.threshold_pct
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_data::fixtures;

    fn wb() -> Workbench {
        Workbench::from_document(fixtures::figure1_document())
    }

    #[test]
    fn workbench_is_send_and_sync() {
        // The corpus engine shares one workbench per document across its
        // fan-out threads; losing `Sync` here would break that at a
        // distance, so pin it down as a compile-time property.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Workbench>();
        assert_send_sync::<CacheStats>();
    }

    #[test]
    fn concurrent_lookups_lose_no_counter_updates() {
        let wb = wb();
        let results = wb.query(fixtures::PAPER_QUERY).unwrap().results();
        assert_eq!(results.len(), 2);
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 50;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        for r in &results {
                            wb.features_for(r);
                        }
                    }
                });
            }
        });
        let stats = wb.cache_stats();
        assert_eq!(stats.lookups(), THREADS * ROUNDS * 2, "lost counter updates");
        // Racing first lookups may extract the same root more than once,
        // but the cache still holds exactly one entry per key.
        assert_eq!(wb.cached_results(), 2);
        assert!(stats.misses >= 2);
        assert!(stats.hits <= stats.lookups() - 2);
    }

    #[test]
    fn clear_cache_resets_contents_and_counters() {
        let wb = wb();
        let pipeline = wb.query(fixtures::PAPER_QUERY).unwrap().size_bound(6);
        pipeline.compare(Algorithm::MultiSwap).unwrap();
        pipeline.compare(Algorithm::Snippet).unwrap();
        assert!(wb.cache_stats().lookups() > 0);
        wb.clear_cache();
        // A clear is a full reset: contents gone AND stats back to zero, so
        // warm-rate measurements after a clear start from a clean slate.
        assert_eq!(wb.cached_results(), 0);
        assert_eq!(wb.cache_stats(), CacheStats::default());
        // A *fresh* pipeline re-extracts; the old one still holds its
        // memoized instance and never touches the cache again.
        wb.query(fixtures::PAPER_QUERY)
            .unwrap()
            .size_bound(6)
            .compare(Algorithm::MultiSwap)
            .unwrap();
        assert_eq!(wb.cache_stats().misses, 2, "post-clear lookups re-extract");
        pipeline.compare(Algorithm::MultiSwap).unwrap();
        assert_eq!(wb.cache_stats().misses, 2, "memoized pipeline re-extracted");
    }

    #[test]
    fn from_xml_rejects_malformed_input() {
        let err = Workbench::from_xml("<open>").unwrap_err();
        assert!(matches!(err, XsactError::Xml(_)));
    }

    #[test]
    fn empty_query_is_typed() {
        let wb = wb();
        assert!(matches!(wb.query(""), Err(XsactError::EmptyQuery)));
        assert!(matches!(wb.query("!!! ???"), Err(XsactError::EmptyQuery)));
    }

    #[test]
    fn pipeline_reproduces_the_paper_numbers() {
        let wb = wb();
        let outcome = wb
            .query(fixtures::PAPER_QUERY)
            .unwrap()
            .size_bound(fixtures::TABLE_BOUND)
            .compare(Algorithm::MultiSwap)
            .unwrap();
        assert_eq!(outcome.dod(), 5);
    }

    #[test]
    fn cache_serves_repeated_queries() {
        let wb = wb();
        let pipeline = wb.query(fixtures::PAPER_QUERY).unwrap().size_bound(6);
        pipeline.compare(Algorithm::MultiSwap).unwrap();
        let after_first = wb.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 2);
        // Same pipeline, second algorithm: the memoized instance answers —
        // not even a cache lookup happens.
        pipeline.compare(Algorithm::Snippet).unwrap();
        let after_second = wb.cache_stats();
        assert_eq!(after_second.misses, 2, "no re-extraction");
        assert_eq!(after_second.hits, 0, "instance memo short-circuits the cache");
        // A fresh pipeline over the same query is served from the cache.
        wb.query(fixtures::PAPER_QUERY).unwrap().size_bound(6).compare(Algorithm::Snippet).unwrap();
        let after_third = wb.cache_stats();
        assert_eq!(after_third.misses, 2, "no re-extraction");
        assert_eq!(after_third.hits, 2);
        assert_eq!(wb.cached_results(), 2);
        wb.clear_cache();
        assert_eq!(wb.cache_stats(), CacheStats::default());
    }

    #[test]
    fn compare_reuses_one_instance_per_pipeline() {
        let wb = wb();
        let pipeline = wb.query(fixtures::PAPER_QUERY).unwrap().size_bound(6);
        // The memoized instance is the one every compare() runs on.
        let first = pipeline.instance().unwrap() as *const _;
        let again = pipeline.instance().unwrap() as *const _;
        assert_eq!(first, again, "instance rebuilt within one pipeline");
        let multi = pipeline.compare(Algorithm::MultiSwap).unwrap();
        let single = pipeline.compare(Algorithm::SingleSwap).unwrap();
        assert_eq!(multi.instance.type_count(), single.instance.type_count());
        assert!(multi.dod() >= single.dod());
        // Reconfiguring the DFS parameters resets the memo: the new bound
        // must be visible in the rebuilt instance.
        let rebound = pipeline.clone().size_bound(3);
        assert_eq!(rebound.instance().unwrap().config.size_bound, 3);
        let outcome = rebound.compare(Algorithm::MultiSwap).unwrap();
        assert!(outcome.dfs_size(0) <= 3);
    }

    #[test]
    fn cache_keys_include_the_label() {
        // The same root under two labels is two cache entries — alternating
        // labels must not thrash, and cached_results() tracks misses.
        let wb = wb();
        let root = wb.query(fixtures::PAPER_QUERY).unwrap().results()[0].root;
        let a1 = wb.subtree_features(root, "A");
        let b = wb.subtree_features(root, "B");
        let a2 = wb.subtree_features(root, "A");
        assert_eq!(a1, a2);
        assert_ne!(a1.label, b.label);
        let stats = wb.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(wb.cached_results() as u64, stats.misses);
    }

    #[test]
    fn selection_validates_positions() {
        let wb = wb();
        let err = wb.query(fixtures::PAPER_QUERY).unwrap().select([1, 9]).selection().unwrap_err();
        assert!(matches!(err, XsactError::InvalidSelection { index: 9, available: 2 }), "{err}");
        // Position 0 cannot underflow into a valid index.
        let err = wb.query(fixtures::PAPER_QUERY).unwrap().select([0]).selection().unwrap_err();
        assert!(matches!(err, XsactError::InvalidSelection { index: 0, .. }));
    }

    #[test]
    fn single_result_cannot_compare() {
        let wb = wb();
        let err = wb
            .query(fixtures::PAPER_QUERY)
            .unwrap()
            .take(1)
            .compare(Algorithm::MultiSwap)
            .unwrap_err();
        assert!(matches!(err, XsactError::NotEnoughResults { found: 1, .. }));
    }

    #[test]
    fn invalid_threshold_is_rejected() {
        let wb = wb();
        let err = wb
            .query(fixtures::PAPER_QUERY)
            .unwrap()
            .threshold(-3.0)
            .compare(Algorithm::MultiSwap)
            .unwrap_err();
        assert!(matches!(err, XsactError::InvalidConfig(_)));
    }

    #[test]
    fn exhaustive_limit_is_typed() {
        let wb = wb();
        let pipeline = wb.query(fixtures::PAPER_QUERY).unwrap().size_bound(6);
        let err = pipeline.compare(Algorithm::Exhaustive { limit: 1 }).unwrap_err();
        assert!(matches!(err, XsactError::ExhaustiveLimitExceeded { limit: 1 }));
        let ok = pipeline.compare(Algorithm::Exhaustive { limit: 5_000_000 }).unwrap();
        assert_eq!(ok.algorithm.name(), "exhaustive");
    }

    #[test]
    fn toggling_ranked_after_a_search_resets_the_memo() {
        // The second product mentions the term far more often, so ranking
        // reverses document order — a stale memoized search would be
        // observable as the wrong first result.
        let wb = Workbench::from_xml(
            "<shop>\
               <product><name>Alpha</name><kind>gps</kind></product>\
               <product><name>Beta</name><kind>gps</kind>\
                 <reviews><review><pros><gps>gps gps gps</gps></pros></review></reviews>\
               </product>\
             </shop>",
        )
        .unwrap();
        let pipeline = wb.query("gps").unwrap();
        let plain_first = pipeline.results()[0].label.clone();
        assert_eq!(plain_first, "Alpha"); // document order
        let ranked_first = pipeline.clone().ranked(true).results()[0].label.clone();
        assert_eq!(ranked_first, "Beta", "memo not reset by ranked()");
        // The original pipeline still serves its memoized plain list.
        assert_eq!(pipeline.results()[0].label, plain_first);
    }

    #[test]
    fn index_round_trips_through_persistence() {
        let wb = wb();
        let mut bytes = Vec::new();
        wb.save_index(&mut bytes).unwrap();
        let restored =
            Workbench::from_persisted_index(fixtures::figure1_document(), &mut bytes.as_slice())
                .unwrap();
        let a = wb.query(fixtures::PAPER_QUERY).unwrap().results();
        let b = restored.query(fixtures::PAPER_QUERY).unwrap().results();
        assert_eq!(a, b);
        // A mismatched document is rejected as a typed I/O error.
        let other =
            xsact_xml::parse_document("<shop><product><name>x</name></product></shop>").unwrap();
        let err = Workbench::from_persisted_index(other, &mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, XsactError::Io(_)));
    }
}
