//! # XSACT — a comparison tool for structured search results
//!
//! Reproduction of *XSACT: A Comparison Tool for Structured Search Results*
//! (Liu et al., VLDB 2010) and its companion full paper *Structured Search
//! Result Differentiation* (PVLDB 2009).
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`xml`] — XML substrate: parser, DOM with Dewey IDs, writer.
//! * [`index`] — keyword search engine (XSeek-style): inverted index,
//!   SLCA/ELCA, result construction.
//! * [`entity`] — result processor: entity identification and feature
//!   extraction.
//! * [`core`] — the paper's contribution: Differentiation Feature Sets,
//!   the Degree-of-Differentiation objective, and the single-swap /
//!   multi-swap algorithms.
//! * [`data`] — dataset generators and the paper's worked example.
//!
//! ## Quickstart
//!
//! ```
//! use xsact::prelude::*;
//!
//! // 1. Load (or generate) an XML dataset and build a search engine.
//! let doc = xsact::data::fixtures::figure1_document();
//! let engine = SearchEngine::build(doc);
//!
//! // 2. Run a keyword query; each result is an entity subtree.
//! let results = engine.search(&Query::parse("TomTom GPS"));
//! assert!(results.len() >= 2);
//!
//! // 3. Extract features and generate Differentiation Feature Sets.
//! let features: Vec<_> = results
//!     .iter()
//!     .map(|r| engine.extract_features(r))
//!     .collect();
//! let outcome = Comparison::new(&features)
//!     .size_bound(6)
//!     .run(Algorithm::MultiSwap);
//!
//! // 4. Render the comparison table (paper Figure 2).
//! println!("{}", outcome.table());
//! ```

pub use xsact_core as core;
pub use xsact_data as data;
pub use xsact_entity as entity;
pub use xsact_index as index;
pub use xsact_xml as xml;

/// The most common imports in one place.
pub mod prelude {
    pub use xsact_core::{Algorithm, Comparison, ComparisonOutcome, DfsConfig};
    pub use xsact_entity::{extract_features, FeatureType, ResultFeatures, StructureSummary};
    pub use xsact_index::{Query, SearchEngine, SearchResult};
    pub use xsact_xml::{parse_document, Document};
}
