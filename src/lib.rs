//! # XSACT — a comparison tool for structured search results
//!
//! Reproduction of *XSACT: A Comparison Tool for Structured Search Results*
//! (Liu et al., VLDB 2010) and its companion full paper *Structured Search
//! Result Differentiation* (PVLDB 2009).
//!
//! The documented entry point is the [`Workbench`]: one session object per
//! document that owns the search engine, caches per-result features across
//! queries, and exposes the paper's whole pipeline (keyword search → entity
//! promotion → feature extraction → Differentiation Feature Set generation)
//! as a fluent, typed-error API. For many documents at once, the
//! [`Corpus`] pools one workbench per document behind a sharded,
//! deterministic parallel query engine (see [`corpus`]).
//!
//! ## Quickstart
//!
//! ```
//! use xsact::prelude::*;
//!
//! # fn main() -> Result<(), XsactError> {
//! // 1. Load (or generate) an XML dataset; one Workbench per document.
//! let wb = Workbench::from_document(xsact::data::fixtures::figure1_document());
//!
//! // 2. Run the paper's query and generate the comparison table in one
//! //    fluent pipeline. Every failure mode (empty query, no results, …)
//! //    is a typed `XsactError`.
//! let outcome = wb
//!     .query("TomTom GPS")?
//!     .semantics(ResultSemantics::Slca)
//!     .take(4)
//!     .size_bound(7)
//!     .threshold(10.0)
//!     .compare(Algorithm::MultiSwap)?;
//!
//! // 3. Render the comparison table (paper Figure 2) and inspect the DoD.
//! println!("{}", outcome.table());
//! assert_eq!(outcome.dod(), 5); // the paper's headline number
//!
//! // 4. Repeated queries reuse the cached features — no re-extraction.
//! wb.query("TomTom GPS")?.size_bound(6).compare(Algorithm::Snippet)?;
//! assert_eq!(wb.cache_stats().misses, 2); // still only the first pass
//! assert!(wb.cache_stats().hits >= 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Layers
//!
//! The workbench orchestrates the workspace layers, which remain
//! independently usable (a design decision recorded in `ROADMAP.md`):
//!
//! * [`xml`] — XML substrate: parser, DOM with Dewey IDs, writer.
//! * [`index`] — keyword search engine (XSeek-style): inverted index,
//!   SLCA/ELCA, result construction, ranking, persistence.
//! * [`entity`] — result processor: entity identification and feature
//!   extraction.
//! * [`core`] — the paper's contribution: Differentiation Feature Sets,
//!   the Degree-of-Differentiation objective, and the single-swap /
//!   multi-swap algorithms (plus the [`Algorithm::Exhaustive`] oracle).
//! * [`data`] — dataset generators and the paper's worked example.
//!
//! The sharded corpus engine adds one more pair: the dependency-free
//! mechanics crate `xsact-corpus` (shard planning, scoped-thread fan-out,
//! k-way merge) and the [`corpus`] facade module that composes it with
//! workbenches. The serving runtime repeats the pattern: the mechanics
//! crate `xsact-serve` (bounded submission queue, batch coalescing,
//! server counters, line protocol) composes with a persistent shard pool
//! in the [`serve`] facade module — a long-lived [`CorpusServer`] whose
//! batching and pooling never change result bytes.

pub mod corpus;
pub mod error;
pub mod serve;
pub mod workbench;

pub use corpus::{save_index_atomic, Corpus, CorpusHit, CorpusOutcome, CorpusQuery, CorpusRanking};
pub use error::{XsactError, XsactResult};
pub use serve::{CorpusServer, QueryAnswer, ServeConfig, ServeSession};
pub use workbench::{CacheStats, QueryPipeline, Workbench};

pub use xsact_core as core;
pub use xsact_data as data;
pub use xsact_entity as entity;
pub use xsact_index as index;
pub use xsact_obs as obs;
pub use xsact_xml as xml;

pub use xsact_core::Algorithm;
pub use xsact_index::ExecutorStats;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::corpus::{Corpus, CorpusHit, CorpusOutcome, CorpusQuery, CorpusRanking, DocId};
    pub use crate::error::{XsactError, XsactResult};
    pub use crate::serve::{CorpusServer, QueryAnswer, ServeConfig, ServeSession};
    pub use crate::workbench::{CacheStats, QueryPipeline, Workbench};
    pub use xsact_core::{Algorithm, Comparison, ComparisonOutcome, DfsConfig};
    pub use xsact_entity::{extract_features, FeatureType, ResultFeatures, StructureSummary};
    pub use xsact_index::{ExecutorStats, Query, ResultSemantics, SearchEngine, SearchResult};
    pub use xsact_obs::{MetricsRegistry, QueryTrace, TraceSink};
    pub use xsact_xml::{parse_document, Document};
}
