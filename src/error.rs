//! The crate-wide error type of the XSACT pipeline.
//!
//! Every layer keeps its own error vocabulary (`xsact_xml::XmlError`,
//! `std::io::Error` from index persistence, …); this module folds them into
//! one [`XsactError`] enum so that consumers of the [`crate::Workbench`]
//! facade handle a single type with `?` instead of stringly-typed
//! `Result<_, String>` plumbing.

use std::fmt;
use xsact_xml::XmlError;

/// Result alias for facade operations.
pub type XsactResult<T> = Result<T, XsactError>;

/// Everything that can go wrong in the XSACT pipeline, from XML parsing to
/// DFS generation.
#[derive(Debug)]
pub enum XsactError {
    /// The input document is not well-formed XML.
    Xml(XmlError),
    /// The query contained no indexable search terms (empty string,
    /// punctuation only, …).
    EmptyQuery,
    /// A corpus operation ran over a corpus holding no documents (empty
    /// ingestion list, or a directory without `.xml` files).
    EmptyCorpus,
    /// The query was well-formed but matched nothing in the document.
    NoResults {
        /// The offending query text.
        query: String,
    },
    /// The query matched, but fewer than the two results a comparison
    /// needs.
    NotEnoughResults {
        /// The query text.
        query: String,
        /// How many results the query produced.
        found: usize,
    },
    /// A 1-based result selection pointed past the end of the result list.
    InvalidSelection {
        /// The out-of-range 1-based position.
        index: usize,
        /// Number of results actually available.
        available: usize,
    },
    /// A pipeline parameter is outside its meaningful domain (e.g. a
    /// negative differentiability threshold).
    InvalidConfig(String),
    /// An [`xsact_core::Algorithm::Exhaustive`] run would have enumerated
    /// more DFS combinations than its limit allows.
    ExhaustiveLimitExceeded {
        /// The configured combination limit.
        limit: u64,
    },
    /// Index persistence (save/load) failed — I/O proper, or a fingerprint
    /// mismatch between the index and the document.
    Io(std::io::Error),
    /// The serving runtime turned the submission away at the door: its
    /// bounded queue was full (or the server was shutting down). The
    /// caller should back off and retry; nothing was executed.
    Overloaded {
        /// Queue depth the submission collided with.
        depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// A serving session spent its executor-work budget; further queries
    /// on the session are refused before reaching the queue.
    BudgetExceeded {
        /// Posting entries the session's queries have scanned so far.
        spent: u64,
        /// The session's budget in posting entries.
        budget: u64,
    },
    /// The query's deadline (queue wait + execute) elapsed before an
    /// answer could be produced. Checked at dispatch (the query never
    /// executed) and again after batch execute (the answer arrived too
    /// late to matter); either way the caller should treat the result as
    /// unknown and retry with a fresh deadline.
    DeadlineExceeded {
        /// Milliseconds that had elapsed when the deadline check fired.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// A shard worker panicked while executing the batch this query rode
    /// in. The worker has been respawned from a fresh state factory, so a
    /// retry runs on a healthy pool and is byte-identical to a fault-free
    /// run; no other batch was affected.
    ShardFailed {
        /// The shard whose worker panicked.
        shard: usize,
        /// The panic payload's message.
        detail: String,
    },
}

impl fmt::Display for XsactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsactError::Xml(e) => write!(f, "malformed XML: {e}"),
            XsactError::EmptyQuery => {
                write!(f, "the query contains no search terms")
            }
            XsactError::EmptyCorpus => {
                write!(f, "the corpus contains no documents")
            }
            XsactError::NoResults { query } => {
                write!(f, "query {query:?} matched no results")
            }
            XsactError::NotEnoughResults { query, found } => write!(
                f,
                "query {query:?} matched {found} result{}; a comparison needs at least two",
                if *found == 1 { "" } else { "s" }
            ),
            XsactError::InvalidSelection { index, available } => {
                write!(f, "selection {index} is out of range (1..={available})")
            }
            XsactError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            XsactError::ExhaustiveLimitExceeded { limit } => write!(
                f,
                "exhaustive search would enumerate more than {limit} DFS combinations; \
                 raise the limit or use a local-search algorithm"
            ),
            XsactError::Io(e) => write!(f, "index persistence failed: {e}"),
            XsactError::Overloaded { depth, capacity } => write!(
                f,
                "server overloaded: submission queue holds {depth} of {capacity} entries; \
                 back off and retry"
            ),
            XsactError::BudgetExceeded { spent, budget } => write!(
                f,
                "session budget exceeded: {spent} posting entries scanned of {budget} budgeted"
            ),
            XsactError::DeadlineExceeded { elapsed_ms, deadline_ms } => write!(
                f,
                "deadline exceeded: {elapsed_ms}ms elapsed of the {deadline_ms}ms allowed; \
                 retry with a fresh deadline"
            ),
            XsactError::ShardFailed { shard, detail } => write!(
                f,
                "shard {shard} failed while executing this batch ({detail}); \
                 the worker was restarted — retry"
            ),
        }
    }
}

impl std::error::Error for XsactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XsactError::Xml(e) => Some(e),
            XsactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for XsactError {
    fn from(e: XmlError) -> Self {
        XsactError::Xml(e)
    }
}

impl From<std::io::Error> for XsactError {
    fn from(e: std::io::Error) -> Self {
        XsactError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_human_readable() {
        let e = XsactError::NoResults { query: "zeppelin".into() };
        assert!(e.to_string().contains("zeppelin"));
        let e = XsactError::InvalidSelection { index: 9, available: 2 };
        assert!(e.to_string().contains("out of range"));
        assert!(e.to_string().contains("1..=2"));
        let e = XsactError::NotEnoughResults { query: "q".into(), found: 1 };
        assert!(e.to_string().contains("1 result;"));
        let e = XsactError::ExhaustiveLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = XsactError::Overloaded { depth: 64, capacity: 64 };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("64"));
        let e = XsactError::BudgetExceeded { spent: 120, budget: 100 };
        assert!(e.to_string().contains("120"));
        assert!(e.to_string().contains("100"));
        let e = XsactError::DeadlineExceeded { elapsed_ms: 75, deadline_ms: 50 };
        assert!(e.to_string().contains("75ms"));
        assert!(e.to_string().contains("50ms"));
        assert!(e.to_string().contains("retry"));
        let e = XsactError::ShardFailed { shard: 1, detail: "injected fault".into() };
        assert!(e.to_string().contains("shard 1"));
        assert!(e.to_string().contains("injected fault"));
        assert!(e.to_string().contains("restarted"));
    }

    #[test]
    fn xml_errors_convert_and_chain() {
        let xml = XmlError::EmptyDocument;
        let e: XsactError = xml.clone().into();
        assert!(matches!(&e, XsactError::Xml(inner) if *inner == xml));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no root element"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let e: XsactError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("short read"));
    }
}
