//! Deterministic k-way merge of per-shard ranked lists.
//!
//! The merged order must be a pure function of the items and the
//! comparator — never of the shard count or the thread interleaving that
//! produced the lists — otherwise the same corpus queried with `shards =
//! 1` and `shards = 8` would return different rankings. Callers therefore
//! provide a *total* order (for XSACT: score descending, then document id,
//! then Dewey id); when the comparator still reports two heads equal, the
//! lower list index wins, so even a sloppy comparator cannot introduce
//! nondeterminism.

use std::cmp::Ordering;

/// Merges pre-sorted `lists` into one list ordered by `cmp`
/// (`Ordering::Less` means "ranks earlier").
///
/// With `k` lists this scans the `k` current heads per emitted item —
/// `O(n·k)` overall. Shard counts are bounded by the machine's cores (a
/// dozen, not thousands), where the head scan beats a binary heap's
/// allocation and bookkeeping; if shard counts ever grow past that, swap
/// the scan for a heap without changing the contract.
///
/// Each input list must already be sorted by `cmp` (debug-asserted); the
/// per-shard search produces exactly that.
pub fn k_way_merge<T>(lists: Vec<Vec<T>>, cmp: impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    debug_assert!(lists
        .iter()
        .all(|l| l.windows(2).all(|w| cmp(&w[0], &w[1]) != Ordering::Greater)));
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = lists.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();
    let mut merged = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(item) = head else { continue };
            // Strictly-less to advance: on ties the earlier list keeps the
            // slot, making the merge stable across comparator ties.
            best = match best {
                Some(b)
                    if cmp(item, heads[b].as_ref().expect("best is live")) != Ordering::Less =>
                {
                    Some(b)
                }
                _ => Some(i),
            };
        }
        let Some(b) = best else { break };
        let item = heads[b].take().expect("best is live");
        heads[b] = iters[b].next();
        merged.push(item);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_sorted_lists() {
        let merged = k_way_merge(vec![vec![1, 4, 7], vec![2, 5], vec![3, 6, 8]], i32::cmp);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn empty_inputs() {
        assert!(k_way_merge(Vec::<Vec<i32>>::new(), i32::cmp).is_empty());
        let merged = k_way_merge(vec![vec![], vec![9], vec![]], i32::cmp);
        assert_eq!(merged, vec![9]);
    }

    #[test]
    fn ties_resolve_to_the_earlier_list() {
        // Items carry their origin; comparator only sees the key.
        let merged = k_way_merge(
            vec![vec![(1, "a"), (2, "a")], vec![(1, "b")], vec![(1, "c"), (3, "c")]],
            |x, y| x.0.cmp(&y.0),
        );
        assert_eq!(merged, vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (3, "c")]);
    }

    #[test]
    fn merge_is_shard_count_independent() {
        // The same 12 items split into 1, 2, 3 and 4 round-robin lists
        // merge to the same output.
        let items: Vec<i32> = vec![5, 3, 9, 1, 12, 7, 2, 8, 11, 4, 10, 6];
        let mut expected = items.clone();
        expected.sort();
        for shards in 1..=4 {
            let mut lists = vec![Vec::new(); shards];
            for (i, &x) in items.iter().enumerate() {
                lists[i % shards].push(x);
            }
            for list in &mut lists {
                list.sort();
            }
            assert_eq!(k_way_merge(lists, i32::cmp), expected, "{shards} shards");
        }
    }

    #[test]
    fn descending_comparators_work() {
        let merged = k_way_merge(vec![vec![9, 4, 1], vec![8, 5]], |a, b| b.cmp(a));
        assert_eq!(merged, vec![9, 8, 5, 4, 1]);
    }
}
