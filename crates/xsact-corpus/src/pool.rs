//! Shard-parallel execution: scoped fan-out and the persistent pool.
//!
//! The build environment is offline — no rayon, no tokio — so both shapes
//! are built on std threads only:
//!
//! * [`fan_out`] spawns **scoped** threads per query: one OS thread per
//!   non-empty shard, borrowing the caller's data for the duration of the
//!   query. Right for one-shot queries — the scope guarantees every
//!   result is back before the merge starts.
//! * [`ShardPool`] keeps **long-lived** workers pinned to shard indexes
//!   and broadcasts each request to all of them. Right for a serving
//!   runtime, where paying thread spawn/teardown per query would dominate
//!   sub-millisecond searches and defeat batching.
//!
//! Both produce outputs in shard order regardless of completion order, so
//! swapping one for the other can never change result bytes.

/// Runs `work` on every element of `inputs` concurrently — one scoped
/// thread per element — and returns the outputs *in input order*,
/// regardless of which thread finished first.
///
/// Empty inputs produce no thread at all; a single input runs on the
/// calling thread, so `shards = 1` has zero threading overhead and is the
/// exact sequential baseline the scaling bench compares against.
///
/// Panics in `work` propagate to the caller (the scope re-raises them), so
/// a poisoned shard can never silently drop its slice of the corpus from
/// the merged ranking.
pub fn fan_out<T, R, F>(inputs: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut inputs = inputs;
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![work(0, inputs.pop().expect("len checked"))],
        _ => std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| {
                    scope.spawn({
                        let work = &work;
                        move || work(i, input)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        }),
    }
}

use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One unit of pool work: the shared request plus the channel the worker
/// answers on. The shard index is implicit — each worker knows its own.
type Job<Req, Resp> = (Arc<Req>, mpsc::Sender<(usize, Result<Resp, ShardPanic>)>);

/// A typed record of a shard worker panicking mid-request — what
/// [`ShardPool::broadcast`] returns for the affected shard instead of
/// re-raising on the calling thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// The shard whose worker panicked.
    pub shard: usize,
    /// The panic payload's message (when it was a string).
    pub detail: String,
}

/// Renders a panic payload's message, the way the default hook does.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One supervised worker: its job channel plus the join handle the pool
/// reaps when the worker dies or the pool drops.
struct Worker<Req, Resp> {
    sender: mpsc::Sender<Job<Req, Resp>>,
    handle: JoinHandle<()>,
}

/// A pool of long-lived worker threads, one pinned to each shard index,
/// answering broadcast requests until dropped.
///
/// Where [`fan_out`] pays a thread spawn per shard per query, the pool
/// pays it once at construction: [`ShardPool::broadcast`] hands the shared
/// request to every worker over a channel and collects one response per
/// shard, returned **in shard order** regardless of completion order —
/// the same ordering contract as `fan_out`, so the two are byte-for-byte
/// interchangeable above the merge.
///
/// ## Supervision
///
/// Workers run each request under `catch_unwind`. A panic becomes a typed
/// [`ShardPanic`] response for the affected broadcast — it can never
/// silently vanish from a merged ranking, and it never takes the calling
/// thread (the dispatcher) down with it. The poisoned worker exits and the
/// pool **respawns** it from the retained work closure (the state factory)
/// before `broadcast` returns, so the next request runs on a fresh worker
/// and produces bytes identical to a fault-free run. Restarts are counted
/// ([`ShardPool::restarts`]) for the serving metrics.
pub struct ShardPool<Req, Resp> {
    workers: Vec<Worker<Req, Resp>>,
    /// The state factory: respawning shard `i` is spawning a fresh thread
    /// over this same closure — all per-request state lives below it.
    work: ShardWork<Req, Resp>,
    restarts: u64,
}

/// The shared per-shard work closure; the pool retains it so a panicked
/// worker can be respawned from the same state factory.
type ShardWork<Req, Resp> = Arc<dyn Fn(usize, &Req) -> Resp + Send + Sync>;

impl<Req, Resp> ShardPool<Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + 'static,
{
    /// Spawns `shards` workers (at least one), each running
    /// `work(shard_index, &request)` for every broadcast request.
    pub fn new<F>(shards: usize, work: F) -> ShardPool<Req, Resp>
    where
        F: Fn(usize, &Req) -> Resp + Send + Sync + 'static,
    {
        assert!(shards > 0, "a shard pool needs at least one worker");
        let work: ShardWork<Req, Resp> = Arc::new(work);
        let workers = (0..shards).map(|shard| spawn_worker(shard, Arc::clone(&work))).collect();
        ShardPool { workers, work, restarts: 0 }
    }

    /// Number of pinned workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// How many workers have been respawned after a panic over the pool's
    /// lifetime.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Runs `req` on every worker and returns one outcome per shard, in
    /// shard order: `Ok(response)`, or a typed [`ShardPanic`] for any
    /// worker that panicked. Panicked workers are respawned before this
    /// returns, so the next broadcast runs on a full pool.
    pub fn broadcast(&mut self, req: Req) -> Vec<Result<Resp, ShardPanic>> {
        let req = Arc::new(req);
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, Result<Resp, ShardPanic>)>();
        for worker in &self.workers {
            // A send can only fail if the worker died outside a request
            // (exceptional); the missing reply is synthesised below.
            let _ = worker.sender.send((Arc::clone(&req), reply_tx.clone()));
        }
        drop(reply_tx);
        let mut slots: Vec<Option<Result<Resp, ShardPanic>>> =
            (0..self.workers.len()).map(|_| None).collect();
        while let Ok((shard, outcome)) = reply_rx.recv() {
            debug_assert!(slots[shard].is_none(), "duplicate response from shard {shard}");
            slots[shard] = Some(outcome);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(shard, outcome)| {
                let outcome = outcome.unwrap_or_else(|| {
                    // The worker died without even sending its typed
                    // failure — treat it exactly like a reported panic.
                    Err(ShardPanic { shard, detail: "worker died without replying".to_owned() })
                });
                if outcome.is_err() {
                    self.respawn(shard);
                }
                outcome
            })
            .collect()
    }

    /// Reaps shard `shard`'s dead worker and spawns a replacement from the
    /// state factory.
    fn respawn(&mut self, shard: usize) {
        let fresh = spawn_worker(shard, Arc::clone(&self.work));
        let dead = std::mem::replace(&mut self.workers[shard], fresh);
        drop(dead.sender);
        let _ = dead.handle.join(); // it panicked; the Err is expected
        self.restarts += 1;
    }
}

/// Spawns the supervised worker loop for one shard.
fn spawn_worker<Req, Resp>(shard: usize, work: ShardWork<Req, Resp>) -> Worker<Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Job<Req, Resp>>();
    let handle = std::thread::Builder::new()
        .name(format!("xsact-shard-{shard}"))
        .spawn(move || {
            // Ends when the pool drops its sender (or mid-broadcast if the
            // pool itself is gone; the reply send then fails harmlessly
            // into a dropped receiver).
            while let Ok((req, reply)) = rx.recv() {
                let outcome =
                    std::panic::catch_unwind(AssertUnwindSafe(|| work(shard, req.as_ref())));
                match outcome {
                    Ok(resp) => {
                        let _ = reply.send((shard, Ok(resp)));
                    }
                    Err(payload) => {
                        // Report the typed failure, then exit: the pool
                        // replaces this worker with a fresh one rather
                        // than trusting a post-panic closure invocation.
                        let detail = panic_detail(payload.as_ref());
                        let _ = reply.send((shard, Err(ShardPanic { shard, detail })));
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        })
        .expect("failed to spawn shard worker");
    Worker { sender: tx, handle }
}

impl<Req, Resp> Drop for ShardPool<Req, Resp> {
    fn drop(&mut self) {
        // Disconnect the job channels so every worker's `recv` ends, then
        // join. A worker that already panicked was reported (and replaced)
        // by `broadcast`; its join error here is ignored.
        for worker in self.workers.drain(..) {
            drop(worker.sender);
            let _ = worker.handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_keep_input_order() {
        // Make later inputs finish first to prove ordering is positional,
        // not completion-based.
        let inputs = vec![30u64, 20, 10, 0];
        let out = fan_out(inputs, |i, delay_ms| {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            (i, delay_ms)
        });
        assert_eq!(out, vec![(0, 30), (1, 20), (2, 10), (3, 0)]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(fan_out(none, |_, x: u32| x).is_empty());
        assert_eq!(fan_out(vec![5], |i, x: u32| x + i as u32), vec![5]);
    }

    #[test]
    fn single_input_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = fan_out(vec![()], |_, ()| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = fan_out((0..16).collect::<Vec<usize>>(), |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 16);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            fan_out(vec![1u32, 2], |_, x| if x == 2 { panic!("shard died") } else { x })
        });
        assert!(caught.is_err());
    }

    /// Unwraps every per-shard outcome of a fault-free broadcast.
    fn all_ok<Resp>(outcomes: Vec<Result<Resp, ShardPanic>>) -> Vec<Resp> {
        outcomes.into_iter().map(|o| o.expect("no shard panicked")).collect()
    }

    #[test]
    fn pool_broadcast_returns_shard_ordered_responses() {
        let mut pool: ShardPool<u32, (usize, u32)> = ShardPool::new(4, |shard, req| {
            // Later shards answer first to prove ordering is positional.
            std::thread::sleep(std::time::Duration::from_millis(30 - 10 * (shard as u64 % 4)));
            (shard, *req * 2)
        });
        assert_eq!(pool.shards(), 4);
        let out = all_ok(pool.broadcast(21));
        assert_eq!(out, vec![(0, 42), (1, 42), (2, 42), (3, 42)]);
    }

    #[test]
    fn pool_workers_persist_across_broadcasts() {
        use std::thread::ThreadId;
        let mut pool: ShardPool<(), ThreadId> =
            ShardPool::new(2, |_, ()| std::thread::current().id());
        let first = all_ok(pool.broadcast(()));
        let second = all_ok(pool.broadcast(()));
        assert_eq!(first, second, "each shard keeps its pinned thread");
        assert_ne!(first[0], first[1], "shards run on distinct threads");
        assert_eq!(pool.restarts(), 0);
    }

    #[test]
    fn pool_matches_fan_out_byte_for_byte() {
        let inputs: Vec<usize> = (0..6).collect();
        let scoped = fan_out(inputs, |i, x| format!("shard {i} item {x}"));
        let mut pool: ShardPool<Vec<usize>, Vec<String>> =
            ShardPool::new(6, |i, req: &Vec<usize>| vec![format!("shard {i} item {}", req[i])]);
        let pooled: Vec<String> =
            all_ok(pool.broadcast((0..6).collect())).into_iter().flatten().collect();
        assert_eq!(scoped, pooled);
    }

    #[test]
    fn pool_worker_panic_is_a_typed_outcome_not_a_crash() {
        let trip = Arc::new(AtomicUsize::new(0));
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, {
            let trip = Arc::clone(&trip);
            move |shard, req| {
                if shard == 1 && trip.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("shard died");
                }
                *req
            }
        });
        let outcomes = pool.broadcast(7);
        assert_eq!(outcomes[0], Ok(7), "healthy shards still answer");
        assert_eq!(outcomes[2], Ok(7));
        let panic = outcomes[1].as_ref().unwrap_err();
        assert_eq!(panic.shard, 1);
        assert_eq!(panic.detail, "shard died", "panic message survives in the typed outcome");
        assert_eq!(pool.restarts(), 1);
    }

    #[test]
    fn pool_recovers_byte_identical_after_a_panic() {
        let trip = Arc::new(AtomicUsize::new(0));
        let mut pool: ShardPool<u32, String> = ShardPool::new(2, {
            let trip = Arc::clone(&trip);
            move |shard, req| {
                if shard == 1 && trip.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected");
                }
                format!("shard {shard} saw {req}")
            }
        });
        let mut oracle: ShardPool<u32, String> =
            ShardPool::new(2, |shard, req| format!("shard {shard} saw {req}"));
        assert!(pool.broadcast(1)[1].is_err(), "first broadcast trips the fault");
        // Every broadcast after the respawn matches the fault-free pool.
        for req in [1u32, 2, 3] {
            assert_eq!(all_ok(pool.broadcast(req)), all_ok(oracle.broadcast(req)));
        }
        assert_eq!(pool.restarts(), 1, "one panic, one respawn");
    }

    #[test]
    fn pool_survives_repeated_panics_on_every_shard() {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, |_, req| {
            if *req == 0 {
                panic!("poisoned request");
            }
            *req
        });
        for round in 1..=3u32 {
            assert!(pool.broadcast(0).iter().all(Result::is_err), "every shard fails");
            assert_eq!(all_ok(pool.broadcast(round)), vec![round; 3], "then all recover");
            assert_eq!(pool.restarts(), u64::from(round) * 3);
        }
    }

    #[test]
    fn pool_drop_joins_workers_cleanly() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, {
            let done = Arc::clone(&done);
            move |_, req| {
                done.fetch_add(1, Ordering::Relaxed);
                *req
            }
        });
        pool.broadcast(1);
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
