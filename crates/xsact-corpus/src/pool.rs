//! Scoped-thread query fan-out.
//!
//! The build environment is offline — no rayon, no tokio — so the pool is
//! built on [`std::thread::scope`]: one OS thread per non-empty shard,
//! borrowing the caller's data for the duration of the query. That is the
//! right shape for this workload: shard counts are small (bounded by the
//! machine's cores), each worker runs one multi-document search, and the
//! scope guarantees every result is back before the merge starts.

/// Runs `work` on every element of `inputs` concurrently — one scoped
/// thread per element — and returns the outputs *in input order*,
/// regardless of which thread finished first.
///
/// Empty inputs produce no thread at all; a single input runs on the
/// calling thread, so `shards = 1` has zero threading overhead and is the
/// exact sequential baseline the scaling bench compares against.
///
/// Panics in `work` propagate to the caller (the scope re-raises them), so
/// a poisoned shard can never silently drop its slice of the corpus from
/// the merged ranking.
pub fn fan_out<T, R, F>(inputs: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut inputs = inputs;
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![work(0, inputs.pop().expect("len checked"))],
        _ => std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| {
                    scope.spawn({
                        let work = &work;
                        move || work(i, input)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_keep_input_order() {
        // Make later inputs finish first to prove ordering is positional,
        // not completion-based.
        let inputs = vec![30u64, 20, 10, 0];
        let out = fan_out(inputs, |i, delay_ms| {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            (i, delay_ms)
        });
        assert_eq!(out, vec![(0, 30), (1, 20), (2, 10), (3, 0)]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(fan_out(none, |_, x: u32| x).is_empty());
        assert_eq!(fan_out(vec![5], |i, x: u32| x + i as u32), vec![5]);
    }

    #[test]
    fn single_input_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = fan_out(vec![()], |_, ()| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = fan_out((0..16).collect::<Vec<usize>>(), |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 16);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            fan_out(vec![1u32, 2], |_, x| if x == 2 { panic!("shard died") } else { x })
        });
        assert!(caught.is_err());
    }
}
