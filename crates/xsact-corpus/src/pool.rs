//! Shard-parallel execution: scoped fan-out and the persistent pool.
//!
//! The build environment is offline — no rayon, no tokio — so both shapes
//! are built on std threads only:
//!
//! * [`fan_out`] spawns **scoped** threads per query: one OS thread per
//!   non-empty shard, borrowing the caller's data for the duration of the
//!   query. Right for one-shot queries — the scope guarantees every
//!   result is back before the merge starts.
//! * [`ShardPool`] keeps **long-lived** workers pinned to shard indexes
//!   and broadcasts each request to all of them. Right for a serving
//!   runtime, where paying thread spawn/teardown per query would dominate
//!   sub-millisecond searches and defeat batching.
//!
//! Both produce outputs in shard order regardless of completion order, so
//! swapping one for the other can never change result bytes.

/// Runs `work` on every element of `inputs` concurrently — one scoped
/// thread per element — and returns the outputs *in input order*,
/// regardless of which thread finished first.
///
/// Empty inputs produce no thread at all; a single input runs on the
/// calling thread, so `shards = 1` has zero threading overhead and is the
/// exact sequential baseline the scaling bench compares against.
///
/// Panics in `work` propagate to the caller (the scope re-raises them), so
/// a poisoned shard can never silently drop its slice of the corpus from
/// the merged ranking.
pub fn fan_out<T, R, F>(inputs: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut inputs = inputs;
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![work(0, inputs.pop().expect("len checked"))],
        _ => std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| {
                    scope.spawn({
                        let work = &work;
                        move || work(i, input)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        }),
    }
}

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One unit of pool work: the shared request plus the channel the worker
/// answers on. The shard index is implicit — each worker knows its own.
type Job<Req, Resp> = (Arc<Req>, mpsc::Sender<(usize, Resp)>);

/// A pool of long-lived worker threads, one pinned to each shard index,
/// answering broadcast requests until dropped.
///
/// Where [`fan_out`] pays a thread spawn per shard per query, the pool
/// pays it once at construction: [`ShardPool::broadcast`] hands the shared
/// request to every worker over a channel and collects one response per
/// shard, returned **in shard order** regardless of completion order —
/// the same ordering contract as `fan_out`, so the two are byte-for-byte
/// interchangeable above the merge.
///
/// A worker that panics drops its reply sender; `broadcast` then sees
/// fewer responses than shards and panics on the calling thread, so a
/// poisoned shard can never silently vanish from a merged ranking.
pub struct ShardPool<Req, Resp> {
    senders: Vec<mpsc::Sender<Job<Req, Resp>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<Req, Resp> ShardPool<Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + 'static,
{
    /// Spawns `shards` workers (at least one), each running
    /// `work(shard_index, &request)` for every broadcast request.
    pub fn new<F>(shards: usize, work: F) -> ShardPool<Req, Resp>
    where
        F: Fn(usize, &Req) -> Resp + Send + Sync + 'static,
    {
        assert!(shards > 0, "a shard pool needs at least one worker");
        let work = Arc::new(work);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<Job<Req, Resp>>();
            let work = Arc::clone(&work);
            let handle = std::thread::Builder::new()
                .name(format!("xsact-shard-{shard}"))
                .spawn(move || {
                    // Ends when the pool drops its sender (or mid-broadcast
                    // if the pool itself is gone; the reply send then fails
                    // harmlessly into a dropped receiver).
                    while let Ok((req, reply)) = rx.recv() {
                        let resp = work(shard, req.as_ref());
                        let _ = reply.send((shard, resp));
                    }
                })
                .expect("failed to spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        ShardPool { senders, workers }
    }

    /// Number of pinned workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Runs `req` on every worker and returns the responses in shard
    /// order. Blocks until all shards have answered.
    ///
    /// # Panics
    ///
    /// If any worker has panicked (its response never arrives).
    pub fn broadcast(&self, req: Req) -> Vec<Resp> {
        let req = Arc::new(req);
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, Resp)>();
        for tx in &self.senders {
            tx.send((Arc::clone(&req), reply_tx.clone())).expect("shard worker exited early");
        }
        drop(reply_tx);
        let mut slots: Vec<Option<Resp>> = (0..self.senders.len()).map(|_| None).collect();
        let mut received = 0;
        while let Ok((shard, resp)) = reply_rx.recv() {
            debug_assert!(slots[shard].is_none(), "duplicate response from shard {shard}");
            slots[shard] = Some(resp);
            received += 1;
        }
        assert_eq!(received, self.senders.len(), "a shard worker panicked mid-broadcast");
        slots.into_iter().map(|s| s.expect("counted above")).collect()
    }
}

impl<Req, Resp> Drop for ShardPool<Req, Resp> {
    fn drop(&mut self) {
        // Disconnect the job channels so every worker's `recv` ends, then
        // join. A worker that already panicked is ignored — its absence
        // was (or would have been) reported by `broadcast`.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_keep_input_order() {
        // Make later inputs finish first to prove ordering is positional,
        // not completion-based.
        let inputs = vec![30u64, 20, 10, 0];
        let out = fan_out(inputs, |i, delay_ms| {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            (i, delay_ms)
        });
        assert_eq!(out, vec![(0, 30), (1, 20), (2, 10), (3, 0)]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(fan_out(none, |_, x: u32| x).is_empty());
        assert_eq!(fan_out(vec![5], |i, x: u32| x + i as u32), vec![5]);
    }

    #[test]
    fn single_input_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = fan_out(vec![()], |_, ()| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = fan_out((0..16).collect::<Vec<usize>>(), |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 16);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            fan_out(vec![1u32, 2], |_, x| if x == 2 { panic!("shard died") } else { x })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn pool_broadcast_returns_shard_ordered_responses() {
        let pool: ShardPool<u32, (usize, u32)> = ShardPool::new(4, |shard, req| {
            // Later shards answer first to prove ordering is positional.
            std::thread::sleep(std::time::Duration::from_millis(30 - 10 * (shard as u64 % 4)));
            (shard, *req * 2)
        });
        assert_eq!(pool.shards(), 4);
        let out = pool.broadcast(21);
        assert_eq!(out, vec![(0, 42), (1, 42), (2, 42), (3, 42)]);
    }

    #[test]
    fn pool_workers_persist_across_broadcasts() {
        use std::thread::ThreadId;
        let pool: ShardPool<(), ThreadId> = ShardPool::new(2, |_, ()| std::thread::current().id());
        let first = pool.broadcast(());
        let second = pool.broadcast(());
        assert_eq!(first, second, "each shard keeps its pinned thread");
        assert_ne!(first[0], first[1], "shards run on distinct threads");
    }

    #[test]
    fn pool_matches_fan_out_byte_for_byte() {
        let inputs: Vec<usize> = (0..6).collect();
        let scoped = fan_out(inputs, |i, x| format!("shard {i} item {x}"));
        let pool: ShardPool<Vec<usize>, Vec<String>> =
            ShardPool::new(6, |i, req: &Vec<usize>| vec![format!("shard {i} item {}", req[i])]);
        let pooled: Vec<String> = pool.broadcast((0..6).collect()).into_iter().flatten().collect();
        assert_eq!(scoped, pooled);
    }

    #[test]
    fn pool_worker_panic_fails_the_broadcast() {
        let pool: ShardPool<u32, u32> =
            ShardPool::new(3, |shard, req| if shard == 1 { panic!("shard died") } else { *req });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.broadcast(7)));
        assert!(caught.is_err(), "a dead shard must not silently vanish");
    }

    #[test]
    fn pool_drop_joins_workers_cleanly() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool: ShardPool<u32, u32> = ShardPool::new(3, {
            let done = Arc::clone(&done);
            move |_, req| {
                done.fetch_add(1, Ordering::Relaxed);
                *req
            }
        });
        pool.broadcast(1);
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
