//! Sharded corpus engine primitives.
//!
//! The paper's pipeline runs over one XML document; serving a *corpus* of
//! documents means partitioning the documents into shards, pushing each
//! query to every shard in parallel, and merging the per-shard ranked
//! results into one deterministic global ranking — the shape the LSST
//! multi-petabyte design in `PAPERS.md` calls shared-nothing partitioning
//! with result merging.
//!
//! This crate holds the engine's *mechanics*, deliberately free of any
//! XSACT type so each piece is independently testable and reusable:
//!
//! * [`ShardPlan`] — deterministic round-robin assignment of documents to
//!   shards, identical for every run with the same inputs;
//! * [`fan_out`] — query fan-out on a std-only scoped-thread pool (the
//!   build environment is offline: no rayon, no tokio), one worker per
//!   non-empty shard;
//! * [`ShardPool`] — the persistent flavour of the same contract: workers
//!   pinned to shard indexes for the lifetime of a server, broadcast
//!   requests, responses in shard order. Workers are **supervised**: a
//!   panic becomes a typed [`ShardPanic`] outcome for the affected
//!   broadcast and the worker is respawned from the retained work
//!   closure, so the next request is byte-identical to a fault-free run;
//! * [`k_way_merge`] — heap-based merge of per-shard ranked lists whose
//!   output order depends only on the comparator, never on the shard
//!   count or thread interleaving.
//!
//! The `xsact` facade's `Corpus` composes these with one `Workbench` per
//! document; see `src/corpus.rs` in the facade crate.

pub mod merge;
pub mod pool;
pub mod shard;

pub use merge::k_way_merge;
pub use pool::{fan_out, ShardPanic, ShardPool};
pub use shard::{DocId, ShardPlan};
