//! Shard planning: which document lives in which shard.
//!
//! The assignment must be a pure function of `(document count, shard
//! count)` so that reloading a corpus — or running it with a different
//! worker pool — never moves a document to a different shard mid-session.
//! Round-robin keeps shard sizes within one document of each other for any
//! input size, which is what makes the fan-out's wall-clock follow the
//! slowest shard instead of an unlucky partition.

use std::fmt;

/// Identifier of one document inside a corpus: its ingestion position.
///
/// Ingestion order is deterministic for every corpus source (explicit
/// lists keep their order; directories are read in sorted filename order),
/// so a `DocId` is stable across runs and across shard counts — which is
/// what lets cross-shard merge ties break on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl DocId {
    /// The position as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// A deterministic document → shard assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// A plan with `shards` shards; zero is clamped to one.
    pub fn new(shards: usize) -> Self {
        ShardPlan { shards: shards.max(1) }
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard holding document `doc` (round-robin).
    pub fn shard_of(&self, doc: DocId) -> usize {
        doc.index() % self.shards
    }

    /// Partitions `0..doc_count` into per-shard document-index lists.
    ///
    /// Always returns exactly `shard_count()` lists (trailing ones may be
    /// empty when there are fewer documents than shards); within a shard,
    /// documents keep ascending order.
    pub fn partition(&self, doc_count: usize) -> Vec<Vec<usize>> {
        let mut shards = vec![Vec::with_capacity(doc_count.div_ceil(self.shards)); self.shards];
        for doc in 0..doc_count {
            shards[doc % self.shards].push(doc);
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_clamp_to_one() {
        let plan = ShardPlan::new(0);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.partition(3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn round_robin_balances_within_one() {
        for shards in 1..=9 {
            for docs in 0..=40 {
                let parts = ShardPlan::new(shards).partition(docs);
                assert_eq!(parts.len(), shards);
                let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{shards} shards over {docs} docs: {sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), docs);
            }
        }
    }

    #[test]
    fn partition_covers_every_doc_exactly_once_in_order() {
        let parts = ShardPlan::new(3).partition(8);
        assert_eq!(parts, vec![vec![0, 3, 6], vec![1, 4, 7], vec![2, 5]]);
        for part in &parts {
            assert!(part.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shard_of_matches_partition() {
        let plan = ShardPlan::new(4);
        for (shard, docs) in plan.partition(11).iter().enumerate() {
            for &doc in docs {
                assert_eq!(plan.shard_of(DocId(doc as u32)), shard);
            }
        }
    }

    #[test]
    fn doc_id_displays_and_orders() {
        assert_eq!(DocId(7).to_string(), "doc7");
        assert!(DocId(1) < DocId(2));
        assert_eq!(DocId(3).index(), 3);
    }
}
