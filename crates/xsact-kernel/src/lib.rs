//! Runtime-dispatched CPU kernels for the XSACT hot loops.
//!
//! Three primitives sit on the floor of every profile of the system:
//!
//! * [`and2_count`] — `popcount(a ∧ b)` over `u64` rows (the DoD pair and
//!   upper-bound kernels in `xsact-core`);
//! * [`and3_count`] — `popcount(a ∧ b ∧ c)` (the `sel_i ∧ sel_j ∧ diff_ij`
//!   DoD kernel);
//! * [`count_in_range_u32`] — how many values of a slice fall in
//!   `[lo, hi)` (the scorer's subtree range-count over decoded posting
//!   frames in `xsact-index`).
//!
//! Each primitive has three arms: AVX2, SSE2 and scalar. The arm is chosen
//! **once per process** with `is_x86_feature_detected!` and cached in a
//! [`OnceLock`]; setting `XSACT_FORCE_SCALAR` (to anything but `0`/empty)
//! pins the scalar arm, which is how CI proves both dispatch paths produce
//! identical bytes on any hardware. On non-x86 targets only the scalar arm
//! exists and dispatch is a no-op.
//!
//! The scalar implementations are public under [`scalar`] and are the
//! correctness oracles: `tests/properties.rs` pins every SIMD arm to them
//! over random masks, including all-zero, all-one and tail-word edge
//! cases. All arms are exact — they must (and do) return bit-identical
//! counts, so swapping arms can never change result bytes anywhere in the
//! stack.

use std::sync::OnceLock;

/// Which instruction-set arm the process selected at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLevel {
    /// 256-bit AVX2 arm (nibble-LUT popcount, 8-lane range compare).
    Avx2,
    /// 128-bit SSE2 arm (bit-parallel popcount, 4-lane range compare).
    Sse2,
    /// Plain `u64`/`u32` loops — the oracle, and the only arm off x86.
    Scalar,
}

impl KernelLevel {
    /// Human-readable arm name (benches print it so numbers self-explain).
    pub fn name(self) -> &'static str {
        match self {
            KernelLevel::Avx2 => "avx2",
            KernelLevel::Sse2 => "sse2",
            KernelLevel::Scalar => "scalar",
        }
    }
}

/// The dispatch table: one function pointer per primitive, selected once.
struct Kernels {
    level: KernelLevel,
    and2: fn(&[u64], &[u64]) -> u32,
    and3: fn(&[u64], &[u64], &[u64]) -> u32,
    range: fn(&[u32], u32, u32) -> u32,
}

static KERNELS: OnceLock<Kernels> = OnceLock::new();

fn force_scalar() -> bool {
    std::env::var_os("XSACT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

fn kernels() -> &'static Kernels {
    KERNELS.get_or_init(|| {
        if force_scalar() {
            return Kernels {
                level: KernelLevel::Scalar,
                and2: scalar::and2_count,
                and3: scalar::and3_count,
                range: scalar::count_in_range_u32,
            };
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernels {
                    level: KernelLevel::Avx2,
                    and2: x86::and2_count_avx2,
                    and3: x86::and3_count_avx2,
                    range: x86::count_in_range_u32_avx2,
                };
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return Kernels {
                    level: KernelLevel::Sse2,
                    and2: x86::and2_count_sse2,
                    and3: x86::and3_count_sse2,
                    range: x86::count_in_range_u32_sse2,
                };
            }
        }
        Kernels {
            level: KernelLevel::Scalar,
            and2: scalar::and2_count,
            and3: scalar::and3_count,
            range: scalar::count_in_range_u32,
        }
    })
}

/// The arm this process runs on (after the `XSACT_FORCE_SCALAR` override).
pub fn active_level() -> KernelLevel {
    kernels().level
}

/// `popcount(a ∧ b)`. Slices must have equal length.
#[inline]
pub fn and2_count(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    // Row widths in the DoD kernel are usually 1–4 words; vector setup
    // costs more than it saves below a couple of registers' worth.
    if a.len() < 8 {
        return scalar::and2_count(a, b);
    }
    (kernels().and2)(a, b)
}

/// `popcount(a ∧ b ∧ c)`. Slices must have equal length.
#[inline]
pub fn and3_count(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    if a.len() < 8 {
        return scalar::and3_count(a, b, c);
    }
    (kernels().and3)(a, b, c)
}

/// Number of values `v` in `vals` with `lo <= v < hi`.
#[inline]
pub fn count_in_range_u32(vals: &[u32], lo: u32, hi: u32) -> u32 {
    if vals.len() < 16 {
        return scalar::count_in_range_u32(vals, lo, hi);
    }
    (kernels().range)(vals, lo, hi)
}

/// The scalar arms — public because they are the oracles the property
/// suite pins the SIMD arms against, and the permanent fallback.
pub mod scalar {
    /// `popcount(a ∧ b)`, one word at a time.
    pub fn and2_count(a: &[u64], b: &[u64]) -> u32 {
        a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones()).sum()
    }

    /// `popcount(a ∧ b ∧ c)`, one word at a time.
    pub fn and3_count(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        a.iter().zip(b).zip(c).map(|((&x, &y), &z)| (x & y & z).count_ones()).sum()
    }

    /// Count of `lo <= v < hi`, one value at a time.
    pub fn count_in_range_u32(vals: &[u32], lo: u32, hi: u32) -> u32 {
        vals.iter().filter(|&&v| lo <= v && v < hi).count() as u32
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    // ------------------------------------------------------------- AVX2 arm

    pub fn and2_count_avx2(a: &[u64], b: &[u64]) -> u32 {
        // Safety: selected only after `is_x86_feature_detected!("avx2")`.
        unsafe { and2_count_avx2_impl(a, b) }
    }

    pub fn and3_count_avx2(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        unsafe { and3_count_avx2_impl(a, b, c) }
    }

    pub fn count_in_range_u32_avx2(vals: &[u32], lo: u32, hi: u32) -> u32 {
        unsafe { count_in_range_u32_avx2_impl(vals, lo, hi) }
    }

    /// Popcount of each byte of `v` via the Muła nibble lookup, summed into
    /// four `u64` lanes with `_mm256_sad_epu8`.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_epi8_sad(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // low lane
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // high lane
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and2_count_avx2_impl(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount_epi8_sad(_mm256_and_si256(va, vb)));
        }
        let mut total = hsum_epi64(acc);
        for i in chunks * 4..n {
            total += (a[i] & b[i]).count_ones();
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and3_count_avx2_impl(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        let n = a.len().min(b.len()).min(c.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            let vc = _mm256_loadu_si256(c.as_ptr().add(i * 4) as *const __m256i);
            let and = _mm256_and_si256(_mm256_and_si256(va, vb), vc);
            acc = _mm256_add_epi64(acc, popcount_epi8_sad(and));
        }
        let mut total = hsum_epi64(acc);
        for i in chunks * 4..n {
            total += (a[i] & b[i] & c[i]).count_ones();
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u32 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32
    }

    #[target_feature(enable = "avx2")]
    unsafe fn count_in_range_u32_avx2_impl(vals: &[u32], lo: u32, hi: u32) -> u32 {
        if lo >= hi {
            return 0;
        }
        // Unsigned compare via the sign-bias trick: x <u y ⟺
        // (x ^ MIN) <s (y ^ MIN) over i32 lanes.
        let bias = _mm256_set1_epi32(i32::MIN);
        let vlo = _mm256_xor_si256(_mm256_set1_epi32(lo as i32), bias);
        let vhi = _mm256_xor_si256(_mm256_set1_epi32(hi as i32), bias);
        let chunks = vals.len() / 8;
        let mut count = 0u32;
        for i in 0..chunks {
            let v = _mm256_loadu_si256(vals.as_ptr().add(i * 8) as *const __m256i);
            let vb = _mm256_xor_si256(v, bias);
            // in-range ⟺ !(v < lo) ∧ (v < hi)
            let lt_lo = _mm256_cmpgt_epi32(vlo, vb);
            let lt_hi = _mm256_cmpgt_epi32(vhi, vb);
            let inside = _mm256_andnot_si256(lt_lo, lt_hi);
            count += (_mm256_movemask_epi8(inside).count_ones()) / 4;
        }
        for &v in &vals[chunks * 8..] {
            if lo <= v && v < hi {
                count += 1;
            }
        }
        count
    }

    // ------------------------------------------------------------- SSE2 arm

    pub fn and2_count_sse2(a: &[u64], b: &[u64]) -> u32 {
        unsafe { and2_count_sse2_impl(a, b) }
    }

    pub fn and3_count_sse2(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        unsafe { and3_count_sse2_impl(a, b, c) }
    }

    pub fn count_in_range_u32_sse2(vals: &[u32], lo: u32, hi: u32) -> u32 {
        unsafe { count_in_range_u32_sse2_impl(vals, lo, hi) }
    }

    /// Classic bit-parallel byte popcount (0x55/0x33/0x0f ladder), summed
    /// into two `u64` lanes with `_mm_sad_epu8`.
    #[target_feature(enable = "sse2")]
    unsafe fn popcount_epi8_sad_sse2(v: __m128i) -> __m128i {
        let m55 = _mm_set1_epi8(0x55);
        let m33 = _mm_set1_epi8(0x33);
        let m0f = _mm_set1_epi8(0x0f);
        let v = _mm_sub_epi8(v, _mm_and_si128(_mm_srli_epi64(v, 1), m55));
        let v = _mm_add_epi8(_mm_and_si128(v, m33), _mm_and_si128(_mm_srli_epi64(v, 2), m33));
        let v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi64(v, 4)), m0f);
        _mm_sad_epu8(v, _mm_setzero_si128())
    }

    #[target_feature(enable = "sse2")]
    unsafe fn and2_count_sse2_impl(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len().min(b.len());
        let chunks = n / 2;
        let mut acc = _mm_setzero_si128();
        for i in 0..chunks {
            let va = _mm_loadu_si128(a.as_ptr().add(i * 2) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i * 2) as *const __m128i);
            acc = _mm_add_epi64(acc, popcount_epi8_sad_sse2(_mm_and_si128(va, vb)));
        }
        let mut total = hsum_epi64_sse2(acc);
        for i in chunks * 2..n {
            total += (a[i] & b[i]).count_ones();
        }
        total
    }

    #[target_feature(enable = "sse2")]
    unsafe fn and3_count_sse2_impl(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        let n = a.len().min(b.len()).min(c.len());
        let chunks = n / 2;
        let mut acc = _mm_setzero_si128();
        for i in 0..chunks {
            let va = _mm_loadu_si128(a.as_ptr().add(i * 2) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i * 2) as *const __m128i);
            let vc = _mm_loadu_si128(c.as_ptr().add(i * 2) as *const __m128i);
            let and = _mm_and_si128(_mm_and_si128(va, vb), vc);
            acc = _mm_add_epi64(acc, popcount_epi8_sad_sse2(and));
        }
        let mut total = hsum_epi64_sse2(acc);
        for i in chunks * 2..n {
            total += (a[i] & b[i] & c[i]).count_ones();
        }
        total
    }

    #[target_feature(enable = "sse2")]
    unsafe fn hsum_epi64_sse2(v: __m128i) -> u32 {
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
        (lanes[0] + lanes[1]) as u32
    }

    #[target_feature(enable = "sse2")]
    unsafe fn count_in_range_u32_sse2_impl(vals: &[u32], lo: u32, hi: u32) -> u32 {
        if lo >= hi {
            return 0;
        }
        let bias = _mm_set1_epi32(i32::MIN);
        let vlo = _mm_xor_si128(_mm_set1_epi32(lo as i32), bias);
        let vhi = _mm_xor_si128(_mm_set1_epi32(hi as i32), bias);
        let chunks = vals.len() / 4;
        let mut count = 0u32;
        for i in 0..chunks {
            let v = _mm_loadu_si128(vals.as_ptr().add(i * 4) as *const __m128i);
            let vb = _mm_xor_si128(v, bias);
            let lt_lo = _mm_cmpgt_epi32(vlo, vb);
            let lt_hi = _mm_cmpgt_epi32(vhi, vb);
            let inside = _mm_andnot_si128(lt_lo, lt_hi);
            count += (_mm_movemask_epi8(inside).count_ones()) / 4;
        }
        for &v in &vals[chunks * 4..] {
            if lo <= v && v < hi {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap deterministic xorshift so the tests need no external crates.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn dispatch_selects_an_arm_once() {
        let level = active_level();
        assert_eq!(level, active_level(), "selection is cached");
        // Whatever the arm, it must agree with the oracle (checked below);
        // here just exercise the name mapping.
        assert!(["avx2", "sse2", "scalar"].contains(&level.name()));
    }

    #[test]
    fn and_counts_match_scalar_across_lengths() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let a: Vec<u64> = (0..len).map(|_| xorshift(&mut state)).collect();
            let b: Vec<u64> = (0..len).map(|_| xorshift(&mut state)).collect();
            let c: Vec<u64> = (0..len).map(|_| xorshift(&mut state)).collect();
            assert_eq!(and2_count(&a, &b), scalar::and2_count(&a, &b), "len {len}");
            assert_eq!(and3_count(&a, &b, &c), scalar::and3_count(&a, &b, &c), "len {len}");
        }
    }

    #[test]
    fn and_counts_handle_all_zero_and_all_one() {
        for len in [1usize, 8, 33] {
            let zeros = vec![0u64; len];
            let ones = vec![u64::MAX; len];
            assert_eq!(and2_count(&zeros, &ones), 0);
            assert_eq!(and2_count(&ones, &ones), 64 * len as u32);
            assert_eq!(and3_count(&ones, &ones, &zeros), 0);
            assert_eq!(and3_count(&ones, &ones, &ones), 64 * len as u32);
        }
    }

    #[test]
    fn range_count_matches_scalar_across_lengths_and_bounds() {
        let mut state = 0x51ed270b227c6109u64;
        for len in [0usize, 1, 3, 4, 7, 8, 9, 16, 17, 40, 127, 128, 129] {
            let vals: Vec<u32> = (0..len).map(|_| xorshift(&mut state) as u32).collect();
            for (lo, hi) in [
                (0u32, u32::MAX),
                (0, 0),
                (5, 5),
                (1 << 30, 3 << 30),
                (u32::MAX - 1, u32::MAX),
                (7, 6), // inverted: empty range
            ] {
                assert_eq!(
                    count_in_range_u32(&vals, lo, hi),
                    scalar::count_in_range_u32(&vals, lo, hi),
                    "len {len} range [{lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn range_count_boundary_semantics() {
        let vals: Vec<u32> = (0..100).collect();
        assert_eq!(count_in_range_u32(&vals, 10, 20), 10, "lo inclusive, hi exclusive");
        assert_eq!(scalar::count_in_range_u32(&vals, 10, 20), 10);
        assert_eq!(count_in_range_u32(&vals, 0, 100), 100);
        assert_eq!(count_in_range_u32(&vals, 99, 100), 1);
        assert_eq!(count_in_range_u32(&vals, 100, 200), 0);
    }
}
