//! Entity escaping and unescaping for XML text and attribute values.
//!
//! Supports the five predefined XML entities (`&amp;`, `&lt;`, `&gt;`,
//! `&apos;`, `&quot;`) plus decimal (`&#65;`) and hexadecimal (`&#x41;`)
//! character references.

use crate::error::{XmlError, XmlResult};
use std::borrow::Cow;

/// Escapes text content: `&`, `<` and `>` are replaced by entities.
///
/// Returns a borrowed string when no escaping is necessary, avoiding an
/// allocation on the common path.
///
/// ```
/// use xsact_xml::escape::escape_text;
/// assert_eq!(escape_text("a < b & c"), "a &lt; b &amp; c");
/// assert_eq!(escape_text("plain"), "plain");
/// ```
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>'))
}

/// Escapes an attribute value for inclusion in double quotes: in addition to
/// the text escapes, `"` becomes `&quot;`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>' | '"'))
}

fn escape_with(s: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    let first = match s.char_indices().find(|&(_, c)| needs(c)) {
        Some((i, _)) => i,
        None => return Cow::Borrowed(s),
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if needs('"') => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolves a single entity body (the text between `&` and `;`).
///
/// `offset` is the byte position of the `&` in the original input; it is only
/// used to build the error value.
pub fn resolve_entity(entity: &str, offset: usize) -> XmlResult<char> {
    match entity {
        "amp" => return Ok('&'),
        "lt" => return Ok('<'),
        "gt" => return Ok('>'),
        "apos" => return Ok('\''),
        "quot" => return Ok('"'),
        _ => {}
    }
    let bad = || XmlError::BadEntity { offset, entity: entity.to_owned() };
    let code = if let Some(hex) = entity.strip_prefix("#x").or_else(|| entity.strip_prefix("#X")) {
        u32::from_str_radix(hex, 16).map_err(|_| bad())?
    } else if let Some(dec) = entity.strip_prefix('#') {
        dec.parse::<u32>().map_err(|_| bad())?
    } else {
        return Err(bad());
    };
    char::from_u32(code).ok_or_else(bad)
}

/// Unescapes text containing entity references.
///
/// Returns a borrowed string when the input contains no `&`.
///
/// ```
/// use xsact_xml::escape::unescape;
/// assert_eq!(unescape("a &lt; b", 0).unwrap(), "a < b");
/// assert_eq!(unescape("&#x2603;", 0).unwrap(), "\u{2603}");
/// ```
pub fn unescape(s: &str, base_offset: usize) -> XmlResult<Cow<'_, str>> {
    let first = match s.find('&') {
        Some(i) => i,
        None => return Ok(Cow::Borrowed(s)),
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    let mut pos = base_offset + first;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        pos += amp;
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| XmlError::BadEntity {
            offset: pos,
            entity: after.chars().take(12).collect(),
        })?;
        let body = &after[..semi];
        out.push(resolve_entity(body, pos)?);
        rest = &after[semi + 1..];
        pos += 1 + semi + 1;
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_text("a&b"), Cow::Owned(_)));
    }

    #[test]
    fn escape_text_handles_all_specials() {
        assert_eq!(escape_text("<a>&</a>"), "&lt;a&gt;&amp;&lt;/a&gt;");
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(escape_attr(r#"say "hi" & go"#), "say &quot;hi&quot; &amp; go");
        // Text escaping leaves quotes alone.
        assert_eq!(escape_text(r#""q""#), r#""q""#);
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(unescape("&amp;&lt;&gt;&apos;&quot;", 0).unwrap(), "&<>'\"");
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#66;", 0).unwrap(), "AB");
        assert_eq!(unescape("&#x41;&#X42;", 0).unwrap(), "AB");
        assert_eq!(unescape("snow&#x2603;man", 0).unwrap(), "snow\u{2603}man");
    }

    #[test]
    fn unescape_borrows_without_amp() {
        assert!(matches!(unescape("no entities", 0).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("x&nbsp;y", 10).unwrap_err();
        assert_eq!(err, XmlError::BadEntity { offset: 11, entity: "nbsp".into() });
    }

    #[test]
    fn unescape_rejects_unterminated_entity() {
        let err = unescape("x&ampy", 0).unwrap_err();
        assert!(matches!(err, XmlError::BadEntity { offset: 1, .. }));
    }

    #[test]
    fn unescape_rejects_invalid_codepoint() {
        assert!(unescape("&#xD800;", 0).is_err()); // surrogate
        assert!(unescape("&#99999999;", 0).is_err()); // out of range
        assert!(unescape("&#xZZ;", 0).is_err());
        assert!(unescape("&#;", 0).is_err());
        assert!(unescape("&;", 0).is_err());
    }

    #[test]
    fn round_trip_text() {
        let original = "a < b && c > \"d\" 'e' \u{2603}";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }

    #[test]
    fn entity_error_offsets_are_relative_to_base() {
        let err = unescape("abc&bogus;", 100).unwrap_err();
        assert_eq!(err, XmlError::BadEntity { offset: 103, entity: "bogus".into() });
        // Second entity in the string: offset accounts for the first one.
        let err = unescape("&lt;&bogus;", 100).unwrap_err();
        assert_eq!(err, XmlError::BadEntity { offset: 104, entity: "bogus".into() });
    }
}
