//! Streaming XML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from XML text. The tokenizer handles
//! the subset of XML that structured datasets actually use:
//!
//! * start / end / self-closing tags with attributes,
//! * text content with entity references,
//! * CDATA sections (emitted as text),
//! * comments, processing instructions and `<!DOCTYPE ...>` (skipped).
//!
//! Well-formedness across tags (matching open/close) is the parser's job;
//! the tokenizer only validates local syntax.

use crate::error::{XmlError, XmlResult};
use crate::escape::unescape;

/// A single lexical item of an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name a="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in source order, values entity-resolved.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
        /// Byte offset of the `<`.
        offset: usize,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
        /// Byte offset of the `<`.
        offset: usize,
    },
    /// A run of character data. Entities are resolved; CDATA arrives here
    /// verbatim. Whitespace-only runs between tags are *not* emitted.
    Text {
        /// The text content.
        content: String,
        /// Byte offset of the first character.
        offset: usize,
    },
}

/// Pull tokenizer over a string slice. Iterate it to obtain tokens:
///
/// ```
/// use xsact_xml::{Token, Tokenizer};
///
/// let tokens: Result<Vec<Token>, _> = Tokenizer::new("<a>hi</a>").collect();
/// assert_eq!(tokens.unwrap().len(), 3);
/// ```
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: char, what: &'static str) -> XmlResult<()> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(XmlError::UnexpectedChar { offset: self.pos, found: c, expected: what }),
            None => Err(XmlError::UnexpectedEof { offset: self.pos, context: what }),
        }
    }

    /// Consumes input until `pattern` is found, returning the text before it.
    /// The pattern itself is consumed too.
    fn take_until(&mut self, pattern: &str, context: &'static str) -> XmlResult<&'a str> {
        match self.rest().find(pattern) {
            Some(i) => {
                let start = self.pos;
                self.pos += i + pattern.len();
                Ok(&self.input[start..start + i])
            }
            None => Err(XmlError::UnexpectedEof { offset: self.pos, context }),
        }
    }

    fn read_name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    offset: self.pos,
                    found: c,
                    expected: "a name start character",
                })
            }
            None => return Err(XmlError::UnexpectedEof { offset: self.pos, context: "a name" }),
        }
        while matches!(self.peek(), Some(c) if is_name_continue(c)) {
            self.bump();
        }
        Ok(&self.input[start..self.pos])
    }

    fn read_attrs(&mut self) -> XmlResult<Vec<(String, String)>> {
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') | Some('/') | None => return Ok(attrs),
                _ => {}
            }
            let name_offset = self.pos;
            let name = self.read_name()?;
            if attrs.iter().any(|(n, _)| n == name) {
                return Err(XmlError::DuplicateAttribute {
                    offset: name_offset,
                    name: name.to_owned(),
                });
            }
            self.skip_whitespace();
            self.eat('=', "'=' after attribute name")?;
            self.skip_whitespace();
            let quote = match self.peek() {
                Some(q @ ('"' | '\'')) => {
                    self.bump();
                    q
                }
                Some(c) => {
                    return Err(XmlError::UnexpectedChar {
                        offset: self.pos,
                        found: c,
                        expected: "a quoted attribute value",
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.pos,
                        context: "an attribute value",
                    })
                }
            };
            let value_offset = self.pos;
            let raw = match self.rest().find(quote) {
                Some(i) => {
                    let v = &self.rest()[..i];
                    self.pos += i + 1;
                    v
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: value_offset,
                        context: "an attribute value",
                    })
                }
            };
            let value = unescape(raw, value_offset)?.into_owned();
            attrs.push((name.to_owned(), value));
        }
    }

    /// Reads the token starting at `<`. `self.pos` is at the `<`.
    fn read_markup(&mut self) -> XmlResult<Option<Token>> {
        let offset = self.pos;
        self.bump(); // consume '<'
        match self.peek() {
            Some('/') => {
                self.bump();
                let name = self.read_name()?.to_owned();
                self.skip_whitespace();
                self.eat('>', "'>' closing an end tag")?;
                Ok(Some(Token::EndTag { name, offset }))
            }
            Some('!') => {
                self.bump();
                if self.rest().starts_with("--") {
                    self.pos += 2;
                    self.take_until("-->", "a comment")?;
                    Ok(None)
                } else if self.rest().starts_with("[CDATA[") {
                    self.pos += "[CDATA[".len();
                    let text_offset = self.pos;
                    let content = self.take_until("]]>", "a CDATA section")?;
                    Ok(Some(Token::Text { content: content.to_owned(), offset: text_offset }))
                } else {
                    // DOCTYPE or other declaration: skip to the matching '>'
                    // (internal subsets with nested brackets are handled).
                    let mut depth = 1usize;
                    loop {
                        match self.bump() {
                            Some('<') => depth += 1,
                            Some('>') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Some('[') => {
                                // Internal subset: skip to closing ']'.
                                self.take_until("]", "a DOCTYPE internal subset")?;
                            }
                            Some(_) => {}
                            None => {
                                return Err(XmlError::UnexpectedEof {
                                    offset,
                                    context: "a declaration",
                                })
                            }
                        }
                    }
                    Ok(None)
                }
            }
            Some('?') => {
                self.bump();
                self.take_until("?>", "a processing instruction")?;
                Ok(None)
            }
            _ => {
                let name = self.read_name()?.to_owned();
                let attrs = self.read_attrs()?;
                self.skip_whitespace();
                let self_closing = if self.peek() == Some('/') {
                    self.bump();
                    true
                } else {
                    false
                };
                self.eat('>', "'>' closing a start tag")?;
                Ok(Some(Token::StartTag { name, attrs, self_closing, offset }))
            }
        }
    }

    fn read_text(&mut self) -> XmlResult<Option<Token>> {
        let start = self.pos;
        let end = match self.rest().find('<') {
            Some(i) => start + i,
            None => self.input.len(),
        };
        let raw = &self.input[start..end];
        self.pos = end;
        if raw.chars().all(|c| c.is_ascii_whitespace()) {
            return Ok(None);
        }
        let content = unescape(raw, start)?.into_owned();
        Ok(Some(Token::Text { content, offset: start }))
    }

    fn next_token(&mut self) -> XmlResult<Option<Token>> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            let produced =
                if self.peek() == Some('<') { self.read_markup()? } else { self.read_text()? };
            if let Some(token) = produced {
                return Ok(Some(token));
            }
        }
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = XmlResult<Token>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token().transpose()
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_continue(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(input: &str) -> Vec<Token> {
        Tokenizer::new(input).collect::<XmlResult<Vec<_>>>().unwrap()
    }

    fn err(input: &str) -> XmlError {
        Tokenizer::new(input).collect::<XmlResult<Vec<_>>>().unwrap_err()
    }

    #[test]
    fn simple_element() {
        let ts = tokens("<a>hello</a>");
        assert_eq!(ts.len(), 3);
        assert!(matches!(&ts[0], Token::StartTag { name, self_closing: false, .. } if name == "a"));
        assert!(matches!(&ts[1], Token::Text { content, .. } if content == "hello"));
        assert!(matches!(&ts[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let ts = tokens(r#"<p a="1" b='two' c="a&amp;b"/>"#);
        match &ts[0] {
            Token::StartTag { attrs, self_closing, .. } => {
                assert!(*self_closing);
                assert_eq!(
                    attrs,
                    &vec![
                        ("a".to_string(), "1".to_string()),
                        ("b".to_string(), "two".to_string()),
                        ("c".to_string(), "a&b".to_string()),
                    ]
                );
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let ts = tokens("<a>\n  <b/>\n</a>");
        assert_eq!(ts.len(), 3); // <a>, <b/>, </a>
    }

    #[test]
    fn text_entities_resolved() {
        let ts = tokens("<a>x &lt; y &amp; z</a>");
        assert!(matches!(&ts[1], Token::Text { content, .. } if content == "x < y & z"));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let ts = tokens("<a><![CDATA[1 < 2 & 3 &amp;]]></a>");
        assert!(matches!(&ts[1], Token::Text { content, .. } if content == "1 < 2 & 3 &amp;"));
    }

    #[test]
    fn comments_and_pis_skipped() {
        let ts = tokens("<?xml version=\"1.0\"?><!-- note --><a><!-- inner -->t</a>");
        assert_eq!(ts.len(), 3);
        assert!(matches!(&ts[1], Token::Text { content, .. } if content == "t"));
    }

    #[test]
    fn doctype_skipped() {
        let ts = tokens("<!DOCTYPE shop SYSTEM \"shop.dtd\"><a/>");
        assert_eq!(ts.len(), 1);
        // With an internal subset containing element declarations.
        let ts = tokens("<!DOCTYPE shop [ <!ELEMENT a (b)> ]><a/>");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let input = "<a>xy</a>";
        let ts = tokens(input);
        match (&ts[0], &ts[1], &ts[2]) {
            (
                Token::StartTag { offset: o1, .. },
                Token::Text { offset: o2, .. },
                Token::EndTag { offset: o3, .. },
            ) => {
                assert_eq!((*o1, *o2, *o3), (0, 3, 5));
            }
            other => panic!("unexpected tokens {other:?}"),
        }
    }

    #[test]
    fn names_allow_xml_punctuation() {
        let ts = tokens("<ns:a-b.c_d/>");
        assert!(matches!(&ts[0], Token::StartTag { name, .. } if name == "ns:a-b.c_d"));
    }

    #[test]
    fn end_tag_allows_trailing_space() {
        let ts = tokens("<a>t</a >");
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn error_unterminated_tag() {
        assert!(matches!(err("<a"), XmlError::UnexpectedEof { .. }));
        assert!(matches!(err("<a foo="), XmlError::UnexpectedEof { .. }));
        assert!(matches!(err("<a foo=\"v"), XmlError::UnexpectedEof { .. }));
        assert!(matches!(err("<!-- never closed"), XmlError::UnexpectedEof { .. }));
        assert!(matches!(err("<![CDATA[ oops"), XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn error_bad_name() {
        assert!(matches!(err("<1a/>"), XmlError::UnexpectedChar { .. }));
        assert!(matches!(err("< a/>"), XmlError::UnexpectedChar { .. }));
    }

    #[test]
    fn error_unquoted_attribute() {
        assert!(matches!(err("<a v=1/>"), XmlError::UnexpectedChar { .. }));
    }

    #[test]
    fn error_missing_equals() {
        assert!(matches!(err("<a v \"1\"/>"), XmlError::UnexpectedChar { .. }));
    }

    #[test]
    fn error_duplicate_attribute() {
        assert!(matches!(
            err(r#"<a v="1" v="2"/>"#),
            XmlError::DuplicateAttribute { ref name, .. } if name == "v"
        ));
    }

    #[test]
    fn error_bad_entity_in_text() {
        assert!(matches!(err("<a>&oops;</a>"), XmlError::BadEntity { .. }));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(tokens("").is_empty());
        assert!(tokens("   \n\t ").is_empty());
    }

    #[test]
    fn multibyte_text_offsets() {
        let ts = tokens("<a>\u{2603}snow</a>");
        assert!(matches!(&ts[1], Token::Text { content, .. } if content == "\u{2603}snow"));
    }
}
