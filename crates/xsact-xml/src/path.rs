//! Lightweight path selection over the DOM — a practical navigation helper
//! for library users (a small subset of XPath's abbreviated syntax).
//!
//! Supported steps, separated by `/`:
//! * a tag name — matches child elements with that tag,
//! * `*` — matches any child element,
//! * `**` — matches any *descendant-or-self* element (deep descent).
//!
//! ```
//! use xsact_xml::{parse_document, path::select};
//!
//! let doc = parse_document(
//!     "<shop><product><name>A</name></product><product><name>B</name></product></shop>",
//! ).unwrap();
//! let names = select(&doc, doc.root(), "product/name");
//! assert_eq!(names.len(), 2);
//! let all = select(&doc, doc.root(), "**/name");
//! assert_eq!(all.len(), 2);
//! ```

use crate::dom::{Document, NodeId};

/// Selects elements matching `path` relative to `start` (exclusive).
/// Results are in document order without duplicates. An empty path selects
/// `start` itself.
pub fn select(doc: &Document, start: NodeId, path: &str) -> Vec<NodeId> {
    let steps: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let mut current = vec![start];
    for step in steps {
        let mut next = Vec::new();
        for &node in &current {
            match step {
                "*" => next.extend(doc.child_elements(node)),
                "**" => next.extend(doc.descendants(node).filter(|&n| doc.is_element(n))),
                tag => next.extend(doc.children_by_tag(node, tag)),
            }
        }
        // `**` can produce overlapping sets; dedupe while keeping document
        // order (descendants are emitted preorder, so sort + dedup by Dewey
        // keeps it stable).
        next.sort_by(|&a, &b| doc.dewey(a).cmp(&doc.dewey(b)));
        next.dedup();
        current = next;
    }
    current
}

/// First match of [`select`], if any.
pub fn select_first(doc: &Document, start: NodeId, path: &str) -> Option<NodeId> {
    select(doc, start, path).into_iter().next()
}

/// Concatenated text of the first match, if any.
pub fn select_text(doc: &Document, start: NodeId, path: &str) -> Option<String> {
    select_first(doc, start, path).map(|n| doc.text_content(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop>\
               <product><name>A</name><reviews><review><pros><compact>yes</compact></pros></review></reviews></product>\
               <product><name>B</name><reviews><review/><review/></reviews></product>\
               <banner><name>sale</name></banner>\
             </shop>",
        )
        .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let products = select(&d, d.root(), "product");
        assert_eq!(products.len(), 2);
        let names = select(&d, d.root(), "product/name");
        let texts: Vec<String> = names.iter().map(|&n| d.text_content(n)).collect();
        assert_eq!(texts, ["A", "B"]);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        assert_eq!(select(&d, d.root(), "*").len(), 3);
        assert_eq!(select(&d, d.root(), "*/name").len(), 3);
    }

    #[test]
    fn deep_descent() {
        let d = doc();
        let reviews = select(&d, d.root(), "**/review");
        assert_eq!(reviews.len(), 3);
        // `**` includes self, so `**` from root counts every element.
        let all = select(&d, d.root(), "**");
        assert_eq!(all.len(), d.all_nodes().filter(|&n| d.is_element(n)).count());
    }

    #[test]
    fn deep_then_child() {
        let d = doc();
        let compact = select(&d, d.root(), "**/pros/compact");
        assert_eq!(compact.len(), 1);
        assert_eq!(d.text_content(compact[0]), "yes");
    }

    #[test]
    fn no_duplicates_in_document_order() {
        let d = doc();
        // `**/**/name` would naively multiply matches.
        let names = select(&d, d.root(), "**/**/name");
        assert_eq!(names.len(), 3);
        for pair in names.windows(2) {
            assert!(d.dewey(pair[0]) < d.dewey(pair[1]));
        }
    }

    #[test]
    fn empty_and_missing_paths() {
        let d = doc();
        assert_eq!(select(&d, d.root(), ""), vec![d.root()]);
        assert!(select(&d, d.root(), "nonexistent").is_empty());
        assert!(select(&d, d.root(), "product/nonexistent").is_empty());
    }

    #[test]
    fn relative_to_inner_node() {
        let d = doc();
        let product = select_first(&d, d.root(), "product").unwrap();
        assert_eq!(select(&d, product, "reviews/review").len(), 1);
        assert_eq!(select_text(&d, product, "name").as_deref(), Some("A"));
        assert_eq!(select_text(&d, product, "missing"), None);
    }
}
