//! Dewey identifiers — the hierarchical node labels used by the keyword
//! search layer.
//!
//! A Dewey ID encodes a node's path from the document root as a sequence of
//! sibling ordinals: the root element is `0`, its second child is `0.1`, that
//! child's first child is `0.1.0`, and so on. Dewey IDs make the two
//! operations at the heart of SLCA computation cheap:
//!
//! * **document order** is plain lexicographic comparison, and
//! * the **lowest common ancestor** of two nodes is the longest common
//!   prefix of their IDs.
//!
//! This is exactly the encoding assumed by the Indexed Lookup Eager SLCA
//! algorithm implemented in `xsact-index`.
//!
//! Two representations exist:
//!
//! * [`DeweyRef`] — a copyable borrowed view over a component slice. This is
//!   what [`Document::dewey`](crate::Document::dewey) returns: the document
//!   packs every node's components into one flat arena, so per-node lookups
//!   borrow instead of allocating, and every comparison/LCA/ancestor
//!   operation works on slices.
//! * [`DeweyId`] — the owning form, for data that must outlive its document
//!   (persisted indexes, cross-document merge keys).

use std::cmp::Ordering;
use std::fmt;

/// A borrowed Dewey identifier: a view over the component slice
/// `[0, ordinal₁, ordinal₂, …]`. `Copy`, allocation-free; all structural
/// operations (order, ancestry, LCA) work directly on the borrowed slice.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeweyRef<'a> {
    components: &'a [u32],
}

impl<'a> DeweyRef<'a> {
    /// Wraps raw components. Returns `None` for an empty slice — the empty
    /// path identifies nothing.
    pub fn from_components(components: &'a [u32]) -> Option<DeweyRef<'a>> {
        if components.is_empty() {
            None
        } else {
            Some(DeweyRef { components })
        }
    }

    /// The raw components, outermost first.
    pub fn components(self) -> &'a [u32] {
        self.components
    }

    /// Depth of the node: the root has depth 1.
    pub fn depth(self) -> usize {
        self.components.len()
    }

    /// Whether `self` is a proper ancestor of `other`.
    pub fn is_ancestor_of(self, other: DeweyRef<'_>) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// Whether `self` is `other` or an ancestor of it.
    pub fn is_ancestor_or_self_of(self, other: DeweyRef<'_>) -> bool {
        self.components.len() <= other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(self, other: DeweyRef<'_>) -> usize {
        self.components.iter().zip(other.components).take_while(|(a, b)| *a == *b).count()
    }

    /// The lowest common ancestor: the longest common prefix, borrowed from
    /// `self`. `None` only when the IDs share no components (nodes of
    /// different documents).
    pub fn lca(self, other: DeweyRef<'_>) -> Option<DeweyRef<'a>> {
        DeweyRef::from_components(&self.components[..self.common_prefix_len(other)])
    }

    /// Truncates to the first `depth` components (an ancestor-or-self ID).
    /// Returns `None` if `depth` is zero or exceeds this node's depth.
    pub fn ancestor_at_depth(self, depth: usize) -> Option<DeweyRef<'a>> {
        if depth == 0 || depth > self.components.len() {
            None
        } else {
            DeweyRef::from_components(&self.components[..depth])
        }
    }

    /// Copies the components into an owning [`DeweyId`].
    pub fn to_owned(self) -> DeweyId {
        DeweyId { components: self.components.to_vec() }
    }
}

impl PartialOrd for DeweyRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic component order — equal to document (pre)order for nodes of
/// one document, with the caveat that an ancestor sorts before its
/// descendants.
impl Ord for DeweyRef<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(other.components)
    }
}

impl fmt::Display for DeweyRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DeweyRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeweyRef({self})")
    }
}

/// An owning Dewey identifier: the root has the one-component ID `[0]`; each
/// further component is the zero-based ordinal of the node among its
/// siblings. Use [`DeweyId::as_ref`] to run the slice-based operations of
/// [`DeweyRef`] without cloning.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DeweyId {
    components: Vec<u32>,
}

impl DeweyId {
    /// The ID of the document root element, `0`.
    pub fn root() -> Self {
        DeweyId { components: vec![0] }
    }

    /// Builds an ID from raw components. Returns `None` for an empty slice —
    /// the empty path identifies nothing.
    pub fn from_components(components: &[u32]) -> Option<Self> {
        if components.is_empty() {
            None
        } else {
            Some(DeweyId { components: components.to_vec() })
        }
    }

    /// The borrowed view of this ID.
    pub fn as_ref(&self) -> DeweyRef<'_> {
        DeweyRef { components: &self.components }
    }

    /// The raw components, outermost first.
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Depth of the node: the root has depth 1.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// The ID of this node's `ordinal`-th child.
    pub fn child(&self, ordinal: u32) -> Self {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(ordinal);
        DeweyId { components }
    }

    /// The parent's ID, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.components.len() <= 1 {
            None
        } else {
            Some(DeweyId { components: self.components[..self.components.len() - 1].to_vec() })
        }
    }

    /// Whether `self` is a proper ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        self.as_ref().is_ancestor_of(other.as_ref())
    }

    /// Whether `self` is `other` or an ancestor of it.
    pub fn is_ancestor_or_self_of(&self, other: &DeweyId) -> bool {
        self.as_ref().is_ancestor_or_self_of(other.as_ref())
    }

    /// The lowest common ancestor of two IDs: their longest common prefix.
    ///
    /// Two nodes of the same document always share at least the root
    /// component, so this returns `None` only when the IDs come from
    /// different documents (differing first components).
    pub fn lca(&self, other: &DeweyId) -> Option<DeweyId> {
        self.as_ref().lca(other.as_ref()).map(DeweyRef::to_owned)
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &DeweyId) -> usize {
        self.as_ref().common_prefix_len(other.as_ref())
    }

    /// Truncates the ID to its first `depth` components (an ancestor-or-self
    /// ID). Returns `None` if `depth` is zero or exceeds this node's depth.
    pub fn ancestor_at_depth(&self, depth: usize) -> Option<DeweyId> {
        self.as_ref().ancestor_at_depth(depth).map(DeweyRef::to_owned)
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic component order — equal to document (pre)order for nodes of
/// one document, with the caveat that an ancestor sorts before its
/// descendants.
impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl fmt::Display for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_ref(), f)
    }
}

impl fmt::Debug for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeweyId({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(cs: &[u32]) -> DeweyId {
        DeweyId::from_components(cs).unwrap()
    }

    #[test]
    fn root_and_children() {
        let root = DeweyId::root();
        assert_eq!(root.depth(), 1);
        assert_eq!(root.to_string(), "0");
        let c = root.child(2);
        assert_eq!(c.to_string(), "0.2");
        assert_eq!(c.parent(), Some(root.clone()));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn empty_components_rejected() {
        assert!(DeweyId::from_components(&[]).is_none());
        assert!(DeweyRef::from_components(&[]).is_none());
    }

    #[test]
    fn ancestor_relations() {
        let a = id(&[0, 1]);
        let b = id(&[0, 1, 3, 2]);
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_ancestor_or_self_of(&a));
        assert!(a.is_ancestor_or_self_of(&b));
        // Sibling subtrees are unrelated.
        assert!(!id(&[0, 1]).is_ancestor_of(&id(&[0, 2, 0])));
    }

    #[test]
    fn lca_is_longest_common_prefix() {
        let a = id(&[0, 1, 2, 5]);
        let b = id(&[0, 1, 3]);
        assert_eq!(a.lca(&b), Some(id(&[0, 1])));
        assert_eq!(a.lca(&a), Some(a.clone()));
        // Ancestor/descendant: LCA is the ancestor.
        assert_eq!(a.lca(&id(&[0, 1, 2])), Some(id(&[0, 1, 2])));
        // Different documents (different roots) share nothing.
        assert_eq!(id(&[0]).lca(&id(&[1])), None);
    }

    #[test]
    fn document_order_matches_lexicographic_intuition() {
        let mut ids = [id(&[0, 2]), id(&[0]), id(&[0, 1, 9]), id(&[0, 1])];
        ids.sort();
        let rendered: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
        assert_eq!(rendered, ["0", "0.1", "0.1.9", "0.2"]);
    }

    #[test]
    fn ancestor_at_depth_truncates() {
        let a = id(&[0, 4, 2]);
        assert_eq!(a.ancestor_at_depth(1), Some(id(&[0])));
        assert_eq!(a.ancestor_at_depth(2), Some(id(&[0, 4])));
        assert_eq!(a.ancestor_at_depth(3), Some(a.clone()));
        assert_eq!(a.ancestor_at_depth(0), None);
        assert_eq!(a.ancestor_at_depth(4), None);
    }

    #[test]
    fn common_prefix_len_counts_shared_components() {
        assert_eq!(id(&[0, 1, 2]).common_prefix_len(&id(&[0, 1, 3])), 2);
        assert_eq!(id(&[0]).common_prefix_len(&id(&[1])), 0);
        assert_eq!(id(&[0, 7]).common_prefix_len(&id(&[0, 7])), 2);
    }

    #[test]
    fn display_and_debug() {
        let a = id(&[0, 10, 3]);
        assert_eq!(a.to_string(), "0.10.3");
        assert_eq!(format!("{a:?}"), "DeweyId(0.10.3)");
        assert_eq!(a.as_ref().to_string(), "0.10.3");
        assert_eq!(format!("{:?}", a.as_ref()), "DeweyRef(0.10.3)");
    }

    #[test]
    fn borrowed_view_round_trips() {
        let a = id(&[0, 3, 1]);
        let r = a.as_ref();
        assert_eq!(r.components(), &[0, 3, 1]);
        assert_eq!(r.depth(), 3);
        assert_eq!(r.to_owned(), a);
    }

    #[test]
    fn borrowed_ops_match_owned_ops() {
        let cases: [&[u32]; 6] = [&[0], &[0, 1], &[0, 1, 2], &[0, 2], &[0, 1, 2, 5], &[1, 0]];
        for a in cases {
            for b in cases {
                let (oa, ob) = (id(a), id(b));
                let (ra, rb) = (oa.as_ref(), ob.as_ref());
                assert_eq!(ra.cmp(&rb), oa.cmp(&ob));
                assert_eq!(ra.is_ancestor_of(rb), oa.is_ancestor_of(&ob));
                assert_eq!(ra.is_ancestor_or_self_of(rb), oa.is_ancestor_or_self_of(&ob));
                assert_eq!(ra.lca(rb).map(DeweyRef::to_owned), oa.lca(&ob));
                assert_eq!(ra.common_prefix_len(rb), oa.common_prefix_len(&ob));
            }
        }
    }
}
