//! Arena-backed document object model over the interned-symbol substrate.
//!
//! A [`Document`] owns all nodes in a flat arena; nodes are addressed by the
//! copyable [`NodeId`] handle. Tag and attribute names are interned into the
//! document's [`Interner`] (one heap copy per *distinct* name, a 4-byte
//! [`Sym`] per occurrence), and every node's Dewey components live in one
//! contiguous `Vec<u32>` arena — [`Document::dewey`] returns a borrowed
//! [`DeweyRef`] slice, so document-order comparisons and LCA probes never
//! clone.
//!
//! Documents can be built programmatically (dataset generators do this) or by
//! the parser in [`crate::parse`].

use crate::dewey::DeweyRef;
use crate::interner::{Interner, Sym};
use std::fmt;

/// Handle to a node inside a [`Document`]'s arena.
///
/// `NodeId`s are only meaningful for the document that created them; using a
/// handle with a different document yields unspecified (but memory-safe)
/// results, like indexing a `Vec` with a stale index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from an arena index previously obtained via
    /// [`NodeId::index`] — e.g. when unpacking a compressed posting frame
    /// whose entries were validated against the document when it was built.
    /// Performs no bounds check; for untrusted indices use the checked
    /// [`Document::node_handle`] instead.
    pub fn from_index(index: u32) -> NodeId {
        NodeId(index)
    }
}

/// Interned node payload: an element (tag + attribute names as symbols) or
/// a text run. Attribute *values* and text stay owned — they are data, not
/// vocabulary, and rarely repeat.
#[derive(Debug, Clone)]
enum NodeRepr {
    Element { tag: Sym, attrs: Vec<(Sym, String)> },
    Text(String),
}

#[derive(Debug, Clone)]
struct NodeData {
    repr: NodeRepr,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Span of this node's Dewey components inside the document's flat
    /// Dewey arena.
    dewey_off: u32,
    dewey_len: u32,
}

/// An XML document: one root element plus its descendants.
#[derive(Debug, Clone)]
pub struct Document {
    symbols: Interner,
    nodes: Vec<NodeData>,
    dewey_arena: Vec<u32>,
    root: NodeId,
    /// Number of element nodes, maintained incrementally — the ranking
    /// scorer needs it per query, and recounting 10⁴ nodes per search was
    /// a measurable constant cost.
    element_count: usize,
}

/// Heap-size breakdown of a document's interned substrate, plus an estimate
/// of what the same tree costs in the pre-interning layout (owned `String`
/// tag per node, owned `Vec<u32>` Dewey per node). Produced by
/// [`Document::substrate_stats`]; the bench harness prints it so the
/// representation win stays visible on every PR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstrateStats {
    /// Total nodes (elements + text runs).
    pub nodes: usize,
    /// Distinct interned tag/attribute-name symbols.
    pub distinct_symbols: usize,
    /// Heap bytes of the symbol interner (arena + spans + hash index).
    pub interner_bytes: usize,
    /// Heap bytes of the flat Dewey component arena.
    pub dewey_bytes: usize,
    /// Heap bytes of owned text runs and attribute values.
    pub text_bytes: usize,
    /// Heap bytes of the node table itself (fixed-size records + child and
    /// attribute vectors).
    pub node_table_bytes: usize,
    /// Estimated heap bytes of the seed layout for the same tree: per node
    /// an owned tag `String` and an owned Dewey `Vec<u32>`, per attribute an
    /// owned name `String`.
    pub seed_equivalent_bytes: usize,
}

impl SubstrateStats {
    /// Total heap bytes of the interned substrate.
    pub fn interned_total(&self) -> usize {
        self.interner_bytes + self.dewey_bytes + self.text_bytes + self.node_table_bytes
    }
}

impl Document {
    /// Creates a document whose root element has tag `root_tag`.
    pub fn new(root_tag: impl AsRef<str>) -> Self {
        let mut symbols = Interner::new();
        let tag = symbols.intern(root_tag.as_ref());
        let root_data = NodeData {
            repr: NodeRepr::Element { tag, attrs: Vec::new() },
            parent: None,
            children: Vec::new(),
            dewey_off: 0,
            dewey_len: 1,
        };
        Document {
            symbols,
            nodes: vec![root_data],
            dewey_arena: vec![0],
            root: NodeId(0),
            element_count: 1,
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The root element, as an `Option` for symmetry with lookups that can
    /// fail. Always `Some` for a constructed document.
    pub fn root_element(&self) -> Option<NodeId> {
        Some(self.root)
    }

    /// Total number of nodes (elements + text runs) in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes (text runs excluded), maintained
    /// incrementally — `O(1)`, equal to
    /// `all_nodes().filter(|n| is_element(n)).count()`.
    pub fn element_count(&self) -> usize {
        self.element_count
    }

    /// Reconstructs a [`NodeId`] from its arena index, e.g. when loading a
    /// persisted index. Returns `None` when out of range.
    pub fn node_handle(&self, index: usize) -> Option<NodeId> {
        if index < self.nodes.len() {
            Some(NodeId(index as u32))
        } else {
            None
        }
    }

    /// Whether the document holds only the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// The document's symbol interner (tag and attribute names).
    pub fn interner(&self) -> &Interner {
        &self.symbols
    }

    /// The element tag, or `""` for a text node.
    pub fn tag(&self, id: NodeId) -> &str {
        match &self.data(id).repr {
            NodeRepr::Element { tag, .. } => self.symbols.resolve(*tag),
            NodeRepr::Text(_) => "",
        }
    }

    /// The element tag's interned symbol, or `None` for a text node.
    pub fn tag_sym(&self, id: NodeId) -> Option<Sym> {
        match &self.data(id).repr {
            NodeRepr::Element { tag, .. } => Some(*tag),
            NodeRepr::Text(_) => None,
        }
    }

    /// The text of a text node, or `None` for an element.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.data(id).repr {
            NodeRepr::Text(t) => Some(t),
            NodeRepr::Element { .. } => None,
        }
    }

    /// Whether `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.data(id).repr, NodeRepr::Element { .. })
    }

    /// Attributes of an element in document order, as resolved
    /// `(name, value)` pairs (empty for text nodes).
    pub fn attrs(&self, id: NodeId) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.attrs_syms(id).map(|(name, value)| (self.symbols.resolve(name), value))
    }

    /// Attributes of an element with interned name symbols (empty for text
    /// nodes).
    pub fn attrs_syms(&self, id: NodeId) -> impl Iterator<Item = (Sym, &str)> + '_ {
        let attrs: &[(Sym, String)] = match &self.data(id).repr {
            NodeRepr::Element { attrs, .. } => attrs,
            NodeRepr::Text(_) => &[],
        };
        attrs.iter().map(|(name, value)| (*name, value.as_str()))
    }

    /// Number of attributes on the node.
    pub fn attr_count(&self, id: NodeId) -> usize {
        match &self.data(id).repr {
            NodeRepr::Element { attrs, .. } => attrs.len(),
            NodeRepr::Text(_) => 0,
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        // A name that was never interned cannot be an attribute of any node.
        let sym = self.symbols.lookup(name)?;
        self.attrs_syms(id).find(|&(n, _)| n == sym).map(|(_, v)| v)
    }

    /// The node's parent, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// The node's children in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// Child *elements* in document order (text runs skipped).
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).iter().copied().filter(|&c| self.is_element(c))
    }

    /// First child element with the given tag.
    pub fn child_by_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        let sym = self.symbols.lookup(tag)?;
        self.child_elements(id).find(|&c| self.tag_sym(c) == Some(sym))
    }

    /// All child elements with the given tag.
    pub fn children_by_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.symbols.lookup(tag);
        self.child_elements(id).filter(move |&c| sym.is_some() && self.tag_sym(c) == sym)
    }

    /// The Dewey identifier assigned to this node, borrowed from the
    /// document's flat component arena.
    pub fn dewey(&self, id: NodeId) -> DeweyRef<'_> {
        let data = self.data(id);
        let off = data.dewey_off as usize;
        DeweyRef::from_components(&self.dewey_arena[off..off + data.dewey_len as usize])
            .expect("every node has at least one Dewey component")
    }

    /// Resolves Dewey components back to a node by walking from the root.
    ///
    /// Returns `None` if the path leaves the tree or does not start at the
    /// root component `0`.
    pub fn node_at(&self, dewey: DeweyRef<'_>) -> Option<NodeId> {
        let comps = dewey.components();
        if comps.first() != Some(&0) {
            return None;
        }
        let mut cur = self.root;
        for &ordinal in &comps[1..] {
            cur = *self.data(cur).children.get(ordinal as usize)?;
        }
        Some(cur)
    }

    /// Appends a child element to `parent`, returning the new node's handle.
    pub fn add_element(&mut self, parent: NodeId, tag: impl AsRef<str>) -> NodeId {
        let tag = self.symbols.intern(tag.as_ref());
        self.add_node(parent, NodeRepr::Element { tag, attrs: Vec::new() })
    }

    /// Appends a child element carrying attributes.
    pub fn add_element_with_attrs(
        &mut self,
        parent: NodeId,
        tag: impl AsRef<str>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        let tag = self.symbols.intern(tag.as_ref());
        let attrs =
            attrs.into_iter().map(|(name, value)| (self.symbols.intern(&name), value)).collect();
        self.add_node(parent, NodeRepr::Element { tag, attrs })
    }

    /// Appends a text child to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.add_node(parent, NodeRepr::Text(text.into()))
    }

    /// Convenience: appends `<tag>text</tag>` under `parent` and returns the
    /// element's handle.
    pub fn add_leaf(
        &mut self,
        parent: NodeId,
        tag: impl AsRef<str>,
        text: impl Into<String>,
    ) -> NodeId {
        let el = self.add_element(parent, tag);
        self.add_text(el, text);
        el
    }

    /// Adds an attribute to an existing element.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn set_attr(&mut self, id: NodeId, name: impl AsRef<str>, value: impl Into<String>) {
        let name = self.symbols.intern(name.as_ref());
        match &mut self.nodes[id.index()].repr {
            NodeRepr::Element { attrs, .. } => attrs.push((name, value.into())),
            NodeRepr::Text(_) => panic!("set_attr on a text node"),
        }
    }

    fn add_node(&mut self, parent: NodeId, repr: NodeRepr) -> NodeId {
        if matches!(repr, NodeRepr::Element { .. }) {
            self.element_count += 1;
        }
        let ordinal = self.data(parent).children.len() as u32;
        // Child components = parent components + ordinal, appended to the
        // flat arena (the arena only ever grows, so spans stay valid).
        let (poff, plen) = {
            let p = self.data(parent);
            (p.dewey_off as usize, p.dewey_len as usize)
        };
        let dewey_off = self.dewey_arena.len() as u32;
        self.dewey_arena.extend_from_within(poff..poff + plen);
        self.dewey_arena.push(ordinal);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            repr,
            parent: Some(parent),
            children: Vec::new(),
            dewey_off,
            dewey_len: (plen + 1) as u32,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Iterates the subtree rooted at `start` in document (pre)order,
    /// including `start` itself.
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![start] }
    }

    /// Iterates every node of the document in document order.
    pub fn all_nodes(&self) -> Descendants<'_> {
        self.descendants(self.root)
    }

    /// Concatenated text content of the subtree rooted at `id`, with single
    /// spaces between adjacent text runs.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for node in self.descendants(id) {
            if let Some(t) = self.text(node) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// Whether the element's children are all text nodes (or it has none).
    /// Text nodes themselves are not leaves in this sense.
    pub fn is_leaf_element(&self, id: NodeId) -> bool {
        self.is_element(id) && self.children(id).iter().all(|&c| !self.is_element(c))
    }

    /// Depth of the node (root = 1).
    pub fn depth(&self, id: NodeId) -> usize {
        self.data(id).dewey_len as usize
    }

    /// The path of tags from the root to `id`, e.g. `["products", "product",
    /// "name"]`. Text nodes contribute nothing and return the path to their
    /// parent element.
    pub fn tag_path(&self, id: NodeId) -> Vec<&str> {
        let mut path = Vec::with_capacity(self.depth(id));
        let mut cur = Some(id);
        while let Some(n) = cur {
            if self.is_element(n) {
                path.push(self.tag(n));
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }

    /// Measures the heap footprint of the interned substrate and estimates
    /// the cost of the pre-interning layout for the same tree.
    pub fn substrate_stats(&self) -> SubstrateStats {
        use std::mem::size_of;
        let mut text_bytes = 0usize;
        let mut node_table_bytes = self.nodes.capacity() * size_of::<NodeData>();
        let mut seed_equivalent = 0usize;
        const STRING_HEADER: usize = size_of::<String>(); // ptr + cap + len
        const VEC_HEADER: usize = size_of::<Vec<u32>>();
        for node in &self.nodes {
            node_table_bytes += node.children.capacity() * size_of::<NodeId>();
            // Seed layout: per-node owned DeweyId (Vec<u32> heap block; the
            // header lived inline in NodeData, which the flat spans replace).
            seed_equivalent += node.dewey_len as usize * size_of::<u32>();
            seed_equivalent += node.children.capacity() * size_of::<NodeId>();
            match &node.repr {
                NodeRepr::Element { tag, attrs } => {
                    node_table_bytes += attrs.capacity() * size_of::<(Sym, String)>();
                    for (name, value) in attrs {
                        text_bytes += value.capacity();
                        // Seed: owned name String per attribute occurrence.
                        seed_equivalent += self.symbols.resolve(*name).len() + STRING_HEADER;
                        seed_equivalent += value.capacity() + STRING_HEADER;
                    }
                    // Seed: owned tag String per element.
                    seed_equivalent += self.symbols.resolve(*tag).len();
                }
                NodeRepr::Text(t) => {
                    text_bytes += t.capacity();
                    seed_equivalent += t.capacity();
                }
            }
        }
        // Seed NodeData was larger by one String header (tag) and one Vec
        // header (DeweyId) than the interned record per node.
        seed_equivalent += self.nodes.capacity()
            * (size_of::<NodeData>() + STRING_HEADER + VEC_HEADER
                - size_of::<Sym>()
                - 2 * size_of::<u32>());
        SubstrateStats {
            nodes: self.nodes.len(),
            distinct_symbols: self.symbols.len(),
            interner_bytes: self.symbols.heap_bytes(),
            dewey_bytes: self.dewey_arena.capacity() * size_of::<u32>(),
            text_bytes,
            node_table_bytes,
            seed_equivalent_bytes: seed_equivalent,
        }
    }
}

/// Pre-order iterator over a subtree. Created by [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children in reverse so the first child is popped first.
        self.stack.extend(self.doc.children(next).iter().rev());
        Some(next)
    }
}

impl fmt::Display for Document {
    /// Displays the document as compact XML (no pretty-printing).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opts = crate::writer::WriteOptions::compact();
        f.write_str(&crate::writer::write_document(self, &opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dewey::DeweyId;

    #[test]
    fn element_count_is_maintained_incrementally() {
        let (doc, ..) = sample();
        assert_eq!(doc.element_count(), doc.all_nodes().filter(|&n| doc.is_element(n)).count());
        assert_eq!(doc.element_count(), 4, "shop + product + name + rating; text excluded");
        let fresh = Document::new("r");
        assert_eq!(fresh.element_count(), 1);
    }

    /// `<shop><product id="1"><name>TomTom</name><rating>4.2</rating></product>text</shop>`
    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new("shop");
        let root = doc.root();
        let product = doc.add_element_with_attrs(root, "product", vec![("id".into(), "1".into())]);
        let name = doc.add_leaf(product, "name", "TomTom");
        doc.add_leaf(product, "rating", "4.2");
        doc.add_text(root, "text");
        (doc, root, product, name)
    }

    #[test]
    fn construction_links_parents_and_children() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.parent(root), None);
        assert_eq!(doc.parent(product), Some(root));
        assert_eq!(doc.parent(name), Some(product));
        assert_eq!(doc.children(root).len(), 2);
        assert_eq!(doc.children(product).len(), 2);
        assert_eq!(doc.len(), 7);
        assert!(!doc.is_empty());
        assert!(Document::new("x").is_empty());
    }

    #[test]
    fn dewey_ids_follow_child_ordinals() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.dewey(root).to_string(), "0");
        assert_eq!(doc.dewey(product).to_string(), "0.0");
        assert_eq!(doc.dewey(name).to_string(), "0.0.0");
        let rating = doc.child_by_tag(product, "rating").unwrap();
        assert_eq!(doc.dewey(rating).to_string(), "0.0.1");
    }

    #[test]
    fn node_at_inverts_dewey() {
        let (doc, _, _, _) = sample();
        for node in doc.all_nodes() {
            assert_eq!(doc.node_at(doc.dewey(node)), Some(node));
        }
    }

    #[test]
    fn node_at_rejects_bad_paths() {
        let (doc, _, _, _) = sample();
        let at = |cs: &[u32]| doc.node_at(DeweyId::from_components(cs).unwrap().as_ref());
        assert_eq!(at(&[1]), None);
        assert_eq!(at(&[0, 9]), None);
        assert_eq!(at(&[0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn attributes_lookup() {
        let (doc, _, product, _) = sample();
        assert_eq!(doc.attr(product, "id"), Some("1"));
        assert_eq!(doc.attr(product, "missing"), None);
        assert_eq!(doc.attr_count(product), 1);
        assert_eq!(doc.attrs(product).collect::<Vec<_>>(), [("id", "1")]);
    }

    #[test]
    fn set_attr_appends() {
        let (mut doc, _, product, name) = sample();
        doc.set_attr(product, "lang", "en");
        assert_eq!(doc.attr(product, "lang"), Some("en"));
        assert_eq!(doc.attr_count(product), 2);
        // Text node under `name` cannot take attributes.
        let text_node = doc.children(name)[0];
        assert!(!doc.is_element(text_node));
    }

    #[test]
    #[should_panic(expected = "set_attr on a text node")]
    fn set_attr_panics_on_text() {
        let (mut doc, root, _, _) = sample();
        let t = doc.add_text(root, "x");
        doc.set_attr(t, "a", "b");
    }

    #[test]
    fn text_accessors() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.text(name), None);
        let text_node = doc.children(name)[0];
        assert_eq!(doc.text(text_node), Some("TomTom"));
        assert_eq!(doc.tag(text_node), "");
        assert_eq!(doc.text_content(product), "TomTom 4.2");
        assert_eq!(doc.text_content(root), "TomTom 4.2 text");
    }

    #[test]
    fn preorder_traversal_order() {
        let (doc, root, _, _) = sample();
        let tags: Vec<String> = doc
            .descendants(root)
            .map(|n| {
                if doc.is_element(n) {
                    doc.tag(n).to_string()
                } else {
                    format!("#{}", doc.text(n).unwrap())
                }
            })
            .collect();
        assert_eq!(tags, ["shop", "product", "name", "#TomTom", "rating", "#4.2", "#text"]);
    }

    #[test]
    fn child_queries() {
        let (doc, root, product, _) = sample();
        assert_eq!(doc.child_elements(root).count(), 1);
        assert_eq!(doc.child_by_tag(product, "name").map(|n| doc.tag(n)), Some("name"));
        assert_eq!(doc.child_by_tag(product, "nope"), None);
        assert_eq!(doc.children_by_tag(product, "rating").count(), 1);
        assert_eq!(doc.children_by_tag(product, "never_interned").count(), 0);
    }

    #[test]
    fn leaf_detection() {
        let (doc, root, product, name) = sample();
        assert!(doc.is_leaf_element(name));
        assert!(!doc.is_leaf_element(product));
        assert!(!doc.is_leaf_element(root));
        let text_node = doc.children(name)[0];
        assert!(!doc.is_leaf_element(text_node));
        // An empty element is a leaf.
        let mut d2 = Document::new("a");
        let e = d2.add_element(d2.root(), "empty");
        assert!(d2.is_leaf_element(e));
    }

    #[test]
    fn tag_path_skips_text() {
        let (doc, _, product, name) = sample();
        assert_eq!(doc.tag_path(name), ["shop", "product", "name"]);
        let text_node = doc.children(name)[0];
        assert_eq!(doc.tag_path(text_node), ["shop", "product", "name"]);
        assert_eq!(doc.tag_path(product), ["shop", "product"]);
    }

    #[test]
    fn depth_matches_dewey() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.depth(root), 1);
        assert_eq!(doc.depth(product), 2);
        assert_eq!(doc.depth(name), 3);
    }

    #[test]
    fn tags_share_one_symbol() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let a = doc.add_element(root, "item");
        let b = doc.add_element(root, "item");
        assert_eq!(doc.tag_sym(a), doc.tag_sym(b));
        assert_ne!(doc.tag_sym(a), doc.tag_sym(root));
        let t = doc.add_text(root, "x");
        assert_eq!(doc.tag_sym(t), None);
        // Three distinct names: r, item (x is text, not vocabulary).
        assert_eq!(doc.interner().len(), 2);
    }

    #[test]
    fn attrs_syms_resolve_through_interner() {
        let (doc, _, product, _) = sample();
        let (name_sym, value) = doc.attrs_syms(product).next().unwrap();
        assert_eq!(doc.interner().resolve(name_sym), "id");
        assert_eq!(value, "1");
    }

    #[test]
    fn dewey_components_live_in_one_arena() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.dewey(root).components(), &[0]);
        assert_eq!(doc.dewey(product).components(), &[0, 0]);
        assert_eq!(doc.dewey(name).components(), &[0, 0, 0]);
        // Borrowed refs from the same document compare without cloning.
        assert!(doc.dewey(root) < doc.dewey(product));
        assert!(doc.dewey(root).is_ancestor_of(doc.dewey(name)));
    }

    #[test]
    fn substrate_stats_report_a_win_on_repetitive_trees() {
        let mut doc = Document::new("shop");
        let root = doc.root();
        for i in 0..200 {
            let p = doc.add_element(root, "product");
            doc.add_leaf(p, "name", format!("Item {i}"));
            doc.add_leaf(p, "rating", "4.2");
        }
        let stats = doc.substrate_stats();
        assert_eq!(stats.nodes, doc.len());
        assert_eq!(stats.distinct_symbols, 4); // shop, product, name, rating
        assert!(stats.interned_total() > 0);
        // The whole point: repeated vocabulary makes the interned layout
        // strictly smaller than one owned String + Vec per node.
        assert!(
            stats.interned_total() < stats.seed_equivalent_bytes,
            "interned {} vs seed {}",
            stats.interned_total(),
            stats.seed_equivalent_bytes
        );
    }
}
