//! Arena-backed document object model.
//!
//! A [`Document`] owns all nodes in a flat arena; nodes are addressed by the
//! copyable [`NodeId`] handle. Every node carries the [`DeweyId`] assigned at
//! construction time, which the search layer uses for SLCA computation.
//!
//! Documents can be built programmatically (dataset generators do this) or by
//! the parser in [`crate::parse`].

use crate::dewey::DeweyId;
use std::fmt;

/// Handle to a node inside a [`Document`]'s arena.
///
/// `NodeId`s are only meaningful for the document that created them; using a
/// handle with a different document yields unspecified (but memory-safe)
/// results, like indexing a `Vec` with a stale index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is: an element with a tag and attributes, or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node, e.g. `<product id="3">`.
    Element {
        /// Tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// A text node. Entity references have already been resolved.
    Text(String),
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    dewey: DeweyId,
}

/// An XML document: one root element plus its descendants.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl Document {
    /// Creates a document whose root element has tag `root_tag`.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let root_data = NodeData {
            kind: NodeKind::Element { tag: root_tag.into(), attrs: Vec::new() },
            parent: None,
            children: Vec::new(),
            dewey: DeweyId::root(),
        };
        Document { nodes: vec![root_data], root: NodeId(0) }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The root element, as an `Option` for symmetry with lookups that can
    /// fail. Always `Some` for a constructed document.
    pub fn root_element(&self) -> Option<NodeId> {
        Some(self.root)
    }

    /// Total number of nodes (elements + text runs) in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Reconstructs a [`NodeId`] from its arena index, e.g. when loading a
    /// persisted index. Returns `None` when out of range.
    pub fn node_handle(&self, index: usize) -> Option<NodeId> {
        if index < self.nodes.len() {
            Some(NodeId(index as u32))
        } else {
            None
        }
    }

    /// Whether the document holds only the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// The element tag, or `""` for a text node.
    pub fn tag(&self, id: NodeId) -> &str {
        match &self.data(id).kind {
            NodeKind::Element { tag, .. } => tag,
            NodeKind::Text(_) => "",
        }
    }

    /// The text of a text node, or `None` for an element.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.data(id).kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// Whether `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.data(id).kind, NodeKind::Element { .. })
    }

    /// Attributes of an element (empty slice for text nodes).
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        match &self.data(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id).iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The node's parent, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// The node's children in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// Child *elements* in document order (text runs skipped).
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).iter().copied().filter(|&c| self.is_element(c))
    }

    /// First child element with the given tag.
    pub fn child_by_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        self.child_elements(id).find(|&c| self.tag(c) == tag)
    }

    /// All child elements with the given tag.
    pub fn children_by_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id).filter(move |&c| self.tag(c) == tag)
    }

    /// The Dewey identifier assigned to this node.
    pub fn dewey(&self, id: NodeId) -> &DeweyId {
        &self.data(id).dewey
    }

    /// Resolves a Dewey ID back to a node by walking from the root.
    ///
    /// Returns `None` if the path leaves the tree or does not start at the
    /// root component `0`.
    pub fn node_at(&self, dewey: &DeweyId) -> Option<NodeId> {
        let comps = dewey.components();
        if comps.first() != Some(&0) {
            return None;
        }
        let mut cur = self.root;
        for &ordinal in &comps[1..] {
            cur = *self.data(cur).children.get(ordinal as usize)?;
        }
        Some(cur)
    }

    /// Appends a child element to `parent`, returning the new node's handle.
    pub fn add_element(&mut self, parent: NodeId, tag: impl Into<String>) -> NodeId {
        self.add_node(parent, NodeKind::Element { tag: tag.into(), attrs: Vec::new() })
    }

    /// Appends a child element carrying attributes.
    pub fn add_element_with_attrs(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.add_node(parent, NodeKind::Element { tag: tag.into(), attrs })
    }

    /// Appends a text child to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.add_node(parent, NodeKind::Text(text.into()))
    }

    /// Convenience: appends `<tag>text</tag>` under `parent` and returns the
    /// element's handle.
    pub fn add_leaf(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        text: impl Into<String>,
    ) -> NodeId {
        let el = self.add_element(parent, tag);
        self.add_text(el, text);
        el
    }

    /// Adds an attribute to an existing element.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attrs, .. } => attrs.push((name.into(), value.into())),
            NodeKind::Text(_) => panic!("set_attr on a text node"),
        }
    }

    fn add_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let ordinal = self.data(parent).children.len() as u32;
        let dewey = self.data(parent).dewey.child(ordinal);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { kind, parent: Some(parent), children: Vec::new(), dewey });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Iterates the subtree rooted at `start` in document (pre)order,
    /// including `start` itself.
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![start] }
    }

    /// Iterates every node of the document in document order.
    pub fn all_nodes(&self) -> Descendants<'_> {
        self.descendants(self.root)
    }

    /// Concatenated text content of the subtree rooted at `id`, with single
    /// spaces between adjacent text runs.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for node in self.descendants(id) {
            if let Some(t) = self.text(node) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// Whether the element's children are all text nodes (or it has none).
    /// Text nodes themselves are not leaves in this sense.
    pub fn is_leaf_element(&self, id: NodeId) -> bool {
        self.is_element(id) && self.children(id).iter().all(|&c| !self.is_element(c))
    }

    /// Depth of the node (root = 1).
    pub fn depth(&self, id: NodeId) -> usize {
        self.data(id).dewey.depth()
    }

    /// The path of tags from the root to `id`, e.g. `["products", "product",
    /// "name"]`. Text nodes contribute nothing and return the path to their
    /// parent element.
    pub fn tag_path(&self, id: NodeId) -> Vec<&str> {
        let mut path = Vec::with_capacity(self.depth(id));
        let mut cur = Some(id);
        while let Some(n) = cur {
            if self.is_element(n) {
                path.push(self.tag(n));
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }
}

/// Pre-order iterator over a subtree. Created by [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children in reverse so the first child is popped first.
        self.stack.extend(self.doc.children(next).iter().rev());
        Some(next)
    }
}

impl fmt::Display for Document {
    /// Displays the document as compact XML (no pretty-printing).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opts = crate::writer::WriteOptions::compact();
        f.write_str(&crate::writer::write_document(self, &opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `<shop><product id="1"><name>TomTom</name><rating>4.2</rating></product>text</shop>`
    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new("shop");
        let root = doc.root();
        let product = doc.add_element_with_attrs(root, "product", vec![("id".into(), "1".into())]);
        let name = doc.add_leaf(product, "name", "TomTom");
        doc.add_leaf(product, "rating", "4.2");
        doc.add_text(root, "text");
        (doc, root, product, name)
    }

    #[test]
    fn construction_links_parents_and_children() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.parent(root), None);
        assert_eq!(doc.parent(product), Some(root));
        assert_eq!(doc.parent(name), Some(product));
        assert_eq!(doc.children(root).len(), 2);
        assert_eq!(doc.children(product).len(), 2);
        assert_eq!(doc.len(), 7);
        assert!(!doc.is_empty());
        assert!(Document::new("x").is_empty());
    }

    #[test]
    fn dewey_ids_follow_child_ordinals() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.dewey(root).to_string(), "0");
        assert_eq!(doc.dewey(product).to_string(), "0.0");
        assert_eq!(doc.dewey(name).to_string(), "0.0.0");
        let rating = doc.child_by_tag(product, "rating").unwrap();
        assert_eq!(doc.dewey(rating).to_string(), "0.0.1");
    }

    #[test]
    fn node_at_inverts_dewey() {
        let (doc, _, _, _) = sample();
        for node in doc.all_nodes() {
            assert_eq!(doc.node_at(doc.dewey(node)), Some(node));
        }
    }

    #[test]
    fn node_at_rejects_bad_paths() {
        let (doc, _, _, _) = sample();
        assert_eq!(doc.node_at(&DeweyId::from_components(&[1]).unwrap()), None);
        assert_eq!(doc.node_at(&DeweyId::from_components(&[0, 9]).unwrap()), None);
        assert_eq!(doc.node_at(&DeweyId::from_components(&[0, 0, 0, 0, 0]).unwrap()), None);
    }

    #[test]
    fn attributes_lookup() {
        let (doc, _, product, _) = sample();
        assert_eq!(doc.attr(product, "id"), Some("1"));
        assert_eq!(doc.attr(product, "missing"), None);
        assert_eq!(doc.attrs(product).len(), 1);
    }

    #[test]
    fn set_attr_appends() {
        let (mut doc, _, product, name) = sample();
        doc.set_attr(product, "lang", "en");
        assert_eq!(doc.attr(product, "lang"), Some("en"));
        assert_eq!(doc.attrs(product).len(), 2);
        // Text node under `name` cannot take attributes.
        let text_node = doc.children(name)[0];
        assert!(!doc.is_element(text_node));
    }

    #[test]
    #[should_panic(expected = "set_attr on a text node")]
    fn set_attr_panics_on_text() {
        let (mut doc, root, _, _) = sample();
        let t = doc.add_text(root, "x");
        doc.set_attr(t, "a", "b");
    }

    #[test]
    fn text_accessors() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.text(name), None);
        let text_node = doc.children(name)[0];
        assert_eq!(doc.text(text_node), Some("TomTom"));
        assert_eq!(doc.tag(text_node), "");
        assert_eq!(doc.text_content(product), "TomTom 4.2");
        assert_eq!(doc.text_content(root), "TomTom 4.2 text");
    }

    #[test]
    fn preorder_traversal_order() {
        let (doc, root, _, _) = sample();
        let tags: Vec<String> = doc
            .descendants(root)
            .map(|n| {
                if doc.is_element(n) {
                    doc.tag(n).to_string()
                } else {
                    format!("#{}", doc.text(n).unwrap())
                }
            })
            .collect();
        assert_eq!(tags, ["shop", "product", "name", "#TomTom", "rating", "#4.2", "#text"]);
    }

    #[test]
    fn child_queries() {
        let (doc, root, product, _) = sample();
        assert_eq!(doc.child_elements(root).count(), 1);
        assert_eq!(doc.child_by_tag(product, "name").map(|n| doc.tag(n)), Some("name"));
        assert_eq!(doc.child_by_tag(product, "nope"), None);
        assert_eq!(doc.children_by_tag(product, "rating").count(), 1);
    }

    #[test]
    fn leaf_detection() {
        let (doc, root, product, name) = sample();
        assert!(doc.is_leaf_element(name));
        assert!(!doc.is_leaf_element(product));
        assert!(!doc.is_leaf_element(root));
        let text_node = doc.children(name)[0];
        assert!(!doc.is_leaf_element(text_node));
        // An empty element is a leaf.
        let mut d2 = Document::new("a");
        let e = d2.add_element(d2.root(), "empty");
        assert!(d2.is_leaf_element(e));
    }

    #[test]
    fn tag_path_skips_text() {
        let (doc, _, product, name) = sample();
        assert_eq!(doc.tag_path(name), ["shop", "product", "name"]);
        let text_node = doc.children(name)[0];
        assert_eq!(doc.tag_path(text_node), ["shop", "product", "name"]);
        assert_eq!(doc.tag_path(product), ["shop", "product"]);
    }

    #[test]
    fn depth_matches_dewey() {
        let (doc, root, product, name) = sample();
        assert_eq!(doc.depth(root), 1);
        assert_eq!(doc.depth(product), 2);
        assert_eq!(doc.depth(name), 3);
    }
}
