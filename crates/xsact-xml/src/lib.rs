//! Minimal XML substrate for XSACT.
//!
//! The XSACT pipeline consumes structured data stored as XML (the paper's
//! Product Reviews, Outdoor Retailer and IMDB movie datasets). This crate
//! provides everything the upper layers need and nothing more:
//!
//! * a streaming [`tokenizer`] producing [`Token`]s,
//! * a parser ([`parse`]) building a [`Document`] — an arena-backed
//!   DOM whose nodes carry Dewey labels (the node encoding used by the
//!   SLCA algorithms in `xsact-index`),
//! * an [`Interner`] of 4-byte [`Sym`] handles — tag and attribute names
//!   are interned per document, and every node's Dewey components live in
//!   one flat `u32` arena exposed as borrowed [`DeweyRef`] slices,
//! * entity [`escape`]/unescape helpers,
//! * a [`writer`] that serialises a document back to text.
//!
//! The crate is dependency-free by design (see `DESIGN.md` §2): the node
//! model is tailored to keyword search (element + text nodes, attributes
//! folded into child elements at parse time is *not* done — attributes are
//! preserved, the search layer decides how to treat them).
//!
//! # Example
//!
//! ```
//! use xsact_xml::parse_document;
//!
//! let doc = parse_document("<products><product><name>TomTom</name></product></products>")
//!     .expect("well-formed");
//! let root = doc.root_element().expect("has a root");
//! assert_eq!(doc.tag(root), "products");
//! ```

pub mod dewey;
pub mod dom;
pub mod error;
pub mod escape;
pub mod interner;
pub mod parse;
pub mod path;
pub mod tokenizer;
pub mod writer;

pub use dewey::{DeweyId, DeweyRef};
pub use dom::{Document, NodeId, SubstrateStats};
pub use error::{XmlError, XmlResult};
pub use interner::{FnvHasher, Interner, Sym};
pub use parse::parse_document;
pub use tokenizer::{Token, Tokenizer};
pub use writer::{write_document, WriteOptions};
