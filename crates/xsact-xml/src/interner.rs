//! String interning — the shared-symbol substrate of the whole pipeline.
//!
//! Data-centric XML repeats the same handful of tag and attribute names
//! thousands of times (`review`, `pros`, `compact`, …). Storing each
//! occurrence as an owned `String` costs a heap allocation, 24 bytes of
//! `String` header and a pointer chase per access. An [`Interner`] stores
//! every distinct string **once** in a contiguous arena and hands out the
//! copyable 4-byte [`Sym`] handle instead; equality of symbols is integer
//! equality, and resolving a symbol is one bounds-checked slice.
//!
//! Two layers own interners:
//!
//! * every [`Document`](crate::Document) interns its tag and attribute
//!   names at construction time,
//! * the inverted index in `xsact-index` interns normalised query terms.
//!
//! Symbols are only meaningful for the interner that created them — mixing
//! symbols across interners is memory-safe but yields nonsense, exactly
//! like indexing a `Vec` with a stale index.

use std::collections::HashMap;
use std::fmt;

/// A interned string handle: 4 bytes, `Copy`, integer comparisons.
///
/// Symbols are assigned densely in first-intern order, so they double as
/// indices into side tables (`Vec`s indexed by [`Sym::index`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (`0..interner.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from its dense index, e.g. when loading a
    /// persisted symbol table. The caller must ensure the index came from
    /// the same interner.
    pub fn from_index(index: usize) -> Sym {
        Sym(index as u32)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A string interner over one contiguous arena.
///
/// Layout: all distinct strings concatenated in one `String`, a span table
/// `(offset, len)` per symbol, and an FNV-style multiplicative hash index
/// mapping string hashes to candidate symbols (collisions resolved by
/// comparison against the arena, so no owned key duplicates the arena
/// bytes).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    arena: String,
    spans: Vec<(u32, u32)>,
    index: HashMap<u64, Vec<Sym>>,
}

/// The workspace's shared FNV-style incremental hasher, used by the
/// interner's bucket index and by the index fingerprint in `xsact-index`.
///
/// The multiplier differs from the canonical 64-bit FNV prime
/// (`0x100_0000_01b3`) by one digit — it is kept for compatibility with
/// the fingerprints the persistence layer has always produced, and every
/// hash is only ever compared against hashes produced by this same type,
/// so self-consistency is all that matters.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// The accumulated hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher::new()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hasher = FnvHasher::new();
    hasher.write(s.as_bytes());
    hasher.finish()
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning the existing symbol when the string was seen
    /// before.
    pub fn intern(&mut self, s: &str) -> Sym {
        let hash = fnv1a(s);
        if let Some(candidates) = self.index.get(&hash) {
            for &sym in candidates {
                if self.resolve(sym) == s {
                    return sym;
                }
            }
        }
        let sym = Sym(self.spans.len() as u32);
        let offset = self.arena.len() as u32;
        self.arena.push_str(s);
        self.spans.push((offset, s.len() as u32));
        self.index.entry(hash).or_default().push(sym);
        sym
    }

    /// The symbol of `s`, if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.index.get(&fnv1a(s))?.iter().copied().find(|&sym| self.resolve(sym) == s)
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (out of range).
    pub fn resolve(&self, sym: Sym) -> &str {
        let (offset, len) = self.spans[sym.index()];
        &self.arena[offset as usize..(offset + len) as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates `(symbol, string)` pairs in first-intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        (0..self.spans.len()).map(|i| (Sym(i as u32), self.resolve(Sym(i as u32))))
    }

    /// Heap bytes held by the interner (arena + span table + hash index),
    /// for the substrate-footprint statistics.
    pub fn heap_bytes(&self) -> usize {
        self.arena.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.index.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<Sym>>())
            + self.index.values().map(|v| v.capacity() * std::mem::size_of::<Sym>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("review");
        let b = i.intern("pros");
        let a2 = i.intern("review");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "review");
        assert_eq!(i.resolve(b), "pros");
    }

    #[test]
    fn lookup_without_insertion() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let x = i.intern("x");
        assert_eq!(i.lookup("x"), Some(x));
        assert_eq!(i.lookup("y"), None);
        assert_eq!(i.len(), 1, "lookup must not intern");
    }

    #[test]
    fn symbols_are_dense_first_seen_indices() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["a", "b", "c", "b", "a"].iter().map(|s| i.intern(s)).collect();
        assert_eq!(syms.iter().map(|s| s.index()).collect::<Vec<_>>(), [0, 1, 2, 1, 0]);
        assert_eq!(Sym::from_index(2), syms[2]);
    }

    #[test]
    fn iteration_is_first_intern_order() {
        let mut i = Interner::new();
        for s in ["zeta", "alpha", "mid"] {
            i.intern(s);
        }
        let strings: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(strings, ["zeta", "alpha", "mid"]);
    }

    #[test]
    fn empty_string_and_unicode() {
        let mut i = Interner::new();
        let e = i.intern("");
        let u = i.intern("été");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.resolve(u), "été");
        assert_eq!(i.intern(""), e);
        assert!(!i.is_empty());
    }

    #[test]
    fn survives_many_distinct_strings() {
        // Exercises hash-bucket collision handling paths.
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..2000).map(|n| i.intern(&format!("t{n}"))).collect();
        assert_eq!(i.len(), 2000);
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(sym), format!("t{n}"));
            assert_eq!(i.lookup(&format!("t{n}")), Some(sym));
        }
        assert!(i.heap_bytes() > 0);
    }
}
