//! Serialising a [`Document`] back to XML text.

use crate::dom::{Document, NodeId};
use crate::escape::{escape_attr, escape_text};

/// Controls the output format of [`write_document`].
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indentation per nesting level; `None` writes everything on one line.
    pub indent: Option<usize>,
    /// Whether to emit an `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
}

impl WriteOptions {
    /// Single-line output, no declaration. Round-trips through the parser.
    pub fn compact() -> Self {
        WriteOptions { indent: None, declaration: false }
    }

    /// Two-space indentation with an XML declaration.
    pub fn pretty() -> Self {
        WriteOptions { indent: Some(2), declaration: true }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::compact()
    }
}

/// Serialises the whole document.
///
/// With `WriteOptions::compact()` the output parses back to an equivalent
/// document (same tree shape, tags, attributes and text).
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    if opts.declaration {
        // No explicit newline: `indent` adds one before the root element
        // whenever pretty-printing is on.
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    }
    write_node(doc, doc.root(), opts, 0, &mut out);
    out
}

/// Serialises the subtree rooted at `node` (compact form).
pub fn write_subtree(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, node, &WriteOptions::compact(), 0, &mut out);
    out
}

fn write_node(doc: &Document, node: NodeId, opts: &WriteOptions, level: usize, out: &mut String) {
    if let Some(t) = doc.text(node) {
        indent(opts, level, out);
        out.push_str(&escape_text(t));
        return;
    }
    let tag = doc.tag(node);
    indent(opts, level, out);
    out.push('<');
    out.push_str(tag);
    for (name, value) in doc.attrs(node) {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape_attr(value));
        out.push('"');
    }
    let children = doc.children(node);
    if children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    // A single text child stays inline even in pretty mode, so leaf
    // values read naturally: <name>TomTom</name>.
    let single_text = children.len() == 1 && doc.text(children[0]).is_some();
    if single_text {
        out.push_str(&escape_text(doc.text(children[0]).expect("checked")));
    } else {
        for &child in children {
            write_node(doc, child, opts, level + 1, out);
        }
        indent(opts, level, out);
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

fn indent(opts: &WriteOptions, level: usize, out: &mut String) {
    if let Some(width) = opts.indent {
        if !out.is_empty() {
            out.push('\n');
        }
        out.extend(std::iter::repeat_n(' ', level * width));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn sample() -> Document {
        let mut doc = Document::new("shop");
        let root = doc.root();
        let p = doc.add_element_with_attrs(root, "product", vec![("id".into(), "1".into())]);
        doc.add_leaf(p, "name", "TomTom Go 630");
        doc.add_leaf(p, "note", "fast & \"cheap\" <deal>");
        doc.add_element(root, "empty");
        doc
    }

    #[test]
    fn compact_output() {
        let doc = sample();
        let xml = write_document(&doc, &WriteOptions::compact());
        assert_eq!(
            xml,
            "<shop><product id=\"1\"><name>TomTom Go 630</name>\
             <note>fast &amp; \"cheap\" &lt;deal&gt;</note></product><empty/></shop>"
        );
    }

    #[test]
    fn compact_round_trips() {
        let doc = sample();
        let xml = write_document(&doc, &WriteOptions::compact());
        let reparsed = parse_document(&xml).unwrap();
        assert_eq!(write_document(&reparsed, &WriteOptions::compact()), xml);
        assert_eq!(reparsed.len(), doc.len());
    }

    #[test]
    fn pretty_output_shape() {
        let doc = sample();
        let xml = write_document(&doc, &WriteOptions::pretty());
        let lines: Vec<&str> = xml.lines().collect();
        assert_eq!(lines[0], "<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        assert_eq!(lines[1], "<shop>");
        assert_eq!(lines[2], "  <product id=\"1\">");
        assert_eq!(lines[3], "    <name>TomTom Go 630</name>");
        assert!(lines.last().unwrap().starts_with("</shop>"));
        // Pretty output still parses back to the same structure.
        let reparsed = parse_document(&xml).unwrap();
        assert_eq!(reparsed.children_by_tag(reparsed.root(), "product").count(), 1);
    }

    #[test]
    fn attribute_values_escaped() {
        let mut doc = Document::new("a");
        let root = doc.root();
        doc.set_attr(root, "q", "say \"hi\" & <go>");
        let xml = write_document(&doc, &WriteOptions::compact());
        assert_eq!(xml, "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\"/>");
        let reparsed = parse_document(&xml).unwrap();
        assert_eq!(reparsed.attr(reparsed.root(), "q"), Some("say \"hi\" & <go>"));
    }

    #[test]
    fn write_subtree_extracts_fragment() {
        let doc = sample();
        let p = doc.child_by_tag(doc.root(), "product").unwrap();
        let xml = write_subtree(&doc, p);
        assert!(xml.starts_with("<product id=\"1\">"));
        assert!(xml.ends_with("</product>"));
        // A subtree is itself a well-formed document.
        assert!(parse_document(&xml).is_ok());
    }

    #[test]
    fn display_uses_compact_writer() {
        let doc = sample();
        assert_eq!(doc.to_string(), write_document(&doc, &WriteOptions::compact()));
    }
}
