//! Error type shared by the tokenizer, parser and writer.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error encountered while tokenizing or parsing XML text.
///
/// Every variant carries the byte offset at which the problem was detected so
/// callers can point at the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct (tag, comment, CDATA, ...).
    UnexpectedEof {
        /// Byte offset of the start of the unterminated construct.
        offset: usize,
        /// Human-readable description of what was being read.
        context: &'static str,
    },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character found.
        found: char,
        /// What the tokenizer expected instead.
        expected: &'static str,
    },
    /// `</a>` closed an element opened as `<b>`.
    MismatchedTag {
        /// Byte offset of the closing tag.
        offset: usize,
        /// Tag that is currently open.
        open: String,
        /// Tag name found in the closing tag.
        close: String,
    },
    /// A closing tag appeared with no element open.
    UnmatchedClose {
        /// Byte offset of the closing tag.
        offset: usize,
        /// Tag name of the stray closing tag.
        tag: String,
    },
    /// The document ended while elements were still open.
    UnclosedElements {
        /// Tags still open at end of input, outermost first.
        open: Vec<String>,
    },
    /// More than one top-level element, or content outside the root.
    MultipleRoots {
        /// Byte offset of the second root.
        offset: usize,
    },
    /// The document contains no root element at all.
    EmptyDocument,
    /// An entity reference (`&...;`) that is malformed or unknown.
    BadEntity {
        /// Byte offset of the `&`.
        offset: usize,
        /// The raw entity text (without `&`/`;`), possibly truncated.
        entity: String,
    },
    /// An attribute name appeared twice on the same element.
    DuplicateAttribute {
        /// Byte offset of the second occurrence.
        offset: usize,
        /// The duplicated attribute name.
        name: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { offset, context } => {
                write!(f, "unexpected end of input at byte {offset} while reading {context}")
            }
            XmlError::UnexpectedChar { offset, found, expected } => {
                write!(f, "unexpected character {found:?} at byte {offset}, expected {expected}")
            }
            XmlError::MismatchedTag { offset, open, close } => write!(
                f,
                "closing tag </{close}> at byte {offset} does not match open element <{open}>"
            ),
            XmlError::UnmatchedClose { offset, tag } => {
                write!(f, "closing tag </{tag}> at byte {offset} has no matching open element")
            }
            XmlError::UnclosedElements { open } => {
                write!(f, "input ended with unclosed elements: {}", open.join(" > "))
            }
            XmlError::MultipleRoots { offset } => {
                write!(f, "content outside the root element at byte {offset}")
            }
            XmlError::EmptyDocument => write!(f, "document contains no root element"),
            XmlError::BadEntity { offset, entity } => {
                write!(f, "malformed or unknown entity \"&{entity};\" at byte {offset}")
            }
            XmlError::DuplicateAttribute { offset, name } => {
                write!(f, "duplicate attribute {name:?} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offsets_and_names() {
        let e = XmlError::UnexpectedEof { offset: 7, context: "a start tag" };
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("start tag"));

        let e = XmlError::MismatchedTag { offset: 3, open: "a".into(), close: "b".into() };
        let msg = e.to_string();
        assert!(msg.contains("</b>") && msg.contains("<a>"));

        let e = XmlError::UnclosedElements { open: vec!["x".into(), "y".into()] };
        assert!(e.to_string().contains("x > y"));

        let e = XmlError::BadEntity { offset: 0, entity: "nbsp".into() };
        assert!(e.to_string().contains("&nbsp;"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::EmptyDocument, XmlError::EmptyDocument);
        assert_ne!(XmlError::EmptyDocument, XmlError::MultipleRoots { offset: 0 });
    }
}
