//! Parser: token stream → [`Document`].
//!
//! Enforces well-formedness across tags: matching open/close pairs, exactly
//! one root element, no character data outside the root.

use crate::dom::Document;
use crate::error::{XmlError, XmlResult};
use crate::tokenizer::{Token, Tokenizer};

/// Parses a complete XML document.
///
/// ```
/// use xsact_xml::parse_document;
///
/// let doc = parse_document("<a><b>text</b><b/></a>").unwrap();
/// assert_eq!(doc.children(doc.root()).len(), 2);
/// ```
pub fn parse_document(input: &str) -> XmlResult<Document> {
    let mut doc: Option<Document> = None;
    // Stack of open elements; `None` sentinel never stored — root handled
    // specially because `Document::new` needs the root tag up front.
    let mut stack = Vec::new();
    let mut open_tags: Vec<String> = Vec::new();

    for token in Tokenizer::new(input) {
        match token? {
            Token::StartTag { name, attrs, self_closing, offset } => {
                match (&mut doc, stack.last().copied()) {
                    (None, _) => {
                        // This is the root element.
                        let mut d = Document::new(name.clone());
                        for (k, v) in attrs {
                            d.set_attr(d.root(), k, v);
                        }
                        if !self_closing {
                            stack.push(d.root());
                            open_tags.push(name);
                        }
                        doc = Some(d);
                    }
                    (Some(_), None) => {
                        // Root already closed: a second root element.
                        return Err(XmlError::MultipleRoots { offset });
                    }
                    (Some(d), Some(parent)) => {
                        let node = d.add_element_with_attrs(parent, name.clone(), attrs);
                        if !self_closing {
                            stack.push(node);
                            open_tags.push(name);
                        }
                    }
                }
            }
            Token::EndTag { name, offset } => match (&mut doc, stack.pop()) {
                (_, None) => {
                    return Err(XmlError::UnmatchedClose { offset, tag: name });
                }
                (Some(d), Some(node)) => {
                    let open = open_tags.pop().expect("open_tags tracks stack");
                    debug_assert_eq!(d.tag(node), open);
                    if open != name {
                        return Err(XmlError::MismatchedTag { offset, open, close: name });
                    }
                }
                (None, Some(_)) => unreachable!("stack non-empty implies document exists"),
            },
            Token::Text { content, offset } => match (&mut doc, stack.last().copied()) {
                (Some(d), Some(parent)) => {
                    d.add_text(parent, content);
                }
                _ => {
                    // Non-whitespace text before the root or after it closed.
                    return Err(XmlError::MultipleRoots { offset });
                }
            },
        }
    }

    if !open_tags.is_empty() {
        return Err(XmlError::UnclosedElements { open: open_tags });
    }
    doc.ok_or(XmlError::EmptyDocument)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse_document(
            "<shop><product id=\"1\"><name>TomTom Go 630</name>\
             <rating>4.2</rating></product><product id=\"2\"/></shop>",
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(doc.tag(root), "shop");
        let products: Vec<_> = doc.children_by_tag(root, "product").collect();
        assert_eq!(products.len(), 2);
        assert_eq!(doc.attr(products[0], "id"), Some("1"));
        let name = doc.child_by_tag(products[0], "name").unwrap();
        assert_eq!(doc.text_content(name), "TomTom Go 630");
        assert!(doc.children(products[1]).is_empty());
    }

    #[test]
    fn parses_prolog_comments_and_doctype() {
        let doc = parse_document(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
             <!DOCTYPE shop>\n<!-- dataset -->\n<shop/>",
        )
        .unwrap();
        assert_eq!(doc.tag(doc.root()), "shop");
    }

    #[test]
    fn self_closing_root() {
        let doc = parse_document("<alone/>").unwrap();
        assert!(doc.is_empty());
        assert_eq!(doc.tag(doc.root()), "alone");
    }

    #[test]
    fn root_attributes_preserved() {
        let doc = parse_document(r#"<shop version="2" lang="en"/>"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "version"), Some("2"));
        assert_eq!(doc.attr(doc.root(), "lang"), Some("en"));
    }

    #[test]
    fn mixed_content_is_ordered() {
        let doc = parse_document("<p>one<b>two</b>three</p>").unwrap();
        let kids = doc.children(doc.root());
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.text(kids[0]), Some("one"));
        assert_eq!(doc.tag(kids[1]), "b");
        assert_eq!(doc.text(kids[2]), Some("three"));
        assert_eq!(doc.text_content(doc.root()), "one two three");
    }

    #[test]
    fn error_mismatched_tags() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { ref open, ref close, .. }
                if open == "b" && close == "a"));
    }

    #[test]
    fn error_unmatched_close() {
        let err = parse_document("<a/></a>").unwrap_err();
        assert!(matches!(err, XmlError::UnmatchedClose { ref tag, .. } if tag == "a"));
    }

    #[test]
    fn error_unclosed_elements() {
        let err = parse_document("<a><b><c></c>").unwrap_err();
        assert_eq!(err, XmlError::UnclosedElements { open: vec!["a".into(), "b".into()] });
    }

    #[test]
    fn error_multiple_roots() {
        assert!(matches!(parse_document("<a/><b/>").unwrap_err(), XmlError::MultipleRoots { .. }));
        assert!(matches!(
            parse_document("<a></a>stray").unwrap_err(),
            XmlError::MultipleRoots { .. }
        ));
        assert!(matches!(parse_document("stray<a/>").unwrap_err(), XmlError::MultipleRoots { .. }));
    }

    #[test]
    fn error_empty_document() {
        assert_eq!(parse_document("").unwrap_err(), XmlError::EmptyDocument);
        assert_eq!(parse_document("<!-- only a comment -->").unwrap_err(), XmlError::EmptyDocument);
    }

    #[test]
    fn deep_nesting() {
        let depth = 200;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let doc = parse_document(&s).unwrap();
        assert_eq!(doc.len(), depth + 1);
        // The deepest node is the text.
        let deepest = doc.all_nodes().last().unwrap();
        assert_eq!(doc.text(deepest), Some("x"));
        assert_eq!(doc.depth(deepest), depth + 1);
    }

    #[test]
    fn dewey_assignment_matches_sibling_order() {
        let doc = parse_document("<r><a/><b/><c><d/></c></r>").unwrap();
        let root = doc.root();
        let kids = doc.children(root);
        assert_eq!(doc.dewey(kids[0]).to_string(), "0.0");
        assert_eq!(doc.dewey(kids[1]).to_string(), "0.1");
        assert_eq!(doc.dewey(kids[2]).to_string(), "0.2");
        let d = doc.children(kids[2])[0];
        assert_eq!(doc.dewey(d).to_string(), "0.2.0");
    }
}
