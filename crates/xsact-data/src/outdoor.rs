//! The Outdoor Retailer dataset (REI.com substitute).
//!
//! "The Outdoor Retailer dataset … contains a set of brands and products
//! for outdoor recreation and sporting … Each brand has a set of products,
//! and each product has a set of features" (paper §3). The demo's scenario:
//! a query `{men, jackets}` returns brands selling men's jackets, and the
//! comparison table reveals each brand's focus — "Marmot mainly sells rain
//! jackets, while Columbia focuses on insulated ski jackets".
//!
//! Each generated brand has focus subcategories (from
//! [`vocab::BRANDS`]) that receive most of its products, so brand-level
//! feature histograms genuinely differ.

use crate::vocab;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xsact_xml::Document;

/// Configuration of the Outdoor Retailer generator.
#[derive(Debug, Clone, Copy)]
pub struct OutdoorGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Inclusive range of products per brand ("a brand can have hundreds of
    /// products").
    pub products: (usize, usize),
    /// Probability that a product falls into one of the brand's focus
    /// subcategories rather than a random one.
    pub focus_bias: f64,
}

impl Default for OutdoorGenConfig {
    fn default() -> Self {
        OutdoorGenConfig { seed: 42, products: (20, 80), focus_bias: 0.75 }
    }
}

/// Deterministic Outdoor Retailer generator. All brands in
/// [`vocab::BRANDS`] are generated.
#[derive(Debug, Clone)]
pub struct OutdoorGen {
    config: OutdoorGenConfig,
}

impl OutdoorGen {
    /// Creates a generator with the given configuration.
    pub fn new(config: OutdoorGenConfig) -> Self {
        OutdoorGen { config }
    }

    /// Generator with default configuration.
    pub fn default_gen() -> Self {
        OutdoorGen::new(OutdoorGenConfig::default())
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Document {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut doc = Document::new("retailer");
        let root = doc.root();

        for (brand_name, focus) in vocab::BRANDS {
            let brand = doc.add_element(root, "brand");
            doc.add_leaf(brand, "name", *brand_name);
            let products = doc.add_element(brand, "products");
            let n = rng.random_range(cfg.products.0..=cfg.products.1);
            for _ in 0..n {
                // Pick a subcategory: biased towards the brand's focus.
                let sub = if rng.random_bool(cfg.focus_bias) {
                    focus[rng.random_range(0..focus.len())]
                } else {
                    let (_, subs, _) = vocab::OUTDOOR_CATEGORIES
                        [rng.random_range(0..vocab::OUTDOOR_CATEGORIES.len())];
                    subs[rng.random_range(0..subs.len())]
                };
                let (category, _, materials) = vocab::OUTDOOR_CATEGORIES
                    .iter()
                    .find(|(_, subs, _)| subs.contains(&sub))
                    .expect("subcategory belongs to a category");

                let product = doc.add_element(products, "product");
                let gender = vocab::GENDERS[rng.random_range(0..vocab::GENDERS.len())];
                doc.add_leaf(
                    product,
                    "name",
                    format!(
                        "{brand_name} {} {} {}",
                        capitalize(sub),
                        capitalize(category),
                        rng.random_range(100..999)
                    ),
                );
                doc.add_leaf(product, "category", *category);
                doc.add_leaf(product, "subcategory", sub);
                doc.add_leaf(product, "gender", gender);
                doc.add_leaf(product, "material", materials[rng.random_range(0..materials.len())]);
                doc.add_leaf(product, "price", format!("{}.00", rng.random_range(20..700)));
                doc.add_leaf(product, "weight_grams", rng.random_range(150..3_000u32).to_string());
                if *category == "jackets" {
                    doc.add_leaf(
                        product,
                        "waterproof",
                        if rng.random_bool(0.6) { "yes" } else { "no" },
                    );
                }
            }
        }
        doc
    }
}

fn capitalize(snake: &str) -> String {
    snake
        .split('_')
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::writer::write_subtree;

    fn small() -> Document {
        OutdoorGen::new(OutdoorGenConfig { seed: 5, products: (10, 20), focus_bias: 0.8 })
            .generate()
    }

    #[test]
    fn all_brands_generated() {
        let doc = small();
        assert_eq!(doc.children_by_tag(doc.root(), "brand").count(), vocab::BRANDS.len());
    }

    #[test]
    fn products_have_schema() {
        let doc = small();
        for brand in doc.children_by_tag(doc.root(), "brand") {
            let products = doc.child_by_tag(brand, "products").unwrap();
            for p in doc.children_by_tag(products, "product") {
                for tag in ["name", "category", "subcategory", "gender", "material", "price"] {
                    assert!(doc.child_by_tag(p, tag).is_some(), "missing {tag}");
                }
            }
        }
    }

    #[test]
    fn focus_bias_shapes_brand_profile() {
        let doc =
            OutdoorGen::new(OutdoorGenConfig { seed: 11, products: (60, 60), focus_bias: 0.9 })
                .generate();
        // Marmot focuses on rain_jackets/tents/sleeping_bags; count its
        // focus products vs. others.
        let marmot = doc
            .children_by_tag(doc.root(), "brand")
            .find(|&b| {
                doc.child_by_tag(b, "name")
                    .map(|n| doc.text_content(n) == "Marmot")
                    .unwrap_or(false)
            })
            .unwrap();
        let focus: &[&str] = &["rain_jackets", "backpacking", "three_season"];
        let (mut in_focus, mut total) = (0usize, 0usize);
        for n in doc.descendants(marmot) {
            if doc.is_element(n) && doc.tag(n) == "subcategory" {
                total += 1;
                if focus.contains(&doc.text_content(n).as_str()) {
                    in_focus += 1;
                }
            }
        }
        assert_eq!(total, 60);
        assert!(in_focus * 2 > total, "focus bias too weak: {in_focus}/{total}");
    }

    #[test]
    fn jackets_have_waterproof_flag() {
        let doc = small();
        let mut saw_jacket = false;
        for n in doc.all_nodes() {
            if doc.is_element(n) && doc.tag(n) == "product" {
                let cat = doc.text_content(doc.child_by_tag(n, "category").unwrap());
                if cat == "jackets" {
                    saw_jacket = true;
                    assert!(doc.child_by_tag(n, "waterproof").is_some());
                }
            }
        }
        assert!(saw_jacket);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = OutdoorGenConfig { seed: 2, products: (5, 10), focus_bias: 0.5 };
        let a = OutdoorGen::new(cfg).generate();
        let b = OutdoorGen::new(cfg).generate();
        assert_eq!(write_subtree(&a, a.root()), write_subtree(&b, b.root()));
    }

    #[test]
    fn capitalize_helper() {
        assert_eq!(capitalize("rain_jackets"), "Rain Jackets");
        assert_eq!(capitalize("tents"), "Tents");
        assert_eq!(capitalize(""), "");
    }
}
