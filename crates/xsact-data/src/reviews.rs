//! The Product Reviews dataset (buzzillions.com substitute).
//!
//! "The Product Reviews dataset … contains a set of GPS, mobile phone and
//! digital camera products, each associated with a price, an aggregated
//! user rating and a set of reviews. Each review consists of … a set of
//! features of the product in the reviewer's opinion, such as the pros,
//! cons and best uses." (paper §3)
//!
//! Each generated product draws a per-flag probability profile, so products
//! genuinely differ in which pros/cons reviewers report — exactly the
//! signal the DFS algorithms are meant to surface.

use crate::vocab;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xsact_xml::Document;

/// Configuration of the Product Reviews generator.
#[derive(Debug, Clone, Copy)]
pub struct ReviewsGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of products.
    pub products: usize,
    /// Inclusive range of reviews per product ("a product can have hundreds
    /// of reviews").
    pub reviews: (usize, usize),
}

impl Default for ReviewsGenConfig {
    fn default() -> Self {
        ReviewsGenConfig { seed: 42, products: 24, reviews: (8, 120) }
    }
}

/// Deterministic Product Reviews generator.
#[derive(Debug, Clone)]
pub struct ReviewsGen {
    config: ReviewsGenConfig,
}

impl ReviewsGen {
    /// Creates a generator with the given configuration.
    pub fn new(config: ReviewsGenConfig) -> Self {
        ReviewsGen { config }
    }

    /// Generator with default configuration.
    pub fn default_gen() -> Self {
        ReviewsGen::new(ReviewsGenConfig::default())
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Document {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut doc = Document::new("shop");
        let root = doc.root();

        for p in 0..cfg.products {
            let (kind, brand, models) = vocab::PRODUCT_LINES[p % vocab::PRODUCT_LINES.len()];
            let model = models[rng.random_range(0..models.len())];
            let product = doc.add_element(root, "product");
            doc.add_leaf(product, "name", format!("{brand} {model} {}", kind.to_uppercase()));
            doc.add_leaf(product, "brand", brand);
            doc.add_leaf(product, "price", format!("{}.95", rng.random_range(49..600)));
            doc.add_leaf(
                product,
                "rating",
                format!("{:.1}", 2.5 + rng.random_range(0..26) as f64 / 10.0),
            );

            // Per-product opinion profile: probability that a reviewer
            // reports each flag.
            let pros = vocab::pool_for(vocab::PROS, kind);
            let cons = vocab::pool_for(vocab::CONS, kind);
            let uses = vocab::pool_for(vocab::BEST_USES, kind);
            let cats = vocab::pool_for(vocab::USER_CATEGORIES, kind);
            let pro_profile: Vec<f64> = pros.iter().map(|_| rng.random_range(0.0..0.9)).collect();
            let con_profile: Vec<f64> = cons.iter().map(|_| rng.random_range(0.0..0.4)).collect();
            let use_profile: Vec<f64> = uses.iter().map(|_| rng.random_range(0.0..0.7)).collect();
            let cat_profile: Vec<f64> = cats.iter().map(|_| rng.random_range(0.0..0.6)).collect();

            let reviews = doc.add_element(product, "reviews");
            let n_reviews = rng.random_range(cfg.reviews.0..=cfg.reviews.1);
            for _ in 0..n_reviews {
                let review = doc.add_element(reviews, "review");
                let chosen_pros: Vec<&str> = pros
                    .iter()
                    .zip(&pro_profile)
                    .filter(|&(_, &p)| rng.random_bool(p))
                    .map(|(&f, _)| f)
                    .collect();
                if !chosen_pros.is_empty() {
                    let el = doc.add_element(review, "pros");
                    for f in chosen_pros {
                        doc.add_leaf(el, f, "yes");
                    }
                }
                let chosen_cons: Vec<&str> = cons
                    .iter()
                    .zip(&con_profile)
                    .filter(|&(_, &p)| rng.random_bool(p))
                    .map(|(&f, _)| f)
                    .collect();
                if !chosen_cons.is_empty() {
                    let el = doc.add_element(review, "cons");
                    for f in chosen_cons {
                        doc.add_leaf(el, f, "yes");
                    }
                }
                let chosen_uses: Vec<&str> = uses
                    .iter()
                    .zip(&use_profile)
                    .filter(|&(_, &p)| rng.random_bool(p))
                    .map(|(&f, _)| f)
                    .collect();
                let chosen_cats: Vec<&str> = cats
                    .iter()
                    .zip(&cat_profile)
                    .filter(|&(_, &p)| rng.random_bool(p))
                    .map(|(&f, _)| f)
                    .collect();
                if !chosen_uses.is_empty() || !chosen_cats.is_empty() {
                    let el = doc.add_element(review, "uses");
                    if !chosen_uses.is_empty() {
                        let bu = doc.add_element(el, "best_use");
                        for f in chosen_uses {
                            doc.add_leaf(bu, f, "yes");
                        }
                    }
                    if !chosen_cats.is_empty() {
                        let cat = doc.add_element(el, "category");
                        for f in chosen_cats {
                            doc.add_leaf(cat, f, "yes");
                        }
                    }
                }
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::writer::write_subtree;

    fn small() -> Document {
        ReviewsGen::new(ReviewsGenConfig { seed: 1, products: 9, reviews: (3, 10) }).generate()
    }

    #[test]
    fn generates_requested_products() {
        let doc = small();
        assert_eq!(doc.children_by_tag(doc.root(), "product").count(), 9);
    }

    #[test]
    fn products_have_core_attributes() {
        let doc = small();
        for p in doc.children_by_tag(doc.root(), "product") {
            for tag in ["name", "brand", "price", "rating", "reviews"] {
                assert!(doc.child_by_tag(p, tag).is_some(), "missing {tag}");
            }
            let reviews = doc.child_by_tag(p, "reviews").unwrap();
            let n = doc.children_by_tag(reviews, "review").count();
            assert!((3..=10).contains(&n));
        }
    }

    #[test]
    fn review_counts_respect_range() {
        let doc = ReviewsGen::new(ReviewsGenConfig { seed: 3, products: 5, reviews: (50, 60) })
            .generate();
        for p in doc.children_by_tag(doc.root(), "product") {
            let reviews = doc.child_by_tag(p, "reviews").unwrap();
            let n = doc.children_by_tag(reviews, "review").count();
            assert!((50..=60).contains(&n), "got {n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ReviewsGenConfig { seed: 9, products: 6, reviews: (2, 8) };
        let a = ReviewsGen::new(cfg).generate();
        let b = ReviewsGen::new(cfg).generate();
        assert_eq!(write_subtree(&a, a.root()), write_subtree(&b, b.root()));
    }

    #[test]
    fn names_carry_brand_and_kind_terms() {
        let doc = small();
        let mut saw_gps = false;
        for p in doc.children_by_tag(doc.root(), "product") {
            let name = doc.text_content(doc.child_by_tag(p, "name").unwrap());
            if name.contains("GPS") {
                saw_gps = true;
            }
        }
        assert!(saw_gps, "at least one GPS product expected");
    }

    #[test]
    fn flags_come_from_category_pools() {
        let doc = small();
        let all_flags: Vec<&str> = vocab::PROS
            .iter()
            .chain(vocab::CONS)
            .chain(vocab::BEST_USES)
            .chain(vocab::USER_CATEGORIES)
            .flat_map(|(_, pool)| pool.iter().copied())
            .collect();
        for n in doc.all_nodes() {
            if doc.is_element(n) && doc.is_leaf_element(n) && doc.text_content(n) == "yes" {
                assert!(all_flags.contains(&doc.tag(n)), "unknown flag {}", doc.tag(n));
            }
        }
    }
}
