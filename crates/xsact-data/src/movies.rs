//! IMDB-like movie dataset — the workload of the paper's Figure 4.
//!
//! The paper evaluates DFS quality (DoD) and processing time over eight
//! queries QM1–QM8 "on a movie data set extracted from IMDB"
//! (`ftp://ftp.sunet.se/pub/tv+movies/imdb/`). The dump is no longer
//! distributed in that form, so this generator synthesises movies with the
//! IMDB schema shape: title, year, rating, votes, runtime, language,
//! country, certificate, director, genres (skewed, multi-valued), keywords
//! (correlated with the genres) and a cast of actors (a nested entity).
//!
//! Queries [`qm_queries`] pair a genre with one of its preferred keywords;
//! genre frequencies are Zipf-skewed, so QM1 (drama) matches many movies and
//! QM8 (western) only a few — giving Figure 4 its spread of result-set
//! sizes.

use crate::vocab;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xsact_xml::Document;

/// Configuration of the movie generator.
#[derive(Debug, Clone, Copy)]
pub struct MovieGenConfig {
    /// RNG seed; equal seeds give byte-identical documents.
    pub seed: u64,
    /// Number of movies.
    pub movies: usize,
    /// Inclusive range of cast sizes.
    pub actors: (usize, usize),
    /// Inclusive range of keywords per movie (beyond genre-preferred ones).
    pub keywords: (usize, usize),
}

impl Default for MovieGenConfig {
    fn default() -> Self {
        MovieGenConfig { seed: 42, movies: 400, actors: (3, 8), keywords: (2, 5) }
    }
}

/// Deterministic movie dataset generator.
#[derive(Debug, Clone)]
pub struct MoviesGen {
    config: MovieGenConfig,
}

impl MoviesGen {
    /// Creates a generator with the given configuration.
    pub fn new(config: MovieGenConfig) -> Self {
        MoviesGen { config }
    }

    /// Generator with default configuration (seed 42, 400 movies).
    pub fn default_gen() -> Self {
        MoviesGen::new(MovieGenConfig::default())
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Document {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut doc = Document::new("movies");
        let root = doc.root();

        for i in 0..cfg.movies {
            let movie = doc.add_element(root, "movie");

            // Title: adjective + noun (+ a sequel number now and then).
            let adj = pick(&mut rng, vocab::TITLE_ADJECTIVES);
            let noun = pick(&mut rng, vocab::TITLE_NOUNS);
            let title = if rng.random_range(0..5) == 0 {
                format!("The {adj} {noun} {}", rng.random_range(2..4))
            } else {
                format!("The {adj} {noun}")
            };
            doc.add_leaf(movie, "title", title);

            // Attribute distributions are deliberately mixed: some
            // attributes rarely differentiate two random movies (year and
            // votes sit within the 10% threshold band, color/certificate/
            // country/language are heavily skewed towards one value), while
            // others almost always do (director, title) or sometimes do
            // (rating, runtime). Differentiation-blind selections therefore
            // pay a real price — the tension Figure 4 measures.
            // Several attributes are *optional*, as in the real IMDB dump —
            // heterogeneous type sets across results are what gives the DFS
            // selection problem its bite (a type another result lacks can
            // never differentiate, so which types a DFS spends its budget on
            // matters).
            doc.add_leaf(movie, "year", (1995 + rng.random_range(0..15)).to_string());
            doc.add_leaf(
                movie,
                "rating",
                format!("{:.1}", 6.0 + rng.random_range(0..21) as f64 / 10.0),
            );
            if rng.random_bool(0.6) {
                doc.add_leaf(movie, "votes", rng.random_range(9_000..11_000u32).to_string());
            }
            if rng.random_bool(0.8) {
                doc.add_leaf(movie, "runtime", rng.random_range(95..126u32).to_string());
            }
            if rng.random_bool(0.7) {
                doc.add_leaf(
                    movie,
                    "language",
                    if rng.random_bool(0.8) { "english" } else { pick(&mut rng, vocab::LANGUAGES) },
                );
            }
            doc.add_leaf(
                movie,
                "country",
                if rng.random_bool(0.7) { "usa" } else { pick(&mut rng, vocab::COUNTRIES) },
            );
            if rng.random_bool(0.75) {
                doc.add_leaf(
                    movie,
                    "certificate",
                    if rng.random_bool(0.7) {
                        "pg"
                    } else {
                        ["g", "pg13", "r"][rng.random_range(0..3)]
                    },
                );
            }
            if rng.random_bool(0.4) {
                doc.add_leaf(movie, "awards", rng.random_range(0..9u32).to_string());
            }
            if rng.random_bool(0.5) {
                doc.add_leaf(
                    movie,
                    "location",
                    ["city", "coast", "mountains", "studio"][rng.random_range(0..4)],
                );
            }
            if rng.random_bool(0.3) {
                doc.add_leaf(movie, "budget", format!("{}000000", rng.random_range(5..120u32)));
            }
            // Optional constant-valued attributes (every film that records
            // them records the same value). They are pure ballast: never
            // differentiating, yet — being alphabetical predecessors of
            // `title` within the same significance tier — they must be
            // selected before `title` can be. Results lacking them reach
            // `title` cheaply; results carrying them need a multi-feature
            // change to follow, which separates the two local-optimality
            // criteria exactly as the paper's Figure 4(a) shows.
            if rng.random_bool(0.5) {
                doc.add_leaf(movie, "medium", "35mm_film");
            }
            if rng.random_bool(0.5) {
                doc.add_leaf(movie, "sound_mix", "stereo");
            }
            if rng.random_bool(0.5) {
                doc.add_leaf(movie, "status", "released");
            }
            doc.add_leaf(
                movie,
                "director",
                format!(
                    "{} {}",
                    pick(&mut rng, vocab::FIRST_NAMES),
                    pick(&mut rng, vocab::SURNAMES)
                ),
            );
            // Constant across the dataset: `color` can never differentiate
            // two results, yet it precedes `country`/`director` in the
            // within-entity significance ranking (all singletons tie on
            // occurrence count; ties resolve alphabetically). Reaching the
            // valuable types behind it therefore requires changing several
            // features of a DFS at once — the situation where multi-swap
            // optimality genuinely beats single-swap optimality.
            doc.add_leaf(movie, "color", "color");

            // Genres: Zipf-skewed primary, optional secondary.
            let g1 = zipf_index(&mut rng, vocab::GENRES.len());
            doc.add_leaf(movie, "genre", vocab::GENRES[g1]);
            if rng.random_range(0..5) < 2 {
                let g2 = zipf_index(&mut rng, vocab::GENRES.len());
                if g2 != g1 {
                    doc.add_leaf(movie, "genre", vocab::GENRES[g2]);
                }
            }

            // Keywords: all genre-preferred keywords plus random extras —
            // the preferred ones guarantee that every (genre, keyword)
            // benchmark query has matches.
            for kw in vocab::GENRE_KEYWORDS[g1] {
                doc.add_leaf(movie, "keyword", *kw);
            }
            let extra = rng.random_range(cfg.keywords.0..=cfg.keywords.1);
            for _ in 0..extra {
                doc.add_leaf(movie, "keyword", pick(&mut rng, vocab::KEYWORDS));
            }

            // Cast: a nested entity (actor repeats and has structure).
            let cast = doc.add_element(movie, "cast");
            let actors = rng.random_range(cfg.actors.0..=cfg.actors.1);
            for a in 0..actors {
                let actor = doc.add_element(cast, "actor");
                doc.add_leaf(
                    actor,
                    "name",
                    format!(
                        "{} {}",
                        pick(&mut rng, vocab::FIRST_NAMES),
                        pick(&mut rng, vocab::SURNAMES)
                    ),
                );
                doc.add_leaf(actor, "billing", if a == 0 { "lead" } else { "support" });
            }

            // Suppress an unused variable warning in non-debug builds while
            // keeping `i` available for future per-movie determinism tweaks.
            let _ = i;
        }
        doc
    }
}

/// The eight Figure 4 benchmark queries, from broad (QM1, the most common
/// genre) to narrow (QM8, the rarest).
pub fn qm_queries() -> [(&'static str, String); 8] {
    let pairs: [(usize, &str); 8] = [
        (0, "family"),    // drama
        (1, "wedding"),   // comedy
        (2, "hero"),      // action
        (3, "detective"), // thriller
        (4, "love"),      // romance
        (5, "soldier"),   // war
        (6, "space"),     // scifi
        (7, "ghost"),     // horror
    ];
    let mut out: Vec<(&'static str, String)> = Vec::with_capacity(8);
    for (i, (g, kw)) in pairs.into_iter().enumerate() {
        let label: &'static str = match i {
            0 => "QM1",
            1 => "QM2",
            2 => "QM3",
            3 => "QM4",
            4 => "QM5",
            5 => "QM6",
            6 => "QM7",
            _ => "QM8",
        };
        out.push((label, format!("{} {}", vocab::GENRES[g], kw)));
    }
    out.try_into().expect("exactly eight queries")
}

fn pick<'a>(rng: &mut StdRng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

/// Zipf-like skewed index: P(i) ∝ 1/(i+1).
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    let total: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut target = rng.random_range(0.0..total);
    for i in 0..n {
        target -= 1.0 / (i + 1) as f64;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::writer::write_subtree;

    #[test]
    fn generates_requested_count() {
        let gen = MoviesGen::new(MovieGenConfig { movies: 25, ..Default::default() });
        let doc = gen.generate();
        assert_eq!(doc.children_by_tag(doc.root(), "movie").count(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MovieGenConfig { movies: 30, ..Default::default() };
        let a = MoviesGen::new(cfg).generate();
        let b = MoviesGen::new(cfg).generate();
        assert_eq!(write_subtree(&a, a.root()), write_subtree(&b, b.root()));
        let c = MoviesGen::new(MovieGenConfig { seed: 7, ..cfg }).generate();
        assert_ne!(write_subtree(&a, a.root()), write_subtree(&c, c.root()));
    }

    #[test]
    fn movies_have_expected_schema() {
        let doc = MoviesGen::new(MovieGenConfig { movies: 10, ..Default::default() }).generate();
        for movie in doc.children_by_tag(doc.root(), "movie") {
            // Mandatory attributes; votes/language/certificate/… are
            // optional by design.
            for tag in ["title", "year", "rating", "country", "director", "color", "cast"] {
                assert!(doc.child_by_tag(movie, tag).is_some(), "missing {tag}");
            }
            assert!(doc.children_by_tag(movie, "genre").count() >= 1);
            assert!(doc.children_by_tag(movie, "keyword").count() >= 3);
            let cast = doc.child_by_tag(movie, "cast").unwrap();
            assert!(doc.children_by_tag(cast, "actor").count() >= 3);
        }
    }

    #[test]
    fn genre_skew_makes_drama_common() {
        let doc = MoviesGen::new(MovieGenConfig { movies: 300, ..Default::default() }).generate();
        let count = |genre: &str| {
            doc.all_nodes()
                .filter(|&n| {
                    doc.is_element(n) && doc.tag(n) == "genre" && doc.text_content(n) == genre
                })
                .count()
        };
        assert!(count("drama") > count("western") * 2);
    }

    #[test]
    fn every_qm_query_has_planted_matches() {
        let doc = MoviesGen::new(MovieGenConfig { movies: 300, ..Default::default() }).generate();
        for (label, query) in qm_queries() {
            let mut terms = query.split_whitespace();
            let genre = terms.next().unwrap();
            let keyword = terms.next().unwrap();
            // At least one movie carries both the genre and the keyword.
            let matches = doc
                .children_by_tag(doc.root(), "movie")
                .filter(|&m| {
                    let has_genre =
                        doc.children_by_tag(m, "genre").any(|g| doc.text_content(g) == genre);
                    let has_kw =
                        doc.children_by_tag(m, "keyword").any(|k| doc.text_content(k) == keyword);
                    has_genre && has_kw
                })
                .count();
            assert!(matches >= 1, "{label} ({query}) has no matches");
        }
    }

    #[test]
    fn qm_selectivity_declines() {
        let doc = MoviesGen::new(MovieGenConfig { movies: 400, ..Default::default() }).generate();
        let count_genre = |genre: &str| {
            doc.all_nodes()
                .filter(|&n| {
                    doc.is_element(n) && doc.tag(n) == "genre" && doc.text_content(n) == genre
                })
                .count()
        };
        // Broad genres (QM1-2) are at least as common as the narrow ones
        // (QM7-8) thanks to the Zipf skew.
        assert!(count_genre("drama") >= count_genre("horror"));
        assert!(count_genre("comedy") >= count_genre("scifi"));
    }

    #[test]
    fn zipf_index_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = zipf_index(&mut rng, 9);
            assert!(i < 9);
        }
    }
}
