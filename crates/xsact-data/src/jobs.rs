//! Job-postings dataset — the paper's third motivating domain.
//!
//! §1 of the paper lists "employee hiring, job/institution hunting" next to
//! online shopping as domains where result differentiation is critical.
//! This generator synthesises a job board: companies with openings, each
//! opening carrying a title, location, salary band, seniority and sets of
//! required skills and benefits — multi-valued attributes whose histograms
//! differ per company, exactly the structure DFSs surface ("company A wants
//! rust+distributed systems, company B wants java+frontend").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xsact_xml::Document;

/// Companies with their hiring focus (preferred skills).
pub const COMPANIES: &[(&str, &[&str])] = &[
    ("Acme Analytics", &["sql", "python", "statistics"]),
    ("ByteForge", &["rust", "distributed_systems", "linux"]),
    ("CloudNine", &["kubernetes", "go", "networking"]),
    ("DataMill", &["sql", "spark", "python"]),
    ("EdgeWorks", &["rust", "embedded", "c"]),
    ("FrontRow", &["javascript", "react", "css"]),
];

/// The full skill pool.
pub const SKILLS: &[&str] = &[
    "sql",
    "python",
    "statistics",
    "rust",
    "distributed_systems",
    "linux",
    "kubernetes",
    "go",
    "networking",
    "spark",
    "embedded",
    "c",
    "javascript",
    "react",
    "css",
    "java",
];

/// Benefit flags.
pub const BENEFITS: &[&str] =
    &["remote_work", "equity", "bonus", "training_budget", "gym", "relocation"];

/// Job titles by seniority index.
pub const TITLES: &[&str] =
    &["software_engineer", "data_engineer", "site_reliability_engineer", "ml_engineer"];

/// Office locations.
pub const LOCATIONS: &[&str] = &["berlin", "london", "new_york", "tokyo", "remote"];

/// Configuration of the job-postings generator.
#[derive(Debug, Clone, Copy)]
pub struct JobsGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Inclusive range of openings per company.
    pub openings: (usize, usize),
    /// Probability that a required skill comes from the company's focus.
    pub focus_bias: f64,
}

impl Default for JobsGenConfig {
    fn default() -> Self {
        JobsGenConfig { seed: 42, openings: (8, 30), focus_bias: 0.7 }
    }
}

/// Deterministic job-board generator over all [`COMPANIES`].
#[derive(Debug, Clone)]
pub struct JobsGen {
    config: JobsGenConfig,
}

impl JobsGen {
    /// Creates a generator with the given configuration.
    pub fn new(config: JobsGenConfig) -> Self {
        JobsGen { config }
    }

    /// Generator with default configuration.
    pub fn default_gen() -> Self {
        JobsGen::new(JobsGenConfig::default())
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Document {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut doc = Document::new("jobboard");
        let root = doc.root();

        for (company_name, focus) in COMPANIES {
            let company = doc.add_element(root, "company");
            doc.add_leaf(company, "name", *company_name);
            doc.add_leaf(company, "employees", rng.random_range(50..5_000u32).to_string());
            let openings = doc.add_element(company, "openings");
            let n = rng.random_range(cfg.openings.0..=cfg.openings.1);
            for _ in 0..n {
                let opening = doc.add_element(openings, "opening");
                doc.add_leaf(opening, "title", TITLES[rng.random_range(0..TITLES.len())]);
                doc.add_leaf(opening, "location", LOCATIONS[rng.random_range(0..LOCATIONS.len())]);
                doc.add_leaf(
                    opening,
                    "seniority",
                    ["junior", "mid", "senior"][rng.random_range(0..3)],
                );
                doc.add_leaf(
                    opening,
                    "salary",
                    (50_000 + 10_000 * rng.random_range(0..8u32)).to_string(),
                );
                let requirements = doc.add_element(opening, "requirements");
                let k = rng.random_range(2..5usize);
                for _ in 0..k {
                    let skill = if rng.random_bool(cfg.focus_bias) {
                        focus[rng.random_range(0..focus.len())]
                    } else {
                        SKILLS[rng.random_range(0..SKILLS.len())]
                    };
                    doc.add_leaf(requirements, "skill", skill);
                }
                let benefits = doc.add_element(opening, "benefits");
                for benefit in BENEFITS {
                    if rng.random_bool(0.35) {
                        doc.add_leaf(benefits, *benefit, "yes");
                    }
                }
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::writer::write_subtree;

    fn small() -> Document {
        JobsGen::new(JobsGenConfig { seed: 3, openings: (4, 8), focus_bias: 0.8 }).generate()
    }

    #[test]
    fn all_companies_generated() {
        let doc = small();
        assert_eq!(doc.children_by_tag(doc.root(), "company").count(), COMPANIES.len());
    }

    #[test]
    fn openings_have_schema() {
        let doc = small();
        for n in doc.all_nodes() {
            if doc.is_element(n) && doc.tag(n) == "opening" {
                for tag in ["title", "location", "seniority", "salary", "requirements"] {
                    assert!(doc.child_by_tag(n, tag).is_some(), "missing {tag}");
                }
                let req = doc.child_by_tag(n, "requirements").unwrap();
                assert!(doc.children_by_tag(req, "skill").count() >= 2);
            }
        }
    }

    #[test]
    fn company_focus_dominates_requirements() {
        let doc =
            JobsGen::new(JobsGenConfig { seed: 9, openings: (30, 30), focus_bias: 0.9 }).generate();
        // ByteForge's skills should be mostly from its focus pool.
        let byteforge = doc
            .children_by_tag(doc.root(), "company")
            .find(|&b| {
                doc.child_by_tag(b, "name")
                    .map(|n| doc.text_content(n) == "ByteForge")
                    .unwrap_or(false)
            })
            .unwrap();
        let focus: &[&str] = &["rust", "distributed_systems", "linux"];
        let (mut in_focus, mut total) = (0usize, 0usize);
        for n in doc.descendants(byteforge) {
            if doc.is_element(n) && doc.tag(n) == "skill" {
                total += 1;
                if focus.contains(&doc.text_content(n).as_str()) {
                    in_focus += 1;
                }
            }
        }
        assert!(total >= 60);
        assert!(in_focus * 3 > total * 2, "focus too weak: {in_focus}/{total}");
    }

    #[test]
    fn skills_come_from_the_pool() {
        let doc = small();
        for n in doc.all_nodes() {
            if doc.is_element(n) && doc.tag(n) == "skill" {
                let skill = doc.text_content(n);
                assert!(SKILLS.contains(&skill.as_str()), "unknown skill {skill}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = JobsGenConfig { seed: 4, openings: (3, 6), focus_bias: 0.5 };
        let a = JobsGen::new(cfg).generate();
        let b = JobsGen::new(cfg).generate();
        assert_eq!(write_subtree(&a, a.root()), write_subtree(&b, b.root()));
    }

    #[test]
    fn company_focuses_use_known_skills() {
        for (company, focus) in COMPANIES {
            for skill in *focus {
                assert!(SKILLS.contains(skill), "{company} focus {skill} unknown");
            }
        }
    }
}
