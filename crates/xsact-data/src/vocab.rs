//! Vocabulary pools shared by the dataset generators.
//!
//! Everything is a `&'static` table so generators stay allocation-light and
//! two runs with the same seed produce byte-identical documents.

/// GPS / phone / camera product lines for the Product Reviews dataset.
pub const PRODUCT_LINES: &[(&str, &str, &[&str])] = &[
    ("gps", "TomTom", &["Go 630", "Go 730", "One 130", "XL 340", "Via 1535"]),
    ("gps", "Garmin", &["Nuvi 200", "Nuvi 350", "StreetPilot c340", "Zumo 550"]),
    ("gps", "Magellan", &["RoadMate 1412", "Maestro 3100"]),
    ("phone", "Nokia", &["N95", "E71", "5310"]),
    ("phone", "BlackBerry", &["Curve 8310", "Bold 9000", "Pearl 8120"]),
    ("phone", "Motorola", &["Razr V3", "Rokr E8"]),
    ("camera", "Canon", &["PowerShot SD1000", "Ixus 860", "EOS 450D"]),
    ("camera", "Nikon", &["Coolpix S210", "D60"]),
    ("camera", "Sony", &["Cybershot W120", "Alpha A200"]),
];

/// Review "pro" flags per product category.
pub const PROS: &[(&str, &[&str])] = &[
    (
        "gps",
        &[
            "easy_to_read",
            "compact",
            "acquires_satellites_quickly",
            "easy_to_setup",
            "large_screen",
            "accurate_directions",
            "clear_voice",
            "good_value",
        ],
    ),
    (
        "phone",
        &[
            "long_battery_life",
            "good_reception",
            "compact",
            "loud_speaker",
            "easy_to_setup",
            "sturdy",
            "good_camera",
            "good_value",
        ],
    ),
    (
        "camera",
        &[
            "sharp_pictures",
            "compact",
            "fast_shutter",
            "easy_to_use",
            "large_screen",
            "good_low_light",
            "long_battery_life",
            "good_value",
        ],
    ),
];

/// Review "con" flags per product category.
pub const CONS: &[(&str, &[&str])] = &[
    ("gps", &["short_battery_life", "slow_routing", "glare", "bulky_mount"]),
    ("phone", &["poor_camera", "slow_menu", "weak_signal", "small_keys"]),
    ("camera", &["slow_focus", "noisy_images", "weak_flash", "short_battery_life"]),
];

/// "Best use" flags per product category.
pub const BEST_USES: &[(&str, &[&str])] = &[
    ("gps", &["auto", "faster_routers", "walking", "cycling"]),
    ("phone", &["business", "messaging", "music", "travel"]),
    ("camera", &["travel", "family", "sports", "landscape"]),
];

/// Reviewer "category" flags per product category.
pub const USER_CATEGORIES: &[(&str, &[&str])] = &[
    ("gps", &["casual_user", "commuter", "road_warrior"]),
    ("phone", &["casual_user", "power_user", "business_user"]),
    ("camera", &["casual_user", "enthusiast", "professional"]),
];

/// Outdoor Retailer brands with their product-line focus.
pub const BRANDS: &[(&str, &[&str])] = &[
    ("Marmot", &["rain_jackets", "backpacking", "three_season"]),
    ("Columbia", &["insulated_ski_jackets", "fleece", "hiking_boots"]),
    ("Patagonia", &["fleece", "rain_jackets", "base_layers"]),
    ("NorthFace", &["insulated_ski_jackets", "family", "expedition"]),
    ("Arcteryx", &["rain_jackets", "harnesses", "base_layers"]),
    ("Kelty", &["backpacking", "summer", "daypacks"]),
    ("Salomon", &["trail_runners", "insulated_ski_jackets", "base_layers"]),
    ("Osprey", &["daypacks", "overnight", "ropes"]),
];

/// Outdoor product categories: (category, subcategories, materials).
pub const OUTDOOR_CATEGORIES: &[(&str, &[&str], &[&str])] = &[
    (
        "jackets",
        &["rain_jackets", "insulated_ski_jackets", "fleece", "base_layers"],
        &["gore_tex", "down", "polyester", "merino_wool"],
    ),
    ("tents", &["backpacking", "family", "mountaineering"], &["nylon", "polyester"]),
    ("sleeping_bags", &["summer", "three_season", "winter"], &["down", "synthetic"]),
    ("footwear", &["hiking_boots", "trail_runners", "sandals"], &["leather", "synthetic"]),
    ("backpacks", &["daypacks", "overnight", "expedition"], &["nylon", "cordura"]),
    ("climbing_gear", &["harnesses", "ropes", "helmets"], &["nylon", "aluminum"]),
];

/// Genders used by the outdoor dataset.
pub const GENDERS: &[&str] = &["men", "women", "unisex"];

/// Movie genres, ordered from common to rare (the generator samples with a
/// skew so early entries dominate).
pub const GENRES: &[&str] =
    &["drama", "comedy", "action", "thriller", "romance", "war", "scifi", "horror", "western"];

/// Movie keywords; co-occurrence with genres is controlled by
/// [`GENRE_KEYWORDS`].
pub const KEYWORDS: &[&str] = &[
    "hero",
    "love",
    "battle",
    "family",
    "detective",
    "space",
    "school",
    "revenge",
    "alien",
    "soldier",
    "murder",
    "wedding",
    "robot",
    "ghost",
    "desert",
];

/// Preferred keywords per genre (same index order as [`GENRES`]).
pub const GENRE_KEYWORDS: &[&[&str]] = &[
    &["family", "love", "revenge"],      // drama
    &["wedding", "school", "family"],    // comedy
    &["hero", "battle", "revenge"],      // action
    &["murder", "detective", "revenge"], // thriller
    &["love", "wedding", "family"],      // romance
    &["soldier", "battle", "hero"],      // war
    &["space", "alien", "robot"],        // scifi
    &["ghost", "murder", "school"],      // horror
    &["desert", "hero", "revenge"],      // western
];

/// Movie title fragments.
pub const TITLE_ADJECTIVES: &[&str] = &[
    "Last", "Dark", "Silent", "Broken", "Golden", "Hidden", "Lost", "Crimson", "Eternal", "Distant",
];

/// Movie title nouns.
pub const TITLE_NOUNS: &[&str] = &[
    "Horizon", "Empire", "Garden", "River", "Station", "Winter", "Promise", "Shadow", "Harbor",
    "Journey",
];

/// Languages for the movie dataset.
pub const LANGUAGES: &[&str] = &["english", "french", "spanish", "german", "japanese"];

/// Production countries for the movie dataset.
pub const COUNTRIES: &[&str] = &["usa", "uk", "france", "germany", "japan", "canada"];

/// Actor surname pool.
pub const SURNAMES: &[&str] = &[
    "Archer", "Bennett", "Castillo", "Donovan", "Ellis", "Fletcher", "Grant", "Hayes", "Iwamoto",
    "Jensen", "Keller", "Lambert", "Moreau", "Novak", "Okafor", "Petrov",
];

/// Actor first-name pool.
pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Ben", "Clara", "David", "Elena", "Frank", "Grace", "Hugo", "Iris", "Jonas", "Kira",
    "Leo", "Mara", "Nils", "Olga", "Paul",
];

/// Looks up the per-category pool in one of the `(&str, &[&str])` tables.
pub fn pool_for<'a>(table: &'a [(&str, &[&str])], category: &str) -> &'a [&'a str] {
    table.iter().find(|(c, _)| *c == category).map(|(_, pool)| *pool).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genre_keyword_tables_align() {
        assert_eq!(GENRES.len(), GENRE_KEYWORDS.len());
        for kws in GENRE_KEYWORDS {
            for kw in *kws {
                assert!(KEYWORDS.contains(kw), "{kw} missing from KEYWORDS");
            }
        }
    }

    #[test]
    fn pool_lookup() {
        assert!(pool_for(PROS, "gps").contains(&"compact"));
        assert!(pool_for(CONS, "camera").contains(&"slow_focus"));
        assert!(pool_for(PROS, "nonexistent").is_empty());
    }

    #[test]
    fn brand_focus_subcategories_exist() {
        let all_subs: Vec<&str> =
            OUTDOOR_CATEGORIES.iter().flat_map(|(_, subs, _)| subs.iter().copied()).collect();
        for (brand, focus) in BRANDS {
            for f in *focus {
                assert!(all_subs.contains(f), "{brand} focus {f} unknown");
            }
        }
    }

    #[test]
    fn product_lines_have_known_categories() {
        for (cat, _, models) in PRODUCT_LINES {
            assert!(["gps", "phone", "camera"].contains(cat));
            assert!(!models.is_empty());
        }
    }
}
