//! Datasets for XSACT experiments.
//!
//! The paper demonstrates XSACT on two crawled datasets (Product Reviews
//! from buzzillions.com, Outdoor Retailer from REI.com) and evaluates on a
//! movie dataset extracted from IMDB. None of those crawls is available, so
//! this crate provides deterministic, seeded synthetic generators with the
//! same schema shapes (see DESIGN.md §2 "Substitutions"), plus a hand-built
//! fixture reproducing the paper's Figure 1 worked example *exactly*:
//!
//! * [`fixtures`] — the two TomTom GPS results of Figure 1 with their
//!   printed statistics (11 and 68 reviews, `pro: easy to read: 10`, …).
//! * [`reviews`] — Product Reviews: GPS / phone / camera products, each
//!   with a price, a rating and a set of reviews carrying pros / cons /
//!   best-uses.
//! * [`outdoor`] — Outdoor Retailer: brands with products for outdoor
//!   recreation (category, subcategory, gender, materials, …).
//! * [`movies`] — IMDB-like movie data plus the eight benchmark queries
//!   QM1–QM8 used by Figure 4.
//! * [`jobs`] — a job board (companies → openings → skills/benefits) for
//!   the paper's "employee hiring / job hunting" motivating domain.

pub mod fixtures;
pub mod jobs;
pub mod movies;
pub mod outdoor;
pub mod reviews;
pub mod vocab;

pub use jobs::{JobsGen, JobsGenConfig};
pub use movies::{MovieGenConfig, MoviesGen};
pub use outdoor::{OutdoorGen, OutdoorGenConfig};
pub use reviews::{ReviewsGen, ReviewsGenConfig};
