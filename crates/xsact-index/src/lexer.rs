//! Term extraction shared by the index builder and the query parser.
//!
//! Both sides must agree on what a "term" is, so tokenisation lives in one
//! place: lowercase alphanumeric runs. `TomTom Go 630` and `easy_to_read`
//! tokenise to `[tomtom, go, 630]` and `[easy, to, read]` respectively.

/// Splits text into lowercase alphanumeric terms.
///
/// ```
/// use xsact_index::tokenize;
/// assert_eq!(tokenize("TomTom Go-630"), vec!["tomtom", "go", "630"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms
}

/// Tokenises and removes duplicates, preserving first-seen order. Used when
/// indexing a single node: each (node, term) pair is recorded once.
pub fn tokenize_unique(text: &str) -> Vec<String> {
    let mut terms = tokenize(text);
    let mut seen = std::collections::HashSet::with_capacity(terms.len());
    terms.retain(|t| seen.insert(t.clone()));
    terms
}

/// Streams the normalised terms of `text` into `f` without allocating a
/// `String` per token: the term is assembled in the reusable `scratch`
/// buffer and handed to the callback as a borrowed slice. This is the
/// index builder's hot path — it interns each term straight into the index
/// interner, so steady-state tokenisation allocates nothing.
pub fn for_each_term(text: &str, scratch: &mut String, mut f: impl FnMut(&str)) {
    scratch.clear();
    for c in text.chars() {
        if c.is_alphanumeric() {
            scratch.extend(c.to_lowercase());
        } else if !scratch.is_empty() {
            f(scratch);
            scratch.clear();
        }
    }
    if !scratch.is_empty() {
        f(scratch);
        scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokenize("a,b;c d-e_f"), vec!["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("TomTom GPS"), vec!["tomtom", "gps"]);
        assert_eq!(tokenize("ÉTÉ"), vec!["été"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("Go 630 v2"), vec!["go", "630", "v2"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ...").is_empty());
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        assert_eq!(tokenize_unique("b a b c a"), vec!["b", "a", "c"]);
    }

    #[test]
    fn streaming_terms_match_tokenize() {
        let mut scratch = String::new();
        for text in ["TomTom Go-630", "", "!!! ---", "a,b;c d-e_f", "ÉTÉ x ÉTÉ"] {
            let mut streamed = Vec::new();
            for_each_term(text, &mut scratch, |t| streamed.push(t.to_owned()));
            assert_eq!(streamed, tokenize(text), "{text:?}");
        }
    }
}
