//! Result ranking — one of the companion techniques the paper names for a
//! "full-fledged keyword search engine for structured data" (§3: result
//! differentiation "combines with … result ranking").
//!
//! Scores follow the classic XML keyword-search recipe (XRank / XSeek
//! lineage), combining three signals per result subtree:
//!
//! * **term frequency** — how often the query terms occur inside the
//!   result, dampened logarithmically;
//! * **inverse document frequency** — rarer terms weigh more
//!   (`ln(1 + N / df)` over element count `N` and posting length `df`);
//! * **specificity** — smaller results that still contain every term are
//!   preferred (`1 / ln(e + subtree_size)`), the structured analogue of
//!   snippet proximity.

use crate::postings::InvertedIndex;
use crate::query::Query;
use xsact_xml::{Document, NodeId};

/// A scored result, produced by [`rank_results`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResult {
    /// Root of the result subtree.
    pub root: NodeId,
    /// Combined relevance score (higher is better).
    pub score: f64,
    /// Occurrences of all query terms inside the subtree.
    pub term_hits: u32,
    /// Number of nodes in the subtree.
    pub subtree_size: u32,
}

/// Scores result roots for a query and returns them best-first.
///
/// Ties (identical scores) keep document order, making ranking
/// deterministic.
pub fn rank_results(
    doc: &Document,
    index: &InvertedIndex,
    query: &Query,
    roots: &[NodeId],
) -> Vec<ScoredResult> {
    let element_count = doc.all_nodes().filter(|&n| doc.is_element(n)).count().max(1) as f64;
    let mut scored: Vec<ScoredResult> = roots
        .iter()
        .map(|&root| {
            let subtree_size = doc.descendants(root).count() as u32;
            let mut term_hits = 0u32;
            let mut score = 0.0;
            // Count in-subtree postings per term by ancestor filtering on
            // Dewey IDs.
            let root_dewey = doc.dewey(root);
            for term in query.terms() {
                let postings = index.postings(term);
                if postings.is_empty() {
                    continue;
                }
                let df = postings.len() as f64;
                let tf = postings
                    .iter()
                    .filter(|&&n| root_dewey.is_ancestor_or_self_of(doc.dewey(n)))
                    .count() as u32;
                term_hits += tf;
                if tf > 0 {
                    let idf = (1.0 + element_count / df).ln();
                    score += (1.0 + f64::from(tf)).ln() * idf;
                }
            }
            // Specificity: prefer compact results.
            score /= (std::f64::consts::E + f64::from(subtree_size)).ln();
            ScoredResult { root, score, term_hits, subtree_size }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| doc.dewey(a.root).cmp(doc.dewey(b.root)))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn setup(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn higher_term_frequency_ranks_first() {
        // Two matching elements vs one, at identical subtree size.
        let (doc, idx) = setup("<r><p><t>gps</t><u>gps</u></p><p><t>gps</t><pad>a</pad></p></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let ranked = rank_results(&doc, &idx, &q, &roots);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score > ranked[1].score);
        assert_eq!(ranked[0].term_hits, 2);
        assert_eq!(ranked[1].term_hits, 1);
        assert_eq!(ranked[0].root, roots[0]);
    }

    #[test]
    fn smaller_subtree_wins_at_equal_hits() {
        let (doc, idx) = setup(
            "<r><small><t>gps</t></small>\
             <big><t>gps</t><a>x</a><b>y</b><c>z</c><d>w</d></big></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "small");
        assert!(ranked[0].subtree_size < ranked[1].subtree_size);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        // `zeta` occurs once, `gps` five times: a result matching only zeta
        // beats one matching only gps.
        let (doc, idx) = setup(
            "<r><a><t>zeta</t></a><b><t>gps</t></b>\
             <x><t>gps</t></x><y><t>gps</t></y><z><t>gps</t></z><w><t>gps</t></w></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root())[..2].to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("zeta gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "a");
    }

    #[test]
    fn missing_terms_do_not_panic() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps unicorn"), &roots);
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].score > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        assert!(rank_results(&doc, &idx, &Query::parse("gps"), &[]).is_empty());
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse(""), &roots);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].score, 0.0);
    }

    #[test]
    fn deterministic_tie_break_is_document_order() {
        let (doc, idx) = setup("<r><a><t>gps</t></a><b><t>gps</t></b></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(ranked[0].root, roots[0]);
        assert_eq!(ranked[1].root, roots[1]);
    }
}
