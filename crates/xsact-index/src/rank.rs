//! Result ranking — one of the companion techniques the paper names for a
//! "full-fledged keyword search engine for structured data" (§3: result
//! differentiation "combines with … result ranking").
//!
//! Scores follow the classic XML keyword-search recipe (XRank / XSeek
//! lineage), combining three signals per result subtree:
//!
//! * **term frequency** — how often the query terms occur inside the
//!   result, dampened logarithmically;
//! * **inverse document frequency** — rarer terms weigh more
//!   (`ln(1 + N / df)` over element count `N` and posting length `df`);
//! * **specificity** — smaller results that still contain every term are
//!   preferred (`1 / ln(e + subtree_size)`), the structured analogue of
//!   snippet proximity.

use crate::postings::InvertedIndex;
use crate::query::Query;
use xsact_xml::{Document, NodeId};

/// A scored result, produced by [`rank_results`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResult {
    /// Root of the result subtree.
    pub root: NodeId,
    /// Combined relevance score (higher is better).
    pub score: f64,
    /// Occurrences of all query terms inside the subtree.
    pub term_hits: u32,
    /// Number of nodes in the subtree.
    pub subtree_size: u32,
}

/// Scores result roots for a query and returns them best-first.
///
/// The order is **total and shard-count-independent**: equal scores break
/// ties by Dewey id (document order), never by input order or float quirks
/// (`total_cmp`, so even a NaN score cannot destabilise the sort). Rankings
/// of one document therefore merge deterministically with rankings of
/// other documents, whatever partition produced them — the property the
/// corpus engine's cross-shard k-way merge is built on.
pub fn rank_results(
    doc: &Document,
    index: &InvertedIndex,
    query: &Query,
    roots: &[NodeId],
) -> Vec<ScoredResult> {
    let element_count = doc.all_nodes().filter(|&n| doc.is_element(n)).count().max(1) as f64;
    let mut scored: Vec<ScoredResult> = roots
        .iter()
        .map(|&root| {
            let subtree_size = doc.descendants(root).count() as u32;
            let mut term_hits = 0u32;
            let mut score = 0.0;
            // Count in-subtree postings per term by ancestor filtering on
            // Dewey IDs.
            let root_dewey = doc.dewey(root);
            for term in query.terms() {
                let postings = index.postings(term);
                if postings.is_empty() {
                    continue;
                }
                let df = postings.len() as f64;
                let tf = postings
                    .iter()
                    .filter(|&&n| root_dewey.is_ancestor_or_self_of(doc.dewey(n)))
                    .count() as u32;
                term_hits += tf;
                if tf > 0 {
                    let idf = (1.0 + element_count / df).ln();
                    score += (1.0 + f64::from(tf)).ln() * idf;
                }
            }
            // Specificity: prefer compact results.
            score /= (std::f64::consts::E + f64::from(subtree_size)).ln();
            ScoredResult { root, score, term_hits, subtree_size }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score.total_cmp(&a.score).then_with(|| doc.dewey(a.root).cmp(&doc.dewey(b.root)))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn setup(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn higher_term_frequency_ranks_first() {
        // Two matching elements vs one, at identical subtree size.
        let (doc, idx) = setup("<r><p><t>gps</t><u>gps</u></p><p><t>gps</t><pad>a</pad></p></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let ranked = rank_results(&doc, &idx, &q, &roots);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score > ranked[1].score);
        assert_eq!(ranked[0].term_hits, 2);
        assert_eq!(ranked[1].term_hits, 1);
        assert_eq!(ranked[0].root, roots[0]);
    }

    #[test]
    fn smaller_subtree_wins_at_equal_hits() {
        let (doc, idx) = setup(
            "<r><small><t>gps</t></small>\
             <big><t>gps</t><a>x</a><b>y</b><c>z</c><d>w</d></big></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "small");
        assert!(ranked[0].subtree_size < ranked[1].subtree_size);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        // `zeta` occurs once, `gps` five times: a result matching only zeta
        // beats one matching only gps.
        let (doc, idx) = setup(
            "<r><a><t>zeta</t></a><b><t>gps</t></b>\
             <x><t>gps</t></x><y><t>gps</t></y><z><t>gps</t></z><w><t>gps</t></w></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root())[..2].to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("zeta gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "a");
    }

    #[test]
    fn missing_terms_do_not_panic() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps unicorn"), &roots);
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].score > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        assert!(rank_results(&doc, &idx, &Query::parse("gps"), &[]).is_empty());
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse(""), &roots);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].score, 0.0);
    }

    #[test]
    fn deterministic_tie_break_is_document_order() {
        let (doc, idx) = setup("<r><a><t>gps</t></a><b><t>gps</t></b></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(ranked[0].root, roots[0]);
        assert_eq!(ranked[1].root, roots[1]);
    }

    #[test]
    fn tied_scores_order_by_dewey_regardless_of_input_order() {
        // Four structurally identical siblings → four deliberately tied
        // scores (identical tf, df and subtree size give bitwise-equal
        // f64s). A stable sort without an explicit tie-break would leak
        // the caller's root order into the ranking; feeding the roots
        // reversed (and shuffled) must still yield document order, or
        // cross-shard merges would depend on how each shard enumerated
        // its candidates.
        let (doc, idx) =
            setup("<r><a><t>gps</t></a><b><t>gps</t></b><c><t>gps</t></c><d><t>gps</t></d></r>");
        let in_order: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let baseline = rank_results(&doc, &idx, &q, &in_order);
        assert!(
            baseline.windows(2).all(|w| w[0].score == w[1].score),
            "fixture must produce tied scores"
        );
        let mut reversed = in_order.clone();
        reversed.reverse();
        let shuffled = vec![in_order[2], in_order[0], in_order[3], in_order[1]];
        for adversarial in [reversed, shuffled] {
            let ranked = rank_results(&doc, &idx, &q, &adversarial);
            let roots: Vec<NodeId> = ranked.iter().map(|s| s.root).collect();
            assert_eq!(roots, in_order, "tie-break must be Dewey order, not input order");
        }
    }
}
