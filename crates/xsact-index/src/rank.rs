//! Result ranking — one of the companion techniques the paper names for a
//! "full-fledged keyword search engine for structured data" (§3: result
//! differentiation "combines with … result ranking").
//!
//! Scores follow the classic XML keyword-search recipe (XRank / XSeek
//! lineage), combining three signals per result subtree:
//!
//! * **term frequency** — how often the query terms occur inside the
//!   result, dampened logarithmically;
//! * **inverse document frequency** — rarer terms weigh more
//!   (`ln(1 + N / df)` over element count `N` and posting length `df`);
//! * **specificity** — smaller results that still contain every term are
//!   preferred (`1 / ln(e + subtree_size)`), the structured analogue of
//!   snippet proximity.
//!
//! Two consumers exist: [`rank_results`] sorts every candidate (the
//! correctness oracle and the full-listing path), and [`rank_top_k`] keeps
//! only the best `k` in a bounded heap while preserving the exact total
//! order — the ranking half of the streaming top-k executor.

use crate::postings::{InvertedIndex, PostingsRef};
use crate::query::Query;
use std::collections::BinaryHeap;
use xsact_xml::{DeweyRef, Document, NodeId};

/// A scored result, produced by [`rank_results`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResult {
    /// Root of the result subtree.
    pub root: NodeId,
    /// Combined relevance score (higher is better).
    pub score: f64,
    /// Occurrences of all query terms inside the subtree.
    pub term_hits: u32,
    /// Number of nodes in the subtree.
    pub subtree_size: u32,
}

/// Scores result roots for a query and returns them best-first.
///
/// The order is **total and shard-count-independent**: equal scores break
/// ties by Dewey id (document order), never by input order or float quirks
/// (`total_cmp`, so even a NaN score cannot destabilise the sort). Rankings
/// of one document therefore merge deterministically with rankings of
/// other documents, whatever partition produced them — the property the
/// corpus engine's cross-shard k-way merge is built on.
pub fn rank_results(
    doc: &Document,
    index: &InvertedIndex,
    query: &Query,
    roots: &[NodeId],
) -> Vec<ScoredResult> {
    let scorer = Scorer::new(doc, index, query);
    let mut scored: Vec<ScoredResult> = roots.iter().map(|&root| scorer.score(root)).collect();
    scored.sort_by(|a, b| {
        b.score.total_cmp(&a.score).then_with(|| doc.dewey(a.root).cmp(&doc.dewey(b.root)))
    });
    scored
}

/// Scores the streamed result roots and keeps only the best `k`, in
/// exactly the order [`rank_results`] would produce — `rank_top_k(roots,
/// k)` equals `rank_results(roots)` truncated to `k` for every input
/// (pinned by `tests/properties.rs`, tied scores included), because the
/// ranking order is total.
///
/// Memory is `O(k)` and time `O(n log k)` for the heap instead of the full
/// sort's `O(n log n)`; combined with a streaming SLCA source this is the
/// bounded executor behind `take(k)` and the corpus top-k.
pub fn rank_top_k(
    doc: &Document,
    index: &InvertedIndex,
    query: &Query,
    roots: impl IntoIterator<Item = NodeId>,
    k: usize,
) -> Vec<ScoredResult> {
    let scorer = Scorer::new(doc, index, query);
    let mut heap = TopK::new(k);
    for root in roots {
        let scored = scorer.score(root);
        heap.push(scored.score, doc.dewey(root), scored);
    }
    heap.finish().0
}

/// One resolved posting list inside a [`Scorer`], in whichever shape the
/// index admits for subtree counting.
#[derive(Debug)]
enum ScorerList<'a> {
    /// `doc_ordered` index: a subtree is the contiguous **id** interval
    /// `[root, root + subtree_size)`, so `tf` is a range count straight on
    /// the packed frames — interior frames counted from their skip headers
    /// alone, boundary frames unpacked and counted by the SIMD kernel.
    Packed(PostingsRef<'a>),
    /// Fallback (id order ≠ document order): the list decoded once at
    /// construction, counted by the seed's two Dewey `partition_point`s.
    Flat(Vec<NodeId>),
}

/// The per-query scoring context: posting lists resolved once, inverse
/// document frequencies precomputed once. [`Scorer::score`] then counts
/// in-subtree postings by **range counting** — a result subtree is a
/// contiguous interval of the document order, resolved once per root (not
/// re-derived per term) and counted per posting list as `ScorerList`
/// describes. Produces bit-identical scores to the seed formula: the `tf`
/// integers agree on every root, and the float pipeline is unchanged.
#[derive(Debug)]
pub struct Scorer<'a> {
    doc: &'a Document,
    /// Per query term with at least one posting: the list and its
    /// precomputed `ln(1 + N / df)` weight, in query order.
    terms: Vec<(ScorerList<'a>, f64)>,
}

impl<'a> Scorer<'a> {
    /// Resolves `query` against `index` for repeated scoring over `doc`.
    pub fn new(doc: &'a Document, index: &'a InvertedIndex, query: &Query) -> Scorer<'a> {
        let element_count = doc.element_count().max(1) as f64;
        let terms = query
            .iter()
            .filter_map(|term| {
                let postings = index.postings(term);
                (!postings.is_empty()).then(|| {
                    let idf = (1.0 + element_count / postings.len() as f64).ln();
                    let list = if index.doc_ordered() {
                        ScorerList::Packed(postings)
                    } else {
                        ScorerList::Flat(postings.to_vec())
                    };
                    (list, idf)
                })
            })
            .collect();
        Scorer { doc, terms }
    }

    /// Scores one result root (TF·IDF over the subtree, dampened by
    /// specificity).
    pub fn score(&self, root: NodeId) -> ScoredResult {
        let subtree_size = self.doc.descendants(root).count() as u32;
        let root_dewey = self.doc.dewey(root);
        // The subtree interval, resolved once per root and shared by every
        // term's range count ([`descendants`] includes `root`, so on a
        // preorder document the ids covered are exactly
        // `[root, root + subtree_size)`).
        let lo_id = root.index() as u32;
        let hi_id = lo_id + subtree_size;
        let mut term_hits = 0u32;
        let mut score = 0.0;
        for (list, idf) in &self.terms {
            let tf = match list {
                ScorerList::Packed(p) => p.count_in_id_range(lo_id, hi_id),
                ScorerList::Flat(postings) => {
                    // The subtree's postings are the contiguous run of
                    // entries between `root` and the end of its Dewey
                    // interval.
                    let lo = postings.partition_point(|&n| self.doc.dewey(n) < root_dewey);
                    postings[lo..]
                        .partition_point(|&n| root_dewey.is_ancestor_or_self_of(self.doc.dewey(n)))
                        as u32
                }
            };
            term_hits += tf;
            if tf > 0 {
                score += (1.0 + f64::from(tf)).ln() * idf;
            }
        }
        // Specificity: prefer compact results.
        score /= (std::f64::consts::E + f64::from(subtree_size)).ln();
        ScoredResult { root, score, term_hits, subtree_size }
    }
}

/// A bounded top-k collector over the ranking's total order (score
/// descending, then Dewey ascending). The internal binary heap keeps the
/// *worst* kept entry on top, so a stream of `n` candidates costs
/// `O(n log k)` and `O(k)` memory; [`TopK::finish`] returns the survivors
/// best-first plus the eviction count (candidates scored but pruned).
#[derive(Debug)]
pub(crate) struct TopK<'a, T> {
    k: usize,
    heap: BinaryHeap<TopKEntry<'a, T>>,
    evicted: u64,
}

impl<'a, T> TopK<'a, T> {
    pub(crate) fn new(k: usize) -> TopK<'a, T> {
        TopK { k, heap: BinaryHeap::with_capacity(k.min(1024).saturating_add(1)), evicted: 0 }
    }

    /// Offers one candidate; the payload survives only if the candidate
    /// ranks among the best `k` seen so far.
    pub(crate) fn push(&mut self, score: f64, dewey: DeweyRef<'a>, payload: T) {
        if self.k == 0 {
            self.evicted += 1;
            return;
        }
        let entry = TopKEntry { score, dewey, payload };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return;
        }
        self.evicted += 1;
        // `Ord` sorts worse entries greater, so the heap max is the worst
        // kept entry; replace it only when the newcomer ranks better.
        if entry < *self.heap.peek().expect("k > 0 and the heap is full") {
            self.heap.pop();
            self.heap.push(entry);
        }
    }

    /// The kept payloads best-first, and how many candidates were evicted.
    pub(crate) fn finish(self) -> (Vec<T>, u64) {
        let ordered = self.heap.into_sorted_vec();
        (ordered.into_iter().map(|e| e.payload).collect(), self.evicted)
    }
}

struct TopKEntry<'a, T> {
    score: f64,
    dewey: DeweyRef<'a>,
    payload: T,
}

impl<T> std::fmt::Debug for TopKEntry<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TopKEntry({}, {})", self.score, self.dewey)
    }
}

/// Worse-is-greater order: lower score sorts greater, ties broken by
/// *larger* Dewey sorting greater — the exact inverse of the ranking
/// order, so a max-heap exposes the worst kept entry at its top and
/// `into_sorted_vec` yields best-first.
impl<T> Ord for TopKEntry<'_, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.score.total_cmp(&self.score).then_with(|| self.dewey.cmp(&other.dewey))
    }
}

impl<T> PartialOrd for TopKEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for TopKEntry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<T> Eq for TopKEntry<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn setup(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn higher_term_frequency_ranks_first() {
        // Two matching elements vs one, at identical subtree size.
        let (doc, idx) = setup("<r><p><t>gps</t><u>gps</u></p><p><t>gps</t><pad>a</pad></p></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let ranked = rank_results(&doc, &idx, &q, &roots);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score > ranked[1].score);
        assert_eq!(ranked[0].term_hits, 2);
        assert_eq!(ranked[1].term_hits, 1);
        assert_eq!(ranked[0].root, roots[0]);
    }

    #[test]
    fn smaller_subtree_wins_at_equal_hits() {
        let (doc, idx) = setup(
            "<r><small><t>gps</t></small>\
             <big><t>gps</t><a>x</a><b>y</b><c>z</c><d>w</d></big></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "small");
        assert!(ranked[0].subtree_size < ranked[1].subtree_size);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        // `zeta` occurs once, `gps` five times: a result matching only zeta
        // beats one matching only gps.
        let (doc, idx) = setup(
            "<r><a><t>zeta</t></a><b><t>gps</t></b>\
             <x><t>gps</t></x><y><t>gps</t></y><z><t>gps</t></z><w><t>gps</t></w></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root())[..2].to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("zeta gps"), &roots);
        assert_eq!(doc.tag(ranked[0].root), "a");
    }

    #[test]
    fn missing_terms_do_not_panic() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps unicorn"), &roots);
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].score > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        assert!(rank_results(&doc, &idx, &Query::parse("gps"), &[]).is_empty());
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse(""), &roots);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].score, 0.0);
    }

    #[test]
    fn deterministic_tie_break_is_document_order() {
        let (doc, idx) = setup("<r><a><t>gps</t></a><b><t>gps</t></b></r>");
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let ranked = rank_results(&doc, &idx, &Query::parse("gps"), &roots);
        assert_eq!(ranked[0].root, roots[0]);
        assert_eq!(ranked[1].root, roots[1]);
    }

    #[test]
    fn rank_top_k_equals_the_truncated_full_sort() {
        // Mixed scores *and* a deliberately tied pair (identical siblings),
        // so the heap's tie-break is exercised at every k.
        let (doc, idx) = setup(
            "<r><a><t>gps</t></a><b><t>gps</t></b>\
             <big><t>gps</t><x>pad</x><y>pad</y></big>\
             <two><t>gps</t><u>gps</u></two></r>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let full = rank_results(&doc, &idx, &q, &roots);
        assert!(full.windows(2).any(|w| w[0].score == w[1].score), "fixture must contain a tie");
        for k in 0..=roots.len() + 2 {
            let top = rank_top_k(&doc, &idx, &q, roots.iter().copied(), k);
            assert_eq!(top, full[..k.min(full.len())], "k = {k}");
        }
    }

    #[test]
    fn rank_top_k_handles_empty_inputs() {
        let (doc, idx) = setup("<r><a><t>gps</t></a></r>");
        assert!(rank_top_k(&doc, &idx, &Query::parse("gps"), [], 4).is_empty());
        let roots: Vec<NodeId> = doc.children(doc.root()).to_vec();
        assert!(rank_top_k(&doc, &idx, &Query::parse("gps"), roots, 0).is_empty());
    }

    #[test]
    fn tied_scores_order_by_dewey_regardless_of_input_order() {
        // Four structurally identical siblings → four deliberately tied
        // scores (identical tf, df and subtree size give bitwise-equal
        // f64s). A stable sort without an explicit tie-break would leak
        // the caller's root order into the ranking; feeding the roots
        // reversed (and shuffled) must still yield document order, or
        // cross-shard merges would depend on how each shard enumerated
        // its candidates.
        let (doc, idx) =
            setup("<r><a><t>gps</t></a><b><t>gps</t></b><c><t>gps</t></c><d><t>gps</t></d></r>");
        let in_order: Vec<NodeId> = doc.children(doc.root()).to_vec();
        let q = Query::parse("gps");
        let baseline = rank_results(&doc, &idx, &q, &in_order);
        assert!(
            baseline.windows(2).all(|w| w[0].score == w[1].score),
            "fixture must produce tied scores"
        );
        let mut reversed = in_order.clone();
        reversed.reverse();
        let shuffled = vec![in_order[2], in_order[0], in_order[3], in_order[1]];
        for adversarial in [reversed, shuffled] {
            let ranked = rank_results(&doc, &idx, &q, &adversarial);
            let roots: Vec<NodeId> = ranked.iter().map(|s| s.root).collect();
            assert_eq!(roots, in_order, "tie-break must be Dewey order, not input order");
        }
    }
}
