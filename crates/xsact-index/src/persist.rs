//! Binary persistence for the inverted index.
//!
//! Building the index is a full document scan; for the demo's "large size
//! of the two datasets" (paper §3) it pays to build once and reload. The
//! format is a small, versioned, length-prefixed binary layout that mirrors
//! the in-memory flat substrate — a sorted term dictionary over one
//! contiguous postings arena:
//!
//! ```text
//! magic    b"XIDX"            4 bytes
//! version  u32 LE             currently 2
//! fprint   u64 LE             structural fingerprint of the document
//! terms    u32 LE             number of dictionary entries
//! total    u32 LE             total postings across all terms
//! dictionary, terms in lexicographic order:
//!   term_len u32 LE, term bytes (UTF-8)
//!   post_off u32 LE, post_len u32 LE     span into the postings arena
//! arena:
//!   total × u32 LE            node arena indices, term spans back to back
//! ```
//!
//! Version 1 (the pre-interning layout, postings inline per term) is
//! **rejected** with an "unsupported index version" error — the caller
//! rebuilds the index, exactly as for a fingerprint mismatch.
//!
//! Posting entries are arena indices, which are only meaningful for the
//! exact document the index was built from — the **fingerprint** (FNV-1a
//! over the document structure) is verified on load and mismatches are
//! rejected, so a stale index can never silently corrupt search results.

use crate::postings::InvertedIndex;
use std::io::{self, Read, Write};
use xsact_xml::{Document, FnvHasher, NodeId};

const MAGIC: &[u8; 4] = b"XIDX";
const VERSION: u32 = 2;

/// FNV-style structural fingerprint of a document: node count, tags,
/// attributes and text contents in document order (the workspace-shared
/// [`FnvHasher`], so the constants cannot drift from the interner's).
pub fn document_fingerprint(doc: &Document) -> u64 {
    let mut hasher = FnvHasher::new();
    let mut eat = |bytes: &[u8]| hasher.write(bytes);
    eat(&(doc.len() as u64).to_le_bytes());
    for node in doc.all_nodes() {
        if doc.is_element(node) {
            eat(b"<");
            eat(doc.tag(node).as_bytes());
            for (k, v) in doc.attrs(node) {
                eat(b"@");
                eat(k.as_bytes());
                eat(b"=");
                eat(v.as_bytes());
            }
        } else if let Some(t) = doc.text(node) {
            eat(b"#");
            eat(t.as_bytes());
        }
    }
    hasher.finish()
}

/// Serialises the index (with the document's fingerprint) to `w`.
pub fn save_index(doc: &Document, index: &InvertedIndex, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&document_fingerprint(doc).to_le_bytes())?;
    // The in-memory dictionary already iterates in lexicographic term
    // order, so the output is byte-identical across runs.
    let entries: Vec<(&str, &[NodeId])> = index.dictionary().collect();
    let total: usize = entries.iter().map(|(_, l)| l.len()).sum();
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    w.write_all(&(total as u32).to_le_bytes())?;
    let mut offset = 0u32;
    for (term, postings) in &entries {
        let bytes = term.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&(postings.len() as u32).to_le_bytes())?;
        offset += postings.len() as u32;
    }
    for (_, postings) in &entries {
        for &node in *postings {
            w.write_all(&(node.index() as u32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialises an index for `doc`, verifying magic, version and the
/// document fingerprint.
pub fn load_index(doc: &Document, r: &mut impl Read) -> io::Result<InvertedIndex> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not an XSACT index file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad_data(format!(
            "unsupported index version {version} (expected {VERSION}) — rebuild the index"
        )));
    }
    let fingerprint = read_u64(r)?;
    let expected = document_fingerprint(doc);
    if fingerprint != expected {
        return Err(bad_data("index fingerprint does not match the document — rebuild the index"));
    }
    let term_count = read_u32(r)? as usize;
    let total = read_u32(r)? as usize;
    if total > (1 << 28) {
        return Err(bad_data("unreasonable postings arena size"));
    }
    // Dictionary first: term strings plus their spans into the arena.
    // Capacity hints are clamped so a corrupt header fails on a read error
    // instead of aborting inside a huge allocation.
    const PREALLOC_CAP: usize = 1 << 16;
    let mut dict: Vec<(String, u32, u32)> = Vec::with_capacity(term_count.min(PREALLOC_CAP));
    for _ in 0..term_count {
        let len = read_u32(r)? as usize;
        if len > 1 << 20 {
            return Err(bad_data("unreasonable term length"));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let term = String::from_utf8(buf).map_err(|_| bad_data("term is not valid UTF-8"))?;
        let off = read_u32(r)?;
        let n = read_u32(r)?;
        if (off as usize) + (n as usize) > total {
            return Err(bad_data("term span leaves the postings arena"));
        }
        dict.push((term, off, n));
    }
    // Then the flat arena, validated against the document and adopted
    // directly as the in-memory postings arena — no per-term copies.
    let mut arena: Vec<NodeId> = Vec::with_capacity(total.min(PREALLOC_CAP));
    for _ in 0..total {
        let idx = read_u32(r)? as usize;
        let node = doc.node_handle(idx).ok_or_else(|| bad_data("posting entry out of range"))?;
        arena.push(node);
    }
    Ok(InvertedIndex::from_sorted_dict(dict, arena))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::query::Query;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product><name>TomTom Go</name><kind>GPS</kind></product>\
             <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_postings() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        assert_eq!(loaded.term_count(), index.term_count());
        for term in ["tomtom", "gps", "product", "garmin"] {
            assert_eq!(loaded.postings(term), index.postings(term), "term {term}");
        }
    }

    #[test]
    fn serialisation_is_deterministic() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_index(&d, &index, &mut a).unwrap();
        save_index(&d, &index, &mut b).unwrap();
        assert_eq!(a, b);
        // A save → load → save cycle is also byte-stable.
        let loaded = load_index(&d, &mut a.as_slice()).unwrap();
        let mut c = Vec::new();
        save_index(&d, &loaded, &mut c).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let other =
            parse_document("<shop><product><name>Different</name></product></shop>").unwrap();
        let err = load_index(&other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let d = doc();
        let err = load_index(&d, &mut &b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic") || err.kind() == io::ErrorKind::UnexpectedEof);

        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        buf[4] = 99; // corrupt the version
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported index version 99"));
    }

    /// A v1 `.xidx` file (the pre-interning layout) must be rejected with
    /// the typed "unsupported index version" error — not parsed as garbage
    /// and not a panic.
    #[test]
    fn v1_files_rejected_with_version_error() {
        let d = doc();
        // Hand-assemble a well-formed v1 header + body: magic, version 1,
        // matching fingerprint, one term with one posting (v1 stored
        // postings inline per term).
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&document_fingerprint(&d).to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes()); // term count
        v1.extend_from_slice(&3u32.to_le_bytes()); // term length
        v1.extend_from_slice(b"gps");
        v1.extend_from_slice(&1u32.to_le_bytes()); // postings length
        v1.extend_from_slice(&0u32.to_le_bytes()); // node index
        let err = load_index(&d, &mut v1.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unsupported index version 1"), "unexpected error: {err}");
    }

    #[test]
    fn huge_declared_counts_fail_gracefully() {
        // A crafted header claiming u32::MAX terms must surface a read
        // error, not abort inside a giant preallocation.
        let d = doc();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&document_fingerprint(&d).to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // term count
        buf.extend_from_slice(&0u32.to_le_bytes()); // arena total
        assert!(load_index(&d, &mut buf.as_slice()).is_err());
        // Same for an over-limit arena size.
        let n = buf.len();
        buf[n - 8..n - 4].copy_from_slice(&0u32.to_le_bytes());
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unreasonable postings arena size"));
    }

    #[test]
    fn truncated_file_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(load_index(&d, &mut &buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn out_of_range_posting_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        // Flip the last arena entry to a huge index.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn span_outside_arena_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        // The first dictionary entry's span sits right after the header
        // (4 magic + 4 version + 8 fprint + 4 terms + 4 total) and its
        // term: corrupt its length field to overrun the arena.
        let first_term_len = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
        let len_pos = 24 + 4 + first_term_len + 4; // skip term, skip offset
        buf[len_pos..len_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("leaves the postings arena"), "{err}");
    }

    #[test]
    fn loaded_index_searches_identically() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        let a = SearchEngine::from_parts(d.clone(), index);
        let b = SearchEngine::from_parts(d, loaded);
        let q = Query::parse("tomtom gps");
        assert_eq!(a.search(&q), b.search(&q));
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let a = document_fingerprint(&doc());
        let b = document_fingerprint(
            &parse_document(
                "<shop><product><name>TomTom Go</name><kind>gps</kind></product>\
                 <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
            )
            .unwrap(),
        );
        assert_ne!(a, b);
        // Same content → same fingerprint.
        assert_eq!(a, document_fingerprint(&doc()));
    }
}
