//! Binary persistence for the inverted index.
//!
//! Building the index is a full document scan; for the demo's "large size
//! of the two datasets" (paper §3) it pays to build once and reload. The
//! format is a small, versioned, length-prefixed binary layout that mirrors
//! the in-memory substrate — a sorted term dictionary over one shared
//! arena of delta-bit-packed posting frames:
//!
//! ```text
//! magic      b"XIDX"          4 bytes
//! version    u32 LE           currently 4
//! fprint     u64 LE           structural fingerprint of the document
//! terms      u32 LE           number of dictionary entries
//! total      u32 LE           total postings across all terms
//! frames     u32 LE           number of posting frames
//! data_words u32 LE           u64 words of packed payload
//! dictionary, terms in lexicographic order:
//!   term_len u32 LE, term bytes (UTF-8)
//!   post_len u32 LE           posting count (frame spans are derived:
//!                             frames are contiguous per term, in
//!                             dictionary order, all full but the last)
//! frame table, dictionary order, 9 bytes per frame:
//!   first    u32 LE           first node id of the frame
//!   bit_off  u32 LE           payload bit offset into the data arena
//!   width    u8               0..=32 delta bit width, 0xFF = absolute
//! data:
//!   data_words × u64 LE       payload bits, back to back
//! trailer:
//!   checksum u64 LE           FNV-1a over every preceding byte
//! ```
//!
//! Versions 1 (pre-interning, postings inline per term), 2 (flat `u32`
//! postings arena), and 3 (packed frames, but no checksum trailer) are
//! **rejected** with an "unsupported index version" error — the caller
//! rebuilds the index, exactly as for a fingerprint mismatch.
//!
//! The trailer makes torn writes detectable: a crash (or `kill -9`)
//! mid-save can truncate or interleave bytes, and a file whose body does
//! not hash to its trailer is rejected before the decode-validation pass
//! runs. Writers should pair it with write-to-temp + fsync + atomic
//! rename (the facade's corpus save helpers do), so a reader never
//! observes a half-written file under the final name at all.
//!
//! Posting entries are arena indices, which are only meaningful for the
//! exact document the index was built from — the **fingerprint** (FNV-1a
//! over the document structure) is verified on load and mismatches are
//! rejected, so a stale index can never silently corrupt search results.
//! Every frame is bounds-checked against the payload arena and fully
//! decoded once during load (delta accumulation checked for overflow,
//! every id checked against the document), so a corrupt file fails with a
//! typed [`io::ErrorKind::InvalidData`] error, never a panic — and the
//! validated arrays are then adopted as-is, which keeps a save → load →
//! save cycle byte-stable.

use crate::postings::{is_preorder, InvertedIndex, PackedStore, ABS_WIDTH, FRAME};
use std::io::{self, Read, Write};
use xsact_xml::{Document, FnvHasher};

const MAGIC: &[u8; 4] = b"XIDX";
const VERSION: u32 = 4;

/// Write adapter folding every byte into an FNV-1a checksum on the way
/// through, so the save path computes its trailer without buffering the
/// file.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hasher: FnvHasher,
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.write(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Read twin of [`HashingWriter`]: hashes every byte handed to the
/// parser, so the load path can compare its running checksum against the
/// trailer once the body is consumed.
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hasher: FnvHasher,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.write(&buf[..n]);
        Ok(n)
    }
}

/// FNV-style structural fingerprint of a document: node count, tags,
/// attributes and text contents in document order (the workspace-shared
/// [`FnvHasher`], so the constants cannot drift from the interner's).
pub fn document_fingerprint(doc: &Document) -> u64 {
    let mut hasher = FnvHasher::new();
    let mut eat = |bytes: &[u8]| hasher.write(bytes);
    eat(&(doc.len() as u64).to_le_bytes());
    for node in doc.all_nodes() {
        if doc.is_element(node) {
            eat(b"<");
            eat(doc.tag(node).as_bytes());
            for (k, v) in doc.attrs(node) {
                eat(b"@");
                eat(k.as_bytes());
                eat(b"=");
                eat(v.as_bytes());
            }
        } else if let Some(t) = doc.text(node) {
            eat(b"#");
            eat(t.as_bytes());
        }
    }
    hasher.finish()
}

/// Serialises the index (with the document's fingerprint) to `w`,
/// ending with the FNV-1a checksum trailer over every preceding byte.
pub fn save_index(doc: &Document, index: &InvertedIndex, w: &mut impl Write) -> io::Result<()> {
    let mut w = HashingWriter { inner: w, hasher: FnvHasher::new() };
    let w = &mut w;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&document_fingerprint(doc).to_le_bytes())?;
    // The in-memory dictionary already iterates in lexicographic term
    // order, so the output is byte-identical across runs. Frame headers
    // are written in the same order; their bit offsets address the shared
    // payload arena, which is written verbatim.
    let store = index.store();
    let entries: Vec<_> = index.dictionary().collect();
    let total: usize = entries.iter().map(|(_, l)| l.len()).sum();
    let frames: usize = entries.iter().map(|(_, l)| l.frame_count()).sum();
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    w.write_all(&(total as u32).to_le_bytes())?;
    w.write_all(&(frames as u32).to_le_bytes())?;
    w.write_all(&(store.data.len() as u32).to_le_bytes())?;
    for (term, postings) in &entries {
        let bytes = term.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        w.write_all(&(postings.len() as u32).to_le_bytes())?;
    }
    for (_, postings) in &entries {
        for f in 0..postings.frame_count() {
            let g = postings.first_frame as usize + f;
            w.write_all(&store.frame_first[g].to_le_bytes())?;
            w.write_all(&store.frame_bit_off[g].to_le_bytes())?;
            w.write_all(&[store.frame_width[g]])?;
        }
    }
    for &word in &store.data {
        w.write_all(&word.to_le_bytes())?;
    }
    // The trailer itself is written past the hashed span, straight to the
    // underlying writer.
    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

/// Deserialises an index for `doc`, verifying magic, version, the document
/// fingerprint, the checksum trailer, and every frame of the payload.
pub fn load_index(doc: &Document, r: &mut impl Read) -> io::Result<InvertedIndex> {
    let mut r = HashingReader { inner: r, hasher: FnvHasher::new() };
    let r = &mut r;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not an XSACT index file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad_data(format!(
            "unsupported index version {version} (expected {VERSION}) — rebuild the index"
        )));
    }
    let fingerprint = read_u64(r)?;
    let expected = document_fingerprint(doc);
    if fingerprint != expected {
        return Err(bad_data("index fingerprint does not match the document — rebuild the index"));
    }
    let term_count = read_u32(r)? as usize;
    let total = read_u32(r)? as usize;
    if total > (1 << 28) {
        return Err(bad_data("unreasonable postings arena size"));
    }
    let frame_count = read_u32(r)? as usize;
    if frame_count > total {
        return Err(bad_data("more posting frames than postings"));
    }
    let data_words = read_u32(r)? as usize;
    if data_words > (1 << 25) {
        return Err(bad_data("unreasonable postings payload size"));
    }
    // Dictionary first: term strings plus their posting counts. Frame
    // spans are derived, so the dictionary must account for exactly the
    // declared totals. Capacity hints are clamped so a corrupt header
    // fails on a read error instead of aborting inside a huge allocation.
    const PREALLOC_CAP: usize = 1 << 16;
    let mut dict: Vec<(String, u32)> = Vec::with_capacity(term_count.min(PREALLOC_CAP));
    let mut sum_postings = 0usize;
    let mut sum_frames = 0usize;
    for _ in 0..term_count {
        let len = read_u32(r)? as usize;
        if len > 1 << 20 {
            return Err(bad_data("unreasonable term length"));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let term = String::from_utf8(buf).map_err(|_| bad_data("term is not valid UTF-8"))?;
        if let Some((prev, _)) = dict.last() {
            if *prev >= term {
                return Err(bad_data("dictionary terms are not sorted and unique"));
            }
        }
        let n = read_u32(r)?;
        sum_postings += n as usize;
        sum_frames += (n as usize).div_ceil(FRAME);
        dict.push((term, n));
    }
    if sum_postings != total {
        return Err(bad_data("dictionary postings do not sum to the declared total"));
    }
    if sum_frames != frame_count {
        return Err(bad_data("frame table does not match the dictionary"));
    }
    // Frame table: validate each width and each payload span against the
    // payload arena (entry counts are derived from the dictionary).
    let mut frame_first = Vec::with_capacity(frame_count.min(PREALLOC_CAP));
    let mut frame_bit_off = Vec::with_capacity(frame_count.min(PREALLOC_CAP));
    let mut frame_width = Vec::with_capacity(frame_count.min(PREALLOC_CAP));
    let data_bits = data_words as u64 * 64;
    for &(_, n) in &dict {
        let n = n as usize;
        let frames = n.div_ceil(FRAME);
        for f in 0..frames {
            let count = if (f + 1) * FRAME <= n { FRAME } else { n - f * FRAME };
            let first = read_u32(r)?;
            let bit_off = read_u32(r)?;
            let width = read_u8(r)?;
            let payload_bits = match width {
                w if w <= 32 => (count as u64 - 1) * u64::from(w),
                ABS_WIDTH => (count as u64 - 1) * 32,
                w => return Err(bad_data(format!("corrupt frame bit width {w}"))),
            };
            if u64::from(bit_off) + payload_bits > data_bits {
                return Err(bad_data("frame payload leaves the data arena"));
            }
            frame_first.push(first);
            frame_bit_off.push(bit_off);
            frame_width.push(width);
        }
    }
    let mut data = Vec::with_capacity(data_words.min(PREALLOC_CAP));
    for _ in 0..data_words {
        data.push(read_u64(r)?);
    }
    // Body fully consumed — verify the trailer before the (more
    // expensive) decode-validation pass. A torn or bit-flipped file fails
    // here with a typed error; the trailer itself is read past the hashed
    // span.
    let computed = r.hasher.finish();
    let stored = read_u64(r.inner)?;
    if stored != computed {
        return Err(bad_data("index checksum mismatch — rebuild the index"));
    }
    let store = PackedStore {
        frame_first,
        frame_bit_off,
        frame_width,
        data,
        doc_ordered: is_preorder(doc),
    };
    let index = InvertedIndex::from_packed_parts(dict, store);
    // Decode-validate every list once: delta accumulation checked for u32
    // overflow, every id checked against the document. After this pass the
    // unchecked frame decoders can never read a value the document does
    // not have.
    for (term, postings) in index.dictionary() {
        let ids = postings
            .decode_all_checked()
            .ok_or_else(|| bad_data(format!("corrupt posting delta for term {term:?}")))?;
        for id in ids {
            doc.node_handle(id as usize).ok_or_else(|| bad_data("posting entry out of range"))?;
        }
    }
    Ok(index)
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::query::Query;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product><name>TomTom Go</name><kind>GPS</kind></product>\
             <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
        )
        .unwrap()
    }

    /// Byte offset of the frame table: fixed 32-byte header, then the
    /// dictionary entries.
    fn frame_table_pos(buf: &[u8]) -> usize {
        let terms = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
        let mut pos = 32;
        for _ in 0..terms {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + len + 4;
        }
        pos
    }

    /// Recomputes the checksum trailer after a test mutated the body, so
    /// the mutation reaches the layer under test (decode-validation)
    /// instead of tripping the checksum first.
    fn refresh_trailer(buf: &mut [u8]) {
        let body = buf.len() - 8;
        let mut hasher = FnvHasher::new();
        hasher.write(&buf[..body]);
        let checksum = hasher.finish();
        buf[body..].copy_from_slice(&checksum.to_le_bytes());
    }

    #[test]
    fn round_trip_preserves_postings() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        assert_eq!(loaded.term_count(), index.term_count());
        for term in ["tomtom", "gps", "product", "garmin"] {
            assert_eq!(loaded.postings(term), index.postings(term), "term {term}");
        }
    }

    #[test]
    fn declared_version_is_4() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 4);
    }

    #[test]
    fn serialisation_is_deterministic() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_index(&d, &index, &mut a).unwrap();
        save_index(&d, &index, &mut b).unwrap();
        assert_eq!(a, b);
        // A save → load → save cycle is also byte-stable.
        let loaded = load_index(&d, &mut a.as_slice()).unwrap();
        let mut c = Vec::new();
        save_index(&d, &loaded, &mut c).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let other =
            parse_document("<shop><product><name>Different</name></product></shop>").unwrap();
        let err = load_index(&other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let d = doc();
        let err = load_index(&d, &mut &b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic") || err.kind() == io::ErrorKind::UnexpectedEof);

        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        buf[4] = 99; // corrupt the version
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported index version 99"));
    }

    /// A v1 `.xidx` file (the pre-interning layout) must be rejected with
    /// the typed "unsupported index version" error — not parsed as garbage
    /// and not a panic.
    #[test]
    fn v1_files_rejected_with_version_error() {
        let d = doc();
        // Hand-assemble a well-formed v1 header + body: magic, version 1,
        // matching fingerprint, one term with one posting (v1 stored
        // postings inline per term).
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&document_fingerprint(&d).to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes()); // term count
        v1.extend_from_slice(&3u32.to_le_bytes()); // term length
        v1.extend_from_slice(b"gps");
        v1.extend_from_slice(&1u32.to_le_bytes()); // postings length
        v1.extend_from_slice(&0u32.to_le_bytes()); // node index
        let err = load_index(&d, &mut v1.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unsupported index version 1"), "unexpected error: {err}");
    }

    /// A v2 `.xidx` file (the flat-arena layout) must likewise be rejected
    /// with the typed version error, whatever follows its header.
    #[test]
    fn v2_files_rejected_with_version_error() {
        let d = doc();
        // Hand-assemble a well-formed v2 header + body: magic, version 2,
        // matching fingerprint, one term with a (offset, len) span into a
        // one-entry flat postings arena.
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&document_fingerprint(&d).to_le_bytes());
        v2.extend_from_slice(&1u32.to_le_bytes()); // term count
        v2.extend_from_slice(&1u32.to_le_bytes()); // arena total
        v2.extend_from_slice(&3u32.to_le_bytes()); // term length
        v2.extend_from_slice(b"gps");
        v2.extend_from_slice(&0u32.to_le_bytes()); // post_off
        v2.extend_from_slice(&1u32.to_le_bytes()); // post_len
        v2.extend_from_slice(&0u32.to_le_bytes()); // arena entry
        let err = load_index(&d, &mut v2.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unsupported index version 2"), "unexpected error: {err}");
    }

    /// A v3 `.xidx` file — the current layout minus the checksum trailer
    /// — must be rejected by the version gate (a v3 body would otherwise
    /// misparse its final data word as a trailer).
    #[test]
    fn v3_files_rejected_with_version_error() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        buf.truncate(buf.len() - 8); // exactly the v3 byte stream
        buf[4..8].copy_from_slice(&3u32.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unsupported index version 3"), "unexpected error: {err}");
    }

    #[test]
    fn huge_declared_counts_fail_gracefully() {
        // A crafted header claiming u32::MAX terms must surface a read
        // error, not abort inside a giant preallocation.
        let d = doc();
        let mut head = Vec::new();
        head.extend_from_slice(MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&document_fingerprint(&d).to_le_bytes());
        let crafted = |terms: u32, total: u32, frames: u32, words: u32| {
            let mut buf = head.clone();
            buf.extend_from_slice(&terms.to_le_bytes());
            buf.extend_from_slice(&total.to_le_bytes());
            buf.extend_from_slice(&frames.to_le_bytes());
            buf.extend_from_slice(&words.to_le_bytes());
            load_index(&d, &mut buf.as_slice()).unwrap_err()
        };
        assert!(
            crafted(u32::MAX, 0, 0, 0).to_string().contains("more posting frames")
                || crafted(u32::MAX, 0, 0, 0).kind() == io::ErrorKind::UnexpectedEof
        );
        let err = crafted(0, u32::MAX, 0, 0);
        assert!(err.to_string().contains("unreasonable postings arena size"), "{err}");
        let err = crafted(0, 1 << 20, 1 << 21, 0);
        assert!(err.to_string().contains("more posting frames than postings"), "{err}");
        let err = crafted(0, 1 << 20, 1 << 19, u32::MAX);
        assert!(err.to_string().contains("unreasonable postings payload size"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(load_index(&d, &mut &buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    /// A frame whose declared payload extends past the data arena must be
    /// rejected with the typed bounds error before anything decodes.
    #[test]
    fn truncated_frame_payload_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        // Shrinking the declared payload to zero words orphans every
        // payload-carrying frame.
        buf[28..32].copy_from_slice(&0u32.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("frame payload leaves the data arena"), "{err}");
    }

    /// A frame with an impossible bit width (not `0..=32`, not the
    /// absolute marker) must fail with the typed width error, not a panic
    /// or a garbage decode.
    #[test]
    fn corrupt_frame_bit_width_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let width_pos = frame_table_pos(&buf) + 8; // first frame's width byte
        buf[width_pos] = 40;
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt frame bit width 40"), "{err}");
    }

    /// Deltas that accumulate past `u32::MAX` (or ids past the document)
    /// are caught by the decode-validation pass with typed errors.
    #[test]
    fn corrupt_frame_payload_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut saved = Vec::new();
        save_index(&d, &index, &mut saved).unwrap();
        let data_words = u32::from_le_bytes(saved[28..32].try_into().unwrap()) as usize;
        assert!(data_words > 0, "fixture must carry packed payload");
        // The payload sits between the frame table and the 8-byte trailer.
        let data_end = saved.len() - 8;
        let data_start = data_end - 8 * data_words;

        // Max out every delta (widths untouched): the small widths decode,
        // but some id lands past the document's node arena. The trailer is
        // refreshed so the mutation reaches decode-validation.
        let mut buf = saved.clone();
        for b in &mut buf[data_start..data_end] {
            *b = 0xFF;
        }
        refresh_trailer(&mut buf);
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("posting entry out of range"), "{err}");

        // Additionally widen "gps"'s delta frame (third dictionary entry,
        // after the payload-free width-0 frames of "garmin" and "go") to
        // 32 bits: the all-ones delta then overflows the u32 id space.
        let mut buf = saved.clone();
        let ft = frame_table_pos(&buf);
        let gps_width = &mut buf[ft + 2 * 9 + 8];
        assert!(*gps_width >= 1 && *gps_width <= 32, "gps frame must be a delta frame");
        *gps_width = 32;
        for b in &mut buf[data_start..data_end] {
            *b = 0xFF;
        }
        refresh_trailer(&mut buf);
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt posting delta"), "{err}");
    }

    /// A single flipped payload bit — the torn-write shape the trailer
    /// exists for — is caught by the checksum before decode-validation
    /// ever runs.
    #[test]
    fn flipped_bit_fails_the_checksum() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let data_start = buf.len() - 8 - 8;
        buf[data_start] ^= 0x01;
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // A corrupt trailer (body intact) fails the same way.
        let mut buf2 = Vec::new();
        save_index(&d, &index, &mut buf2).unwrap();
        let last = buf2.len() - 1;
        buf2[last] ^= 0x80;
        let err = load_index(&d, &mut buf2.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn loaded_index_searches_identically() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        let a = SearchEngine::from_parts(d.clone(), index);
        let b = SearchEngine::from_parts(d, loaded);
        let q = Query::parse("tomtom gps");
        assert_eq!(a.search(&q), b.search(&q));
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let a = document_fingerprint(&doc());
        let b = document_fingerprint(
            &parse_document(
                "<shop><product><name>TomTom Go</name><kind>gps</kind></product>\
                 <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
            )
            .unwrap(),
        );
        assert_ne!(a, b);
        // Same content → same fingerprint.
        assert_eq!(a, document_fingerprint(&doc()));
    }
}
