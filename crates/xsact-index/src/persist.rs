//! Binary persistence for the inverted index.
//!
//! Building the index is a full document scan; for the demo's "large size
//! of the two datasets" (paper §3) it pays to build once and reload. The
//! format is a small, versioned, length-prefixed binary layout:
//!
//! ```text
//! magic   b"XIDX"            4 bytes
//! version u32 LE             currently 1
//! fprint  u64 LE             structural fingerprint of the document
//! terms   u32 LE             number of terms
//! per term:
//!   term_len u32 LE, term bytes (UTF-8)
//!   postings u32 LE, then that many u32 LE arena indices
//! ```
//!
//! Posting entries are arena indices, which are only meaningful for the
//! exact document the index was built from — the **fingerprint** (FNV-1a
//! over the document structure) is verified on load and mismatches are
//! rejected, so a stale index can never silently corrupt search results.

use crate::postings::InvertedIndex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use xsact_xml::{Document, NodeId};

const MAGIC: &[u8; 4] = b"XIDX";
const VERSION: u32 = 1;

/// FNV-1a structural fingerprint of a document: node count, tags,
/// attributes and text contents in document order.
pub fn document_fingerprint(doc: &Document) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(&(doc.len() as u64).to_le_bytes());
    for node in doc.all_nodes() {
        if doc.is_element(node) {
            eat(b"<");
            eat(doc.tag(node).as_bytes());
            for (k, v) in doc.attrs(node) {
                eat(b"@");
                eat(k.as_bytes());
                eat(b"=");
                eat(v.as_bytes());
            }
        } else if let Some(t) = doc.text(node) {
            eat(b"#");
            eat(t.as_bytes());
        }
    }
    hash
}

/// Serialises the index (with the document's fingerprint) to `w`.
pub fn save_index(doc: &Document, index: &InvertedIndex, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&document_fingerprint(doc).to_le_bytes())?;
    // Deterministic term order keeps outputs byte-identical across runs.
    let mut terms: Vec<&str> = index.terms().collect();
    terms.sort_unstable();
    w.write_all(&(terms.len() as u32).to_le_bytes())?;
    for term in terms {
        let bytes = term.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        let postings = index.postings(term);
        w.write_all(&(postings.len() as u32).to_le_bytes())?;
        for &node in postings {
            w.write_all(&(node.index() as u32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialises an index for `doc`, verifying magic, version and the
/// document fingerprint.
pub fn load_index(doc: &Document, r: &mut impl Read) -> io::Result<InvertedIndex> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not an XSACT index file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad_data(format!("unsupported index version {version} (expected {VERSION})")));
    }
    let fingerprint = read_u64(r)?;
    let expected = document_fingerprint(doc);
    if fingerprint != expected {
        return Err(bad_data("index fingerprint does not match the document — rebuild the index"));
    }
    let term_count = read_u32(r)? as usize;
    let mut postings: HashMap<String, Vec<NodeId>> = HashMap::with_capacity(term_count);
    for _ in 0..term_count {
        let len = read_u32(r)? as usize;
        if len > 1 << 20 {
            return Err(bad_data("unreasonable term length"));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let term = String::from_utf8(buf).map_err(|_| bad_data("term is not valid UTF-8"))?;
        let n = read_u32(r)? as usize;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = read_u32(r)? as usize;
            let node =
                doc.node_handle(idx).ok_or_else(|| bad_data("posting entry out of range"))?;
            list.push(node);
        }
        postings.insert(term, list);
    }
    Ok(InvertedIndex::from_parts(postings))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::query::Query;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product><name>TomTom Go</name><kind>GPS</kind></product>\
             <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_postings() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        assert_eq!(loaded.term_count(), index.term_count());
        for term in ["tomtom", "gps", "product", "garmin"] {
            assert_eq!(loaded.postings(term), index.postings(term), "term {term}");
        }
    }

    #[test]
    fn serialisation_is_deterministic() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_index(&d, &index, &mut a).unwrap();
        save_index(&d, &index, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let other =
            parse_document("<shop><product><name>Different</name></product></shop>").unwrap();
        let err = load_index(&other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let d = doc();
        let err = load_index(&d, &mut &b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic") || err.kind() == io::ErrorKind::UnexpectedEof);

        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        buf[4] = 99; // corrupt the version
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_file_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(load_index(&d, &mut &buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn out_of_range_posting_rejected() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        // Flip the last posting entry to a huge index.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_index(&d, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn loaded_index_searches_identically() {
        let d = doc();
        let index = InvertedIndex::build(&d);
        let mut buf = Vec::new();
        save_index(&d, &index, &mut buf).unwrap();
        let loaded = load_index(&d, &mut buf.as_slice()).unwrap();
        let a = SearchEngine::from_parts(d.clone(), index);
        let b = SearchEngine::from_parts(d, loaded);
        let q = Query::parse("tomtom gps");
        assert_eq!(a.search(&q), b.search(&q));
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let a = document_fingerprint(&doc());
        let b = document_fingerprint(
            &parse_document(
                "<shop><product><name>TomTom Go</name><kind>gps</kind></product>\
                 <product><name>Garmin Nuvi</name><kind>GPS</kind></product></shop>",
            )
            .unwrap(),
        );
        assert_ne!(a, b);
        // Same content → same fingerprint.
        assert_eq!(a, document_fingerprint(&doc()));
    }
}
