//! Keyword query model.

use crate::lexer::tokenize_unique;
use std::fmt;

/// A conjunctive keyword query, e.g. `{TomTom, GPS}` from the paper's
/// running example. All terms must occur in a result (AND semantics, the
/// standard in XML keyword search).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    terms: Vec<String>,
}

impl Query {
    /// Parses free text into a query: tokenise, lowercase, deduplicate.
    ///
    /// ```
    /// use xsact_index::Query;
    /// let q = Query::parse("TomTom, GPS");
    /// assert_eq!(q.terms(), ["tomtom", "gps"]);
    /// ```
    pub fn parse(text: &str) -> Self {
        Query { terms: tokenize_unique(text) }
    }

    /// Builds a query from pre-tokenised terms (normalised on the way in).
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut q = String::new();
        for t in terms {
            q.push_str(t.as_ref());
            q.push(' ');
        }
        Query::parse(&q)
    }

    /// The normalised terms in first-seen order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Iterates the normalised terms as string slices — what the query
    /// planner and the scorer consume (no `&String` double indirection).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no terms (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.terms.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalises() {
        let q = Query::parse("TomTom, GPS tomtom");
        assert_eq!(q.terms(), ["tomtom", "gps"]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.iter().collect::<Vec<_>>(), ["tomtom", "gps"]);
    }

    #[test]
    fn from_terms_matches_parse() {
        assert_eq!(Query::from_terms(["TomTom", "GPS"]), Query::parse("tomtom gps"));
    }

    #[test]
    fn empty_query() {
        assert!(Query::parse("  ,, !").is_empty());
    }

    #[test]
    fn display_is_braced_list() {
        assert_eq!(Query::parse("men jackets").to_string(), "{men, jackets}");
    }
}
