//! The inverted index: term → XML nodes in document order.
//!
//! Indexing rules (standard for data-centric XML keyword search):
//!
//! * an **element** node matches the terms of its tag name and of its
//!   attribute names and values;
//! * a **text** run contributes its terms to the *parent element* — so match
//!   nodes are always elements, which is what LCA semantics expect.
//!
//! Storage is flat, in the style of the document substrate: terms are
//! normalised straight into a term [`Interner`] (one heap copy per distinct
//! term), every posting list is a span into **one contiguous arena** of
//! [`NodeId`]s, and a sorted term dictionary gives deterministic iteration
//! order. Posting lists are sorted by Dewey ID (document order) and
//! deduplicated, ready for the binary-search probes of the Indexed Lookup
//! Eager SLCA algorithm.

use crate::lexer::for_each_term;
use xsact_xml::{Document, Interner, NodeId, Sym};

/// An inverted index over one [`Document`].
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// Distinct normalised terms; a term's [`Sym`] indexes `spans`.
    terms: Interner,
    /// Per term symbol, the `(offset, len)` span of its posting list inside
    /// `postings`.
    spans: Vec<(u32, u32)>,
    /// One flat arena holding every posting list back to back.
    postings: Vec<NodeId>,
    /// The term dictionary: symbols sorted by term text. Iteration and
    /// persistence use this order, so both are deterministic.
    sorted: Vec<Sym>,
}

impl InvertedIndex {
    /// Builds the index in a single pass over the document.
    pub fn build(doc: &Document) -> Self {
        let mut terms = Interner::new();
        // Per term symbol, the raw posting list (document-order sort and
        // dedup happen once, in `finish`).
        let mut lists: Vec<Vec<NodeId>> = Vec::new();
        let mut scratch = String::new();
        // Terms already recorded for the node under construction — nodes
        // carry few distinct terms, so a linear scan beats hashing.
        let mut node_terms: Vec<Sym> = Vec::new();
        let add_text = |lists: &mut Vec<Vec<NodeId>>,
                        terms: &mut Interner,
                        node_terms: &mut Vec<Sym>,
                        scratch: &mut String,
                        text: &str,
                        node: NodeId| {
            for_each_term(text, scratch, |term| {
                let sym = terms.intern(term);
                if sym.index() == lists.len() {
                    lists.push(Vec::new());
                }
                if !node_terms.contains(&sym) {
                    node_terms.push(sym);
                    lists[sym.index()].push(node);
                }
            });
        };
        for node in doc.all_nodes() {
            if doc.is_element(node) {
                node_terms.clear();
                add_text(
                    &mut lists,
                    &mut terms,
                    &mut node_terms,
                    &mut scratch,
                    doc.tag(node),
                    node,
                );
                for (name, value) in doc.attrs(node) {
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, name, node);
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, value, node);
                }
            } else if let Some(t) = doc.text(node) {
                if let Some(parent) = doc.parent(node) {
                    // Dedup within this text run only — the parent may
                    // legitimately appear once per child text run, and the
                    // final document-order dedup collapses those.
                    node_terms.clear();
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, t, parent);
                }
            }
        }
        // Sort each list by document order and deduplicate (an element may
        // match a term through both its tag and several text children).
        for list in &mut lists {
            list.sort_by(|&a, &b| doc.dewey(a).cmp(&doc.dewey(b)));
            list.dedup();
        }
        InvertedIndex::from_lists(terms, lists)
    }

    /// Assembles the flat arena from per-term lists. Lists must already be
    /// sorted in document order and deduplicated.
    fn from_lists(terms: Interner, lists: Vec<Vec<NodeId>>) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut postings = Vec::with_capacity(total);
        let mut spans = Vec::with_capacity(lists.len());
        for list in &lists {
            spans.push((postings.len() as u32, list.len() as u32));
            postings.extend_from_slice(list);
        }
        let mut sorted: Vec<Sym> = terms.iter().map(|(sym, _)| sym).collect();
        sorted.sort_by(|&a, &b| terms.resolve(a).cmp(terms.resolve(b)));
        InvertedIndex { terms, spans, postings, sorted }
    }

    /// Adopts a loaded flat arena directly: `dict` pairs each term with its
    /// `(offset, len)` span into `arena`. Spans must lie inside the arena
    /// (the persistence loader validates this) and each span's postings
    /// must be in document order — the invariant `save_index` preserves.
    /// Unlike [`from_term_lists`](Self::from_term_lists) this makes no
    /// per-term copies; the arena is moved in as-is.
    pub(crate) fn from_sorted_dict(dict: Vec<(String, u32, u32)>, arena: Vec<NodeId>) -> Self {
        let mut terms = Interner::new();
        let mut spans = Vec::with_capacity(dict.len());
        let mut sorted = Vec::with_capacity(dict.len());
        for (term, off, len) in &dict {
            let sym = terms.intern(term);
            if sym.index() == spans.len() {
                spans.push((*off, *len));
                sorted.push(sym);
            } else {
                // Duplicate term in the input: keep the last span, matching
                // the seed's HashMap-based loader.
                spans[sym.index()] = (*off, *len);
            }
        }
        // A well-formed v2 file is already sorted; enforce it anyway so
        // dictionary iteration order never depends on input bytes.
        sorted.sort_by(|&a, &b| terms.resolve(a).cmp(terms.resolve(b)));
        InvertedIndex { terms, spans, postings: arena, sorted }
    }

    /// Rebuilds an index from `(term, postings)` pairs. Lists must already
    /// be sorted in document order — the invariant `build` establishes and
    /// `save_index` preserves.
    pub fn from_term_lists(entries: impl IntoIterator<Item = (String, Vec<NodeId>)>) -> Self {
        let mut terms = Interner::new();
        let mut lists = Vec::new();
        for (term, list) in entries {
            let sym = terms.intern(&term);
            if sym.index() == lists.len() {
                lists.push(list);
            } else {
                // Duplicate term in the input: keep the last list, like the
                // seed's HashMap-based loader did.
                lists[sym.index()] = list;
            }
        }
        InvertedIndex::from_lists(terms, lists)
    }

    /// The symbol of an (already normalised) term, if it occurs.
    pub fn term_sym(&self, term: &str) -> Option<Sym> {
        self.terms.lookup(term)
    }

    /// The posting list of a (already normalised) term; empty slice if the
    /// term does not occur.
    pub fn postings(&self, term: &str) -> &[NodeId] {
        self.term_sym(term).map_or(&[], |sym| self.postings_of(sym))
    }

    /// The posting list behind a term symbol.
    pub fn postings_of(&self, sym: Sym) -> &[NodeId] {
        let (offset, len) = self.spans[sym.index()];
        &self.postings[offset as usize..(offset + len) as usize]
    }

    /// Whether the term occurs anywhere in the document.
    pub fn contains(&self, term: &str) -> bool {
        self.term_sym(term).is_some()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates the indexed terms in lexicographic (dictionary) order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.sorted.iter().map(|&sym| self.terms.resolve(sym))
    }

    /// Iterates `(term, postings)` in dictionary order — what the
    /// persistence layer serialises.
    pub fn dictionary(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.sorted.iter().map(|&sym| (self.terms.resolve(sym), self.postings_of(sym)))
    }

    /// Summary statistics for diagnostics and benchmarks.
    pub fn stats(&self) -> IndexStats {
        let longest = self.spans.iter().map(|&(_, len)| len as usize).max().unwrap_or(0);
        IndexStats {
            terms: self.spans.len(),
            total_postings: self.postings.len(),
            longest_list: longest,
        }
    }

    /// Heap bytes of the index (term interner + spans + postings arena),
    /// for the substrate-footprint statistics.
    pub fn heap_bytes(&self) -> usize {
        self.terms.heap_bytes()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.postings.capacity() * std::mem::size_of::<NodeId>()
            + self.sorted.capacity() * std::mem::size_of::<Sym>()
    }
}

/// Aggregate size figures of an [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct terms.
    pub terms: usize,
    /// Total posting entries across all terms.
    pub total_postings: usize,
    /// Length of the longest posting list.
    pub longest_list: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product category=\"gps\"><name>TomTom Go</name><rating>4.2</rating></product>\
             <product><name>Garmin</name><note>a gps too</note></product></shop>",
        )
        .unwrap()
    }

    #[test]
    fn tag_terms_indexed_on_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // Every element tagged `product` matches the term.
        assert_eq!(idx.postings("product").len(), 2);
        assert_eq!(idx.postings("shop").len(), 1);
        assert_eq!(idx.postings("shop")[0], d.root());
    }

    #[test]
    fn text_terms_attach_to_parent_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let tomtom = idx.postings("tomtom");
        assert_eq!(tomtom.len(), 1);
        assert_eq!(d.tag(tomtom[0]), "name");
    }

    #[test]
    fn attribute_names_and_values_indexed() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // `gps` occurs as an attribute value on product 1 and in text under
        // product 2's note.
        let gps = idx.postings("gps");
        assert_eq!(gps.len(), 2);
        assert_eq!(d.tag(gps[0]), "product");
        assert_eq!(d.tag(gps[1]), "note");
        assert_eq!(idx.postings("category").len(), 1);
    }

    #[test]
    fn postings_in_document_order() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for term in ["product", "gps", "name"] {
            let list = idx.postings(term);
            for pair in list.windows(2) {
                assert!(d.dewey(pair[0]) < d.dewey(pair[1]), "term {term} out of order");
            }
        }
    }

    #[test]
    fn numbers_are_terms() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("4").len(), 1);
        assert_eq!(idx.postings("2").len(), 1);
    }

    #[test]
    fn missing_term_is_empty() {
        let idx = InvertedIndex::build(&doc());
        assert!(idx.postings("zzz").is_empty());
        assert!(!idx.contains("zzz"));
        assert!(idx.contains("tomtom"));
        assert_eq!(idx.term_sym("zzz"), None);
    }

    #[test]
    fn duplicate_terms_in_one_node_deduplicated() {
        let d = parse_document("<a><b>x x x</b></a>").unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("x").len(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let idx = InvertedIndex::build(&doc());
        let s = idx.stats();
        assert_eq!(s.terms, idx.term_count());
        assert!(s.total_postings >= s.terms);
        assert!(s.longest_list >= 2); // "product" has two entries
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn terms_iterate_in_dictionary_order() {
        let idx = InvertedIndex::build(&doc());
        let terms: Vec<&str> = idx.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        assert_eq!(terms.len(), idx.term_count());
        // The dictionary pairs terms with their spans.
        for (term, list) in idx.dictionary() {
            assert_eq!(list, idx.postings(term));
        }
    }

    #[test]
    fn term_sym_resolves_to_same_span() {
        let idx = InvertedIndex::build(&doc());
        let sym = idx.term_sym("gps").unwrap();
        assert_eq!(idx.postings_of(sym), idx.postings("gps"));
    }

    #[test]
    fn from_term_lists_round_trips() {
        let d = doc();
        let built = InvertedIndex::build(&d);
        let rebuilt = InvertedIndex::from_term_lists(
            built.dictionary().map(|(t, l)| (t.to_owned(), l.to_vec())),
        );
        assert_eq!(rebuilt.term_count(), built.term_count());
        for (term, list) in built.dictionary() {
            assert_eq!(rebuilt.postings(term), list, "term {term}");
        }
    }
}
