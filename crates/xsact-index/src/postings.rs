//! The inverted index: term → XML nodes in document order.
//!
//! Indexing rules (standard for data-centric XML keyword search):
//!
//! * an **element** node matches the terms of its tag name and of its
//!   attribute names and values;
//! * a **text** run contributes its terms to the *parent element* — so match
//!   nodes are always elements, which is what LCA semantics expect.
//!
//! Storage is compressed: terms are normalised straight into a term
//! [`Interner`] (one heap copy per distinct term) and every posting list is
//! split into 128-entry (`FRAME`) **delta-bit-packed frames** living in one
//! shared bit arena. Each frame carries a tiny skip header — first node id,
//! bit offset, bit width — so the gallop probes of the Indexed Lookup Eager
//! SLCA algorithm can step over whole frames without touching the payload,
//! and a frame is only unpacked when a probe actually lands inside it.
//!
//! Frame encodings, selected per frame by the `width` header byte:
//!
//! * `0` — a consecutive run: entry `i` is `first + i`, zero payload bits.
//!   (Single-entry lists are the degenerate case.)
//! * `1..=32` — strictly increasing ids stored as `delta − 1` values of
//!   `width` bits each; the first id lives in the header.
//! * `0xFF` — absolute fallback for non-monotone id sequences (a document
//!   whose arena order differs from document order): raw 32-bit ids.
//!
//! Posting lists are sorted by Dewey ID (document order) and deduplicated.
//! For documents whose node ids are assigned in preorder (`doc_ordered`),
//! document order coincides with id order, which makes every frame a
//! `width ≤ 32` delta frame and unlocks the integer fast paths in the query
//! planner and the scorer. The flat `Vec<NodeId>` representation survives
//! only as [`PostingsRef::to_vec`] — the oracle the property suite compares
//! against.

use crate::lexer::for_each_term;
use xsact_xml::{Document, Interner, NodeId, Sym};

/// Entries per posting frame. 128 ids keep the skip headers at ~0.6 bits
/// per posting while one frame still fits a pair of cache lines unpacked.
pub(crate) const FRAME: usize = 128;

/// `frame_width` marker for absolute (non-delta) frames.
pub(crate) const ABS_WIDTH: u8 = 0xFF;

/// The shared frame arena behind every posting list of one index.
///
/// Frames are stored as parallel arrays (9 bytes of header per frame instead
/// of a padded struct) plus one bit-granular payload arena — payloads are
/// packed back to back with no word alignment, which is what keeps the
/// packed form ≥3× smaller than the flat `Vec<NodeId>` arena it replaced.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedStore {
    /// First node id of each frame (also the anchor deltas decode from).
    pub(crate) frame_first: Vec<u32>,
    /// Bit offset of each frame's payload inside `data`.
    pub(crate) frame_bit_off: Vec<u32>,
    /// Bits per packed entry: `0..=32` for delta frames, [`ABS_WIDTH`] for
    /// absolute frames.
    pub(crate) frame_width: Vec<u8>,
    /// The payload bit arena.
    pub(crate) data: Vec<u64>,
    /// Whether node ids are assigned in preorder, i.e. id order == document
    /// order and every subtree is one contiguous id interval. Gates the
    /// integer-compare fast paths; `false` is always safe.
    pub(crate) doc_ordered: bool,
}

impl PackedStore {
    /// Bytes of the packed representation: skip headers + payload.
    pub(crate) fn packed_bytes(&self) -> usize {
        self.frame_first.len() * 4
            + self.frame_bit_off.len() * 4
            + self.frame_width.len()
            + self.data.len() * 8
    }
}

/// Reads `width ≤ 32` bits at bit offset `bit_off` of `data`.
#[inline]
pub(crate) fn read_bits(data: &[u64], bit_off: u64, width: u32) -> u32 {
    debug_assert!((1..=32).contains(&width));
    let word = (bit_off / 64) as usize;
    let shift = (bit_off % 64) as u32;
    let mut v = data[word] >> shift;
    if shift + width > 64 {
        v |= data[word + 1] << (64 - shift);
    }
    let mask = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
    (v & mask) as u32
}

/// Bits needed to store `x` (0 for `x == 0`).
#[inline]
fn bits_for(x: u32) -> u32 {
    32 - x.leading_zeros()
}

/// Append-only encoder producing a [`PackedStore`].
#[derive(Default)]
struct PackedBuilder {
    frame_first: Vec<u32>,
    frame_bit_off: Vec<u32>,
    frame_width: Vec<u8>,
    data: Vec<u64>,
    bit_len: u64,
}

impl PackedBuilder {
    fn push_bits(&mut self, v: u32, width: u32) {
        if width == 0 {
            return;
        }
        let end_words = (self.bit_len + u64::from(width)).div_ceil(64) as usize;
        if self.data.len() < end_words {
            self.data.resize(end_words, 0);
        }
        let word = (self.bit_len / 64) as usize;
        let shift = (self.bit_len % 64) as u32;
        self.data[word] |= u64::from(v) << shift;
        if shift + width > 64 {
            self.data[word + 1] |= u64::from(v) >> (64 - shift);
        }
        self.bit_len += u64::from(width);
    }

    /// Encodes one frame (≤ [`FRAME`] ids, first id always in the header).
    fn push_frame(&mut self, ids: &[u32]) {
        debug_assert!(!ids.is_empty() && ids.len() <= FRAME);
        // Bit offsets are persisted as u32 — a ~512 MB payload ceiling the
        // loader also enforces.
        debug_assert!(self.bit_len <= u64::from(u32::MAX));
        let first = ids[0];
        let mut monotone = true;
        let mut max_dm1 = 0u32;
        let mut prev = first;
        for &v in &ids[1..] {
            if v <= prev {
                monotone = false;
                break;
            }
            max_dm1 = max_dm1.max(v - prev - 1);
            prev = v;
        }
        self.frame_first.push(first);
        self.frame_bit_off.push(self.bit_len as u32);
        if monotone {
            let width = bits_for(max_dm1);
            self.frame_width.push(width as u8);
            let mut prev = first;
            for &v in &ids[1..] {
                self.push_bits(v - prev - 1, width);
                prev = v;
            }
        } else {
            self.frame_width.push(ABS_WIDTH);
            for &v in &ids[1..] {
                self.push_bits(v, 32);
            }
        }
    }

    fn finish(self, doc_ordered: bool) -> PackedStore {
        PackedStore {
            frame_first: self.frame_first,
            frame_bit_off: self.frame_bit_off,
            frame_width: self.frame_width,
            data: self.data,
            doc_ordered,
        }
    }
}

/// Whether node ids were assigned in preorder: the `n`-th node of a
/// document-order traversal has arena index `n`, so id order is document
/// order and a subtree is the contiguous interval
/// `[root, root + subtree_size)`.
pub(crate) fn is_preorder(doc: &Document) -> bool {
    let mut next = 0usize;
    for n in doc.all_nodes() {
        if n.index() != next {
            return false;
        }
        next += 1;
    }
    next == doc.len()
}

/// An inverted index over one [`Document`].
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// Distinct normalised terms; a term's [`Sym`] indexes `spans`.
    terms: Interner,
    /// Per term symbol, `(first_frame, posting_count)` into the store.
    /// A term's frames are contiguous; all are full except the last.
    spans: Vec<(u32, u32)>,
    /// The shared frame arena.
    store: PackedStore,
    /// The term dictionary: symbols sorted by term text. Iteration and
    /// persistence use this order, so both are deterministic.
    sorted: Vec<Sym>,
}

impl InvertedIndex {
    /// Builds the index in a single pass over the document.
    pub fn build(doc: &Document) -> Self {
        let mut terms = Interner::new();
        // Per term symbol, the raw posting list (document-order sort and
        // dedup happen once, in `finish`).
        let mut lists: Vec<Vec<NodeId>> = Vec::new();
        let mut scratch = String::new();
        // Terms already recorded for the node under construction — nodes
        // carry few distinct terms, so a linear scan beats hashing.
        let mut node_terms: Vec<Sym> = Vec::new();
        let add_text = |lists: &mut Vec<Vec<NodeId>>,
                        terms: &mut Interner,
                        node_terms: &mut Vec<Sym>,
                        scratch: &mut String,
                        text: &str,
                        node: NodeId| {
            for_each_term(text, scratch, |term| {
                let sym = terms.intern(term);
                if sym.index() == lists.len() {
                    lists.push(Vec::new());
                }
                if !node_terms.contains(&sym) {
                    node_terms.push(sym);
                    lists[sym.index()].push(node);
                }
            });
        };
        for node in doc.all_nodes() {
            if doc.is_element(node) {
                node_terms.clear();
                add_text(
                    &mut lists,
                    &mut terms,
                    &mut node_terms,
                    &mut scratch,
                    doc.tag(node),
                    node,
                );
                for (name, value) in doc.attrs(node) {
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, name, node);
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, value, node);
                }
            } else if let Some(t) = doc.text(node) {
                if let Some(parent) = doc.parent(node) {
                    // Dedup within this text run only — the parent may
                    // legitimately appear once per child text run, and the
                    // final document-order dedup collapses those.
                    node_terms.clear();
                    add_text(&mut lists, &mut terms, &mut node_terms, &mut scratch, t, parent);
                }
            }
        }
        // Sort each list by document order and deduplicate (an element may
        // match a term through both its tag and several text children).
        for list in &mut lists {
            list.sort_by(|&a, &b| doc.dewey(a).cmp(&doc.dewey(b)));
            list.dedup();
        }
        InvertedIndex::from_lists(terms, lists, is_preorder(doc))
    }

    /// Packs per-term lists into the frame store. Lists must already be
    /// sorted in document order and deduplicated; `doc_ordered` states
    /// whether document order is also id order (see [`PackedStore`]).
    fn from_lists(terms: Interner, lists: Vec<Vec<NodeId>>, doc_ordered: bool) -> Self {
        let mut b = PackedBuilder::default();
        let mut spans = Vec::with_capacity(lists.len());
        let mut ids: Vec<u32> = Vec::new();
        for list in &lists {
            let first_frame = b.frame_first.len() as u32;
            for chunk in list.chunks(FRAME) {
                ids.clear();
                ids.extend(chunk.iter().map(|n| n.index() as u32));
                b.push_frame(&ids);
            }
            spans.push((first_frame, list.len() as u32));
        }
        let mut sorted: Vec<Sym> = terms.iter().map(|(sym, _)| sym).collect();
        sorted.sort_by(|&a, &b| terms.resolve(a).cmp(terms.resolve(b)));
        InvertedIndex { terms, spans, store: b.finish(doc_ordered), sorted }
    }

    /// Adopts a loaded frame store directly: `dict` pairs each term with its
    /// posting count, in the same order the store's frames were written
    /// (frames of consecutive terms are contiguous, all full but the last).
    /// The persistence loader validates terms (sorted, unique) and frames
    /// before calling this, so the arrays are moved in as-is — which is what
    /// keeps save → load → save byte-stable.
    pub(crate) fn from_packed_parts(dict: Vec<(String, u32)>, store: PackedStore) -> Self {
        let mut terms = Interner::new();
        let mut spans = Vec::with_capacity(dict.len());
        let mut sorted = Vec::with_capacity(dict.len());
        let mut next_frame = 0u32;
        for (term, len) in &dict {
            let sym = terms.intern(term);
            debug_assert_eq!(sym.index(), spans.len(), "loader guarantees unique terms");
            spans.push((next_frame, *len));
            sorted.push(sym);
            next_frame += (*len as usize).div_ceil(FRAME) as u32;
        }
        InvertedIndex { terms, spans, store, sorted }
    }

    /// Rebuilds an index from `(term, postings)` pairs. Lists must already
    /// be sorted in document order — the invariant `build` establishes and
    /// `save_index` preserves. Without a document to check against, the
    /// result is conservatively marked not `doc_ordered` (integer fast
    /// paths stay off; results are identical either way).
    pub fn from_term_lists(entries: impl IntoIterator<Item = (String, Vec<NodeId>)>) -> Self {
        let mut terms = Interner::new();
        let mut lists = Vec::new();
        for (term, list) in entries {
            let sym = terms.intern(&term);
            if sym.index() == lists.len() {
                lists.push(list);
            } else {
                // Duplicate term in the input: keep the last list, like the
                // seed's HashMap-based loader did.
                lists[sym.index()] = list;
            }
        }
        InvertedIndex::from_lists(terms, lists, false)
    }

    /// The symbol of an (already normalised) term, if it occurs.
    pub fn term_sym(&self, term: &str) -> Option<Sym> {
        self.terms.lookup(term)
    }

    /// The posting list of a (already normalised) term; empty if the term
    /// does not occur.
    pub fn postings(&self, term: &str) -> PostingsRef<'_> {
        self.term_sym(term)
            .map_or(PostingsRef { store: &self.store, first_frame: 0, len: 0 }, |sym| {
                self.postings_of(sym)
            })
    }

    /// The posting list behind a term symbol.
    pub fn postings_of(&self, sym: Sym) -> PostingsRef<'_> {
        let (first_frame, len) = self.spans[sym.index()];
        PostingsRef { store: &self.store, first_frame, len }
    }

    /// Whether the term occurs anywhere in the document.
    pub fn contains(&self, term: &str) -> bool {
        self.term_sym(term).is_some()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.spans.len()
    }

    /// Whether node id order is document order for the indexed document
    /// (see [`PackedStore::doc_ordered`]).
    pub(crate) fn doc_ordered(&self) -> bool {
        self.store.doc_ordered
    }

    /// The shared frame store (persistence serialises its arrays).
    pub(crate) fn store(&self) -> &PackedStore {
        &self.store
    }

    /// Iterates the indexed terms in lexicographic (dictionary) order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.sorted.iter().map(|&sym| self.terms.resolve(sym))
    }

    /// Iterates `(term, postings)` in dictionary order — what the
    /// persistence layer serialises.
    pub fn dictionary(&self) -> impl Iterator<Item = (&str, PostingsRef<'_>)> {
        self.sorted.iter().map(|&sym| (self.terms.resolve(sym), self.postings_of(sym)))
    }

    /// Summary statistics for diagnostics and benchmarks.
    pub fn stats(&self) -> IndexStats {
        let longest = self.spans.iter().map(|&(_, len)| len as usize).max().unwrap_or(0);
        let total: usize = self.spans.iter().map(|&(_, len)| len as usize).sum();
        IndexStats {
            terms: self.spans.len(),
            total_postings: total,
            longest_list: longest,
            packed_postings_bytes: self.store.packed_bytes(),
            flat_postings_bytes: total * std::mem::size_of::<NodeId>(),
        }
    }

    /// Heap bytes of the index (term interner + spans + frame store), for
    /// the substrate-footprint statistics.
    pub fn heap_bytes(&self) -> usize {
        self.terms.heap_bytes()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.store.frame_first.capacity() * std::mem::size_of::<u32>()
            + self.store.frame_bit_off.capacity() * std::mem::size_of::<u32>()
            + self.store.frame_width.capacity()
            + self.store.data.capacity() * std::mem::size_of::<u64>()
            + self.sorted.capacity() * std::mem::size_of::<Sym>()
    }
}

/// A borrowed view of one packed posting list.
///
/// Random access decodes a whole frame, so hot loops either iterate
/// ([`iter`](Self::iter) caches the current frame) or keep their own frame
/// cache keyed by frame number (the query planner's cursors do).
#[derive(Clone, Copy)]
pub struct PostingsRef<'a> {
    pub(crate) store: &'a PackedStore,
    pub(crate) first_frame: u32,
    pub(crate) len: u32,
}

impl<'a> PostingsRef<'a> {
    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of frames backing the list.
    pub(crate) fn frame_count(&self) -> usize {
        self.len().div_ceil(FRAME)
    }

    /// Entries in frame `f` (all frames are full except the last).
    pub(crate) fn count_in_frame(&self, f: usize) -> usize {
        debug_assert!(f < self.frame_count());
        if (f + 1) * FRAME <= self.len() {
            FRAME
        } else {
            self.len() - f * FRAME
        }
    }

    /// First node id of frame `f` — straight from the skip header, no
    /// decode.
    pub(crate) fn frame_first(&self, f: usize) -> u32 {
        self.store.frame_first[self.first_frame as usize + f]
    }

    /// Unpacks frame `f` into `out`, returning the entry count.
    pub(crate) fn decode_frame_into(&self, f: usize, out: &mut [u32; FRAME]) -> usize {
        let n = self.count_in_frame(f);
        let g = self.first_frame as usize + f;
        let first = self.store.frame_first[g];
        out[0] = first;
        match self.store.frame_width[g] {
            0 => {
                for (i, slot) in out[..n].iter_mut().enumerate() {
                    *slot = first + i as u32;
                }
            }
            ABS_WIDTH => {
                let mut off = u64::from(self.store.frame_bit_off[g]);
                for slot in &mut out[1..n] {
                    *slot = read_bits(&self.store.data, off, 32);
                    off += 32;
                }
            }
            w if n > 1 => {
                // Rolling bit buffer: one word fetch per 64 payload bits
                // instead of a div/mod/shift recomputation per delta.
                let w = u32::from(w);
                let data = &self.store.data;
                let off = u64::from(self.store.frame_bit_off[g]);
                let mut word = (off / 64) as usize;
                let shift = (off % 64) as u32;
                let mut acc = data[word] >> shift;
                let mut avail = 64 - shift;
                word += 1;
                let mask = if w == 32 { u64::from(u32::MAX) } else { (1u64 << w) - 1 };
                let mut prev = first;
                for slot in &mut out[1..n] {
                    let d = if avail >= w {
                        let d = (acc & mask) as u32;
                        acc >>= w;
                        avail -= w;
                        d
                    } else {
                        let next = data[word];
                        word += 1;
                        let d = ((acc | (next << avail)) & mask) as u32;
                        let taken = w - avail;
                        acc = next >> taken;
                        avail = 64 - taken;
                        d
                    };
                    prev = prev + d + 1;
                    *slot = prev;
                }
            }
            // Single-entry frame with a nonzero width byte: no payload to
            // touch (and its bit offset may sit at the end of the arena).
            _ => {}
        }
        n
    }

    /// Iterates the list in document order, decoding one frame at a time.
    pub fn iter(&self) -> PostingsIter<'a> {
        PostingsIter { list: *self, pos: 0, buf: [0; FRAME], buf_frame: usize::MAX, buf_len: 0 }
    }

    /// Decodes the whole list into the flat representation the pre-packed
    /// index stored — the oracle form.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// The `i`-th posting. Decodes the containing frame — O(`FRAME`);
    /// prefer [`iter`](Self::iter) or a cached-frame cursor in loops.
    pub fn get(&self, i: usize) -> NodeId {
        assert!(i < self.len(), "posting index {i} out of range (len {})", self.len());
        let mut buf = [0u32; FRAME];
        let n = self.decode_frame_into(i / FRAME, &mut buf);
        debug_assert!(i % FRAME < n);
        NodeId::from_index(buf[i % FRAME])
    }

    /// Counts postings with id in `[lo, hi)`. Requires a `doc_ordered`
    /// store (ids strictly increasing). Interior frames are counted from
    /// their skip headers alone; only the two boundary frames are decoded,
    /// and those are counted with the SIMD range kernel.
    pub(crate) fn count_in_id_range(&self, lo: u32, hi: u32) -> u32 {
        debug_assert!(self.store.doc_ordered);
        if lo >= hi || self.len == 0 {
            return 0;
        }
        let nf = self.frame_count();
        let mut buf = [0u32; FRAME];
        let mut total = 0u32;
        for f in 0..nf {
            let first = self.frame_first(f);
            if first >= hi {
                break;
            }
            let next_first = if f + 1 < nf { Some(self.frame_first(f + 1)) } else { None };
            // Ids increase strictly across frames, so `next_first` bounds
            // this frame's last id from above.
            if let Some(nx) = next_first {
                if nx <= lo {
                    continue; // entire frame below the interval
                }
                if first >= lo && nx <= hi {
                    total += self.count_in_frame(f) as u32; // entirely inside
                    continue;
                }
            }
            let n = self.decode_frame_into(f, &mut buf);
            total += xsact_kernel::count_in_range_u32(&buf[..n], lo, hi);
        }
        total
    }

    /// Decodes the whole list as raw ids, with the delta accumulation
    /// checked for `u32` overflow — the persistence loader's validation
    /// pass. Returns `None` on overflow.
    pub(crate) fn decode_all_checked(&self) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(self.len());
        for f in 0..self.frame_count() {
            let n = self.count_in_frame(f);
            let g = self.first_frame as usize + f;
            let first = self.store.frame_first[g];
            out.push(first);
            match self.store.frame_width[g] {
                0 => {
                    for i in 1..n {
                        out.push(u32::try_from(u64::from(first) + i as u64).ok()?);
                    }
                }
                ABS_WIDTH => {
                    let mut off = u64::from(self.store.frame_bit_off[g]);
                    for _ in 1..n {
                        out.push(read_bits(&self.store.data, off, 32));
                        off += 32;
                    }
                }
                w => {
                    let w = u32::from(w);
                    let mut off = u64::from(self.store.frame_bit_off[g]);
                    let mut prev = u64::from(first);
                    for _ in 1..n {
                        let d = read_bits(&self.store.data, off, w);
                        off += u64::from(w);
                        prev = prev + u64::from(d) + 1;
                        out.push(u32::try_from(prev).ok()?);
                    }
                }
            }
        }
        Some(out)
    }
}

impl std::fmt::Debug for PostingsRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for PostingsRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl PartialEq<[NodeId]> for PostingsRef<'_> {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[NodeId]> for PostingsRef<'_> {
    fn eq(&self, other: &&[NodeId]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<NodeId>> for PostingsRef<'_> {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        *self == other[..]
    }
}

impl<'a> IntoIterator for PostingsRef<'a> {
    type Item = NodeId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

/// Iterator over a packed posting list; decodes one frame at a time into an
/// internal buffer.
pub struct PostingsIter<'a> {
    list: PostingsRef<'a>,
    pos: usize,
    buf: [u32; FRAME],
    buf_frame: usize,
    buf_len: usize,
}

impl Iterator for PostingsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.pos >= self.list.len() {
            return None;
        }
        let f = self.pos / FRAME;
        if f != self.buf_frame {
            self.buf_len = self.list.decode_frame_into(f, &mut self.buf);
            self.buf_frame = f;
        }
        let v = self.buf[self.pos % FRAME];
        self.pos += 1;
        Some(NodeId::from_index(v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.list.len() - self.pos;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

/// Aggregate size figures of an [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct terms.
    pub terms: usize,
    /// Total posting entries across all terms.
    pub total_postings: usize,
    /// Length of the longest posting list.
    pub longest_list: usize,
    /// Resident bytes of the delta-bit-packed posting frames (skip headers
    /// + payload; term dictionary and spans excluded).
    pub packed_postings_bytes: usize,
    /// Bytes the same postings would occupy as a flat `Vec<NodeId>` arena —
    /// the pre-v3 representation, kept as the compression baseline.
    pub flat_postings_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product category=\"gps\"><name>TomTom Go</name><rating>4.2</rating></product>\
             <product><name>Garmin</name><note>a gps too</note></product></shop>",
        )
        .unwrap()
    }

    #[test]
    fn tag_terms_indexed_on_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // Every element tagged `product` matches the term.
        assert_eq!(idx.postings("product").len(), 2);
        assert_eq!(idx.postings("shop").len(), 1);
        assert_eq!(idx.postings("shop").get(0), d.root());
    }

    #[test]
    fn text_terms_attach_to_parent_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let tomtom = idx.postings("tomtom");
        assert_eq!(tomtom.len(), 1);
        assert_eq!(d.tag(tomtom.get(0)), "name");
    }

    #[test]
    fn attribute_names_and_values_indexed() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // `gps` occurs as an attribute value on product 1 and in text under
        // product 2's note.
        let gps = idx.postings("gps");
        assert_eq!(gps.len(), 2);
        assert_eq!(d.tag(gps.get(0)), "product");
        assert_eq!(d.tag(gps.get(1)), "note");
        assert_eq!(idx.postings("category").len(), 1);
    }

    #[test]
    fn postings_in_document_order() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for term in ["product", "gps", "name"] {
            let list = idx.postings(term).to_vec();
            for pair in list.windows(2) {
                assert!(d.dewey(pair[0]) < d.dewey(pair[1]), "term {term} out of order");
            }
        }
    }

    #[test]
    fn numbers_are_terms() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("4").len(), 1);
        assert_eq!(idx.postings("2").len(), 1);
    }

    #[test]
    fn missing_term_is_empty() {
        let idx = InvertedIndex::build(&doc());
        assert!(idx.postings("zzz").is_empty());
        assert_eq!(idx.postings("zzz").to_vec(), Vec::new());
        assert!(!idx.contains("zzz"));
        assert!(idx.contains("tomtom"));
        assert_eq!(idx.term_sym("zzz"), None);
    }

    #[test]
    fn duplicate_terms_in_one_node_deduplicated() {
        let d = parse_document("<a><b>x x x</b></a>").unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("x").len(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let idx = InvertedIndex::build(&doc());
        let s = idx.stats();
        assert_eq!(s.terms, idx.term_count());
        assert!(s.total_postings >= s.terms);
        assert!(s.longest_list >= 2); // "product" has two entries
        assert_eq!(s.flat_postings_bytes, s.total_postings * 4);
        assert!(s.packed_postings_bytes > 0);
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn terms_iterate_in_dictionary_order() {
        let idx = InvertedIndex::build(&doc());
        let terms: Vec<&str> = idx.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        assert_eq!(terms.len(), idx.term_count());
        // The dictionary pairs terms with their posting lists.
        for (term, list) in idx.dictionary() {
            assert_eq!(list, idx.postings(term));
        }
    }

    #[test]
    fn term_sym_resolves_to_same_span() {
        let idx = InvertedIndex::build(&doc());
        let sym = idx.term_sym("gps").unwrap();
        assert_eq!(idx.postings_of(sym), idx.postings("gps"));
    }

    #[test]
    fn from_term_lists_round_trips() {
        let d = doc();
        let built = InvertedIndex::build(&d);
        let rebuilt = InvertedIndex::from_term_lists(
            built.dictionary().map(|(t, l)| (t.to_owned(), l.to_vec())),
        );
        assert_eq!(rebuilt.term_count(), built.term_count());
        for (term, list) in built.dictionary() {
            assert_eq!(rebuilt.postings(term), list, "term {term}");
        }
    }

    /// Packs raw ids as a single-term index and returns the decoded list.
    fn pack_round_trip(ids: &[u32]) -> Vec<u32> {
        let nodes: Vec<NodeId> = ids.iter().map(|&v| NodeId::from_index(v)).collect();
        let idx = InvertedIndex::from_term_lists([("t".to_owned(), nodes)]);
        let list = idx.postings("t");
        assert_eq!(list.len(), ids.len());
        // Exercise get() alongside iter().
        if !ids.is_empty() {
            assert_eq!(list.get(0).index() as u32, ids[0]);
            assert_eq!(list.get(ids.len() - 1).index() as u32, ids[ids.len() - 1]);
        }
        assert_eq!(list.decode_all_checked().unwrap(), ids);
        list.iter().map(|n| n.index() as u32).collect()
    }

    #[test]
    fn consecutive_runs_pack_to_zero_width() {
        let ids: Vec<u32> = (500..500 + 300).collect();
        assert_eq!(pack_round_trip(&ids), ids);
        let nodes: Vec<NodeId> = ids.iter().map(|&v| NodeId::from_index(v)).collect();
        let idx = InvertedIndex::from_term_lists([("t".to_owned(), nodes)]);
        let st = idx.store();
        // 300 consecutive ids → three frames, all width 0, zero payload.
        assert_eq!(st.frame_width, vec![0, 0, 0]);
        assert!(st.data.is_empty());
        assert_eq!(idx.postings("t").frame_count(), 3);
        assert_eq!(idx.postings("t").count_in_frame(2), 300 - 2 * FRAME);
    }

    #[test]
    fn wide_deltas_cross_word_boundaries() {
        // Deltas needing 31 bits force packed values to straddle u64 words.
        let ids: Vec<u32> = (0u64..140).map(|i| (i * 0x4000_1234 % 0x7fff_ffff) as u32).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pack_round_trip(&sorted), sorted);
    }

    #[test]
    fn non_monotone_ids_fall_back_to_absolute_frames() {
        // Document order ≠ id order: the frame must store absolute ids.
        let ids = vec![90u32, 10, 80, 20, 70, 30];
        assert_eq!(pack_round_trip(&ids), ids);
        let nodes: Vec<NodeId> = ids.iter().map(|&v| NodeId::from_index(v)).collect();
        let idx = InvertedIndex::from_term_lists([("t".to_owned(), nodes)]);
        assert_eq!(idx.store().frame_width, vec![ABS_WIDTH]);
    }

    #[test]
    fn random_lists_round_trip() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 2, 127, 128, 129, 255, 256, 400, 1000] {
            let mut ids: Vec<u32> = (0..len).map(|_| (rng() % 5_000_000) as u32).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(pack_round_trip(&ids), ids, "len {len}");
        }
    }

    #[test]
    fn count_in_id_range_matches_scan() {
        let mut ids: Vec<u32> = (0..1000u32).map(|i| i * 7 % 4096).collect();
        ids.sort_unstable();
        ids.dedup();
        let nodes: Vec<NodeId> = ids.iter().map(|&v| NodeId::from_index(v)).collect();
        let mut idx = InvertedIndex::from_term_lists([("t".to_owned(), nodes)]);
        idx.store.doc_ordered = true; // ids are strictly increasing
        let list = idx.postings("t");
        for (lo, hi) in
            [(0, 4096), (0, 0), (100, 90), (500, 501), (0, 1), (1000, 3000), (4095, 4096)]
        {
            let expect = ids.iter().filter(|&&v| v >= lo && v < hi).count() as u32;
            assert_eq!(list.count_in_id_range(lo, hi), expect, "range [{lo}, {hi})");
        }
    }
}
