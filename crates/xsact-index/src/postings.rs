//! The inverted index: term → XML nodes in document order.
//!
//! Indexing rules (standard for data-centric XML keyword search):
//!
//! * an **element** node matches the terms of its tag name and of its
//!   attribute names and values;
//! * a **text** run contributes its terms to the *parent element* — so match
//!   nodes are always elements, which is what LCA semantics expect.
//!
//! Posting lists are sorted by Dewey ID (document order) and deduplicated,
//! ready for the binary-search probes of the Indexed Lookup Eager SLCA
//! algorithm.

use crate::lexer::tokenize_unique;
use std::collections::HashMap;
use xsact_xml::{Document, NodeId};

/// An inverted index over one [`Document`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<NodeId>>,
}

impl InvertedIndex {
    /// Builds the index in a single pass over the document.
    pub fn build(doc: &Document) -> Self {
        let mut postings: HashMap<String, Vec<NodeId>> = HashMap::new();
        for node in doc.all_nodes() {
            if doc.is_element(node) {
                let mut text = String::from(doc.tag(node));
                for (name, value) in doc.attrs(node) {
                    text.push(' ');
                    text.push_str(name);
                    text.push(' ');
                    text.push_str(value);
                }
                add_terms(&mut postings, &text, node);
            } else if let Some(t) = doc.text(node) {
                if let Some(parent) = doc.parent(node) {
                    add_terms(&mut postings, t, parent);
                }
            }
        }
        // Sort by document order and deduplicate (an element may match a
        // term through both its tag and several text children).
        for list in postings.values_mut() {
            list.sort_by(|&a, &b| doc.dewey(a).cmp(doc.dewey(b)));
            list.dedup();
        }
        InvertedIndex { postings }
    }

    /// The posting list of a (already normalised) term; empty slice if the
    /// term does not occur.
    pub fn postings(&self, term: &str) -> &[NodeId] {
        self.postings.get(term).map_or(&[], Vec::as_slice)
    }

    /// Whether the term occurs anywhere in the document.
    pub fn contains(&self, term: &str) -> bool {
        self.postings.contains_key(term)
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Iterates the indexed terms (unspecified order).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(String::as_str)
    }

    /// Rebuilds an index from raw posting lists (used by the persistence
    /// layer). Lists must already be sorted in document order — the
    /// invariant `build` establishes and `save_index` preserves.
    pub fn from_parts(postings: HashMap<String, Vec<NodeId>>) -> Self {
        InvertedIndex { postings }
    }

    /// Summary statistics for diagnostics and benchmarks.
    pub fn stats(&self) -> IndexStats {
        let mut total = 0usize;
        let mut longest = 0usize;
        for list in self.postings.values() {
            total += list.len();
            longest = longest.max(list.len());
        }
        IndexStats { terms: self.postings.len(), total_postings: total, longest_list: longest }
    }
}

fn add_terms(postings: &mut HashMap<String, Vec<NodeId>>, text: &str, node: NodeId) {
    for term in tokenize_unique(text) {
        postings.entry(term).or_default().push(node);
    }
}

/// Aggregate size figures of an [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct terms.
    pub terms: usize,
    /// Total posting entries across all terms.
    pub total_postings: usize,
    /// Length of the longest posting list.
    pub longest_list: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<shop><product category=\"gps\"><name>TomTom Go</name><rating>4.2</rating></product>\
             <product><name>Garmin</name><note>a gps too</note></product></shop>",
        )
        .unwrap()
    }

    #[test]
    fn tag_terms_indexed_on_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // Every element tagged `product` matches the term.
        assert_eq!(idx.postings("product").len(), 2);
        assert_eq!(idx.postings("shop").len(), 1);
        assert_eq!(idx.postings("shop")[0], d.root());
    }

    #[test]
    fn text_terms_attach_to_parent_element() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let tomtom = idx.postings("tomtom");
        assert_eq!(tomtom.len(), 1);
        assert_eq!(d.tag(tomtom[0]), "name");
    }

    #[test]
    fn attribute_names_and_values_indexed() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // `gps` occurs as an attribute value on product 1 and in text under
        // product 2's note.
        let gps = idx.postings("gps");
        assert_eq!(gps.len(), 2);
        assert_eq!(d.tag(gps[0]), "product");
        assert_eq!(d.tag(gps[1]), "note");
        assert_eq!(idx.postings("category").len(), 1);
    }

    #[test]
    fn postings_in_document_order() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for term in ["product", "gps", "name"] {
            let list = idx.postings(term);
            for pair in list.windows(2) {
                assert!(d.dewey(pair[0]) < d.dewey(pair[1]), "term {term} out of order");
            }
        }
    }

    #[test]
    fn numbers_are_terms() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("4").len(), 1);
        assert_eq!(idx.postings("2").len(), 1);
    }

    #[test]
    fn missing_term_is_empty() {
        let idx = InvertedIndex::build(&doc());
        assert!(idx.postings("zzz").is_empty());
        assert!(!idx.contains("zzz"));
        assert!(idx.contains("tomtom"));
    }

    #[test]
    fn duplicate_terms_in_one_node_deduplicated() {
        let d = parse_document("<a><b>x x x</b></a>").unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.postings("x").len(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let idx = InvertedIndex::build(&doc());
        let s = idx.stats();
        assert_eq!(s.terms, idx.term_count());
        assert!(s.total_postings >= s.terms);
        assert!(s.longest_list >= 2); // "product" has two entries
    }
}
