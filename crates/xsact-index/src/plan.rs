//! Query planning and the streaming SLCA executor.
//!
//! The paper's search layer is the cost centre of the whole pipeline, and
//! most callers only ever consume a handful of results (`take(k)`, corpus
//! top-k, the CLI's `--top`). This module is the planning half of the
//! streaming executor that serves them:
//!
//! * [`QueryPlan`] resolves a [`Query`] against an [`InvertedIndex`] once,
//!   orders the posting lists **rarest-first** (the shortest list drives
//!   the probe loop, so every other list is only ever searched, never
//!   walked), and **short-circuits to a provably-empty plan** when any term
//!   has zero postings — conjunctive semantics cannot match, so no SLCA
//!   work runs at all.
//! * [`SlcaStream`] executes the plan lazily: an iterator over SLCA roots
//!   in document order, powered by an **anchored-gallop** variant of the
//!   Indexed Lookup Eager algorithm. For each driver posting the closest
//!   neighbours in the other lists are located by exponential search from
//!   a per-list cursor left behind by the previous probe; because the
//!   driver is walked in document order the cursors mostly advance, so a
//!   probe costs `O(log gap)` instead of `O(log |list|)`.
//! * [`ExecutorStats`] counts what the executor actually did (postings
//!   scanned, gallop probes, candidates pruned), so "why was this query
//!   fast/slow" is observable from the facade (`--explain` in the CLI).
//!
//! Plans built from an index run directly on the **packed posting frames**:
//! each cursor answers gallop probes from the per-frame skip headers where
//! it can (a probe that brackets a whole frame never touches its payload)
//! and unpacks at most one cached frame when a probe lands inside it. On a
//! `doc_ordered` document the probes compare raw `u32` node ids instead of
//! Dewey prefixes. Neither shortcut changes any probe's outcome *or its
//! count*: one `below(i)` evaluation is one probe in every representation,
//! which is what keeps `ExecutorStats` byte-identical between the packed
//! path, the flat-slice path ([`QueryPlan::from_lists`]), and the pinned
//! serve goldens.
//!
//! The full-scan implementations in [`crate::slca`] remain the correctness
//! oracles; `tests/properties.rs` pins the stream to them over random
//! documents and queries.

use crate::postings::{InvertedIndex, PostingsRef, FRAME};
use crate::query::Query;
use std::fmt;
use std::ops::{Add, AddAssign};
use xsact_xml::{DeweyRef, Document, NodeId};

/// Counters of one executor run (or an aggregate of many — the type is a
/// commutative monoid under [`Add`], and the facade's `Workbench`
/// accumulates it across queries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Posting entries consumed: driver-list entries walked by the SLCA
    /// stream, plus every entry of every list for full-scan (ELCA) runs.
    pub postings_scanned: u64,
    /// Dewey comparisons spent locating neighbours in the non-driver
    /// lists (exponential bracket probes + the binary search inside the
    /// bracket).
    pub gallop_probes: u64,
    /// Candidates discarded on the way to the final result: SLCA
    /// candidates collapsed by the ancestor/duplicate pass, duplicate
    /// entity promotions, and scored results evicted by the bounded
    /// top-k heap.
    pub candidates_pruned: u64,
    /// Posting entries served from a shared [`PlanFragments`] table
    /// instead of being resolved against the index again — the proof that
    /// batch-level plan sharing reused work. Always zero on the
    /// independent ([`QueryPlan::new`]) path; sharing never changes any
    /// other counter (the lists are the same lists).
    pub postings_shared: u64,
}

impl ExecutorStats {
    /// Whether nothing was counted — the signature of a short-circuited
    /// (provably empty) plan.
    pub fn is_zero(&self) -> bool {
        *self == ExecutorStats::default()
    }
}

impl Add for ExecutorStats {
    type Output = ExecutorStats;

    fn add(self, rhs: ExecutorStats) -> ExecutorStats {
        ExecutorStats {
            postings_scanned: self.postings_scanned + rhs.postings_scanned,
            gallop_probes: self.gallop_probes + rhs.gallop_probes,
            candidates_pruned: self.candidates_pruned + rhs.candidates_pruned,
            postings_shared: self.postings_shared + rhs.postings_shared,
        }
    }
}

impl AddAssign for ExecutorStats {
    fn add_assign(&mut self, rhs: ExecutorStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ExecutorStats {
    /// The one human-facing spelling of the counters, shared by the CLI's
    /// `--explain` line, the corpus aggregate, and the serve shutdown
    /// summary so the three can never drift apart.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} postings scanned, {} gallop probes, {} candidates pruned",
            self.postings_scanned, self.gallop_probes, self.candidates_pruned
        )?;
        if self.postings_shared > 0 {
            write!(f, ", {} postings shared", self.postings_shared)?;
        }
        Ok(())
    }
}

/// One planned posting list: either a packed frame list straight from the
/// index, or a borrowed flat slice (the oracle path used by the full-scan
/// comparisons and layer-level callers).
#[derive(Debug, Clone, Copy)]
enum ListRef<'a> {
    Flat(&'a [NodeId]),
    Packed(PostingsRef<'a>),
}

impl ListRef<'_> {
    fn len(&self) -> usize {
        match self {
            ListRef::Flat(l) => l.len(),
            ListRef::Packed(p) => p.len(),
        }
    }
}

/// A per-batch plan-fragment table: term → resolved posting list, shared
/// by every query of one batch against **one** index.
///
/// Queries in a batch that share terms resolve each shared term once; the
/// second and later resolutions are served from this table, and their
/// entry counts accumulate into [`shared_entries`](Self::shared_entries)
/// (surfaced per query as [`ExecutorStats::postings_shared`]). Sharing is
/// pure memoisation of [`InvertedIndex::postings`] — the returned
/// [`PostingsRef`] is the same list the independent path would resolve,
/// so plans built through a table are byte-identical to independent
/// plans: same lists, same rarest-first order (the sort is stable and the
/// keys are identical), same probes.
///
/// A table is only meaningful for a single index; building plans for two
/// different indexes through one table is a logic error (debug-asserted).
#[derive(Debug, Default)]
pub struct PlanFragments<'a> {
    /// Linear memo — batch queries hold a handful of terms, so a scan
    /// beats hashing.
    entries: Vec<(String, PostingsRef<'a>)>,
    shared_entries: u64,
    /// Identity of the index the fragments were resolved against.
    index: Option<*const InvertedIndex>,
}

impl<'a> PlanFragments<'a> {
    /// An empty table for one batch over one index.
    pub fn new() -> PlanFragments<'a> {
        PlanFragments::default()
    }

    /// Posting entries served from the table instead of a fresh index
    /// resolution, accumulated over every plan built through it.
    pub fn shared_entries(&self) -> u64 {
        self.shared_entries
    }

    /// Distinct terms resolved so far.
    pub fn terms(&self) -> usize {
        self.entries.len()
    }

    /// Resolves `term`, serving repeats from the memo. Empty lists are
    /// memoised too: a hopeless term short-circuits every query that
    /// carries it, and the table remembers that verdict.
    fn resolve(&mut self, index: &'a InvertedIndex, term: &str) -> PostingsRef<'a> {
        debug_assert!(
            std::ptr::eq(*self.index.get_or_insert(index as *const InvertedIndex), index),
            "a PlanFragments table must not span indexes"
        );
        if let Some((_, postings)) = self.entries.iter().find(|(t, _)| t == term) {
            let postings = *postings;
            self.shared_entries += postings.len() as u64;
            return postings;
        }
        let postings = index.postings(term);
        self.entries.push((term.to_owned(), postings));
        postings
    }
}

/// A resolved, ordered execution plan for one conjunctive query.
///
/// Posting lists are held rarest-first; an empty plan (no terms, or a term
/// with zero postings) is remembered as such and never reaches the SLCA
/// machinery.
#[derive(Debug, Clone)]
pub struct QueryPlan<'a> {
    /// Posting lists ordered by ascending length. Empty exactly when
    /// planning proved the result set empty (a plan over actual matches
    /// always holds at least one non-empty list).
    lists: Vec<ListRef<'a>>,
}

impl<'a> QueryPlan<'a> {
    /// Plans `query` against `index`: resolves each term's posting list and
    /// orders them rarest-first. A query with no terms, or with any term
    /// absent from the index, yields an [empty](Self::is_empty) plan. The
    /// resulting stream runs directly on the packed frames — no posting
    /// list is decoded up front.
    pub fn new(index: &'a InvertedIndex, query: &Query) -> QueryPlan<'a> {
        if query.is_empty() {
            return QueryPlan { lists: Vec::new() };
        }
        let mut lists = Vec::with_capacity(query.len());
        for term in query.iter() {
            let postings = index.postings(term);
            if postings.is_empty() {
                // Conjunctive semantics: one hopeless term sinks the whole
                // query before any SLCA work happens.
                return QueryPlan { lists: Vec::new() };
            }
            lists.push(ListRef::Packed(postings));
        }
        lists.sort_by_key(ListRef::len);
        QueryPlan { lists }
    }

    /// [`new`](Self::new), but with every term resolution routed through a
    /// per-batch [`PlanFragments`] table so queries sharing terms resolve
    /// each shared list once. The resulting plan is byte-identical to the
    /// independent path — same lists in the same stable rarest-first
    /// order, same short-circuit point — only the resolution work is
    /// shared (and counted via [`PlanFragments::shared_entries`]).
    pub fn new_shared(
        index: &'a InvertedIndex,
        query: &Query,
        fragments: &mut PlanFragments<'a>,
    ) -> QueryPlan<'a> {
        if query.is_empty() {
            return QueryPlan { lists: Vec::new() };
        }
        let mut lists = Vec::with_capacity(query.len());
        for term in query.iter() {
            let postings = fragments.resolve(index, term);
            if postings.is_empty() {
                return QueryPlan { lists: Vec::new() };
            }
            lists.push(ListRef::Packed(postings));
        }
        lists.sort_by_key(ListRef::len);
        QueryPlan { lists }
    }

    /// Plans over raw posting lists (the layer-level entry point used by
    /// [`crate::slca::slca_indexed_lookup`], and the flat oracle the
    /// property suite compares the packed path against). Lists must be
    /// sorted in document order, as the index produces them.
    pub fn from_lists(lists: Vec<&'a [NodeId]>) -> QueryPlan<'a> {
        if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
            return QueryPlan { lists: Vec::new() };
        }
        let mut lists: Vec<ListRef<'a>> = lists.into_iter().map(ListRef::Flat).collect();
        lists.sort_by_key(ListRef::len);
        QueryPlan { lists }
    }

    /// Whether planning already proved the result set empty.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Number of planned posting lists (0 for an empty plan).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// The planned lists decoded to flat vectors, rarest first — the form
    /// the full-scan (ELCA) oracles consume.
    pub fn decoded_lists(&self) -> Vec<Vec<NodeId>> {
        self.lists
            .iter()
            .map(|l| match l {
                ListRef::Flat(s) => s.to_vec(),
                ListRef::Packed(p) => p.to_vec(),
            })
            .collect()
    }

    /// Length of the driving (shortest) posting list — the number of SLCA
    /// probes an execution will pay.
    pub fn driver_len(&self) -> usize {
        self.lists.first().map_or(0, ListRef::len)
    }

    /// Total posting entries across all planned lists.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(ListRef::len).sum()
    }

    /// Starts lazy execution over `doc`: an iterator of SLCA roots in
    /// document order. An empty plan yields an immediately-exhausted
    /// stream with zero counters.
    pub fn stream(&self, doc: &'a Document) -> SlcaStream<'a> {
        // Raw-id comparisons are sound only when id order is document
        // order, which the index records per store; flat oracle lists
        // always take the Dewey path.
        let use_ids = !self.lists.is_empty()
            && self.lists.iter().all(|l| matches!(l, ListRef::Packed(p) if p.store.doc_ordered));
        let (driver, others) = match self.lists.split_first() {
            Some((&driver, rest)) => {
                (ListCursor::new(driver), rest.iter().map(|&l| ListCursor::new(l)).collect())
            }
            None => (ListCursor::new(ListRef::Flat(&[])), Vec::new()),
        };
        SlcaStream {
            doc,
            driver,
            others,
            use_ids,
            next_driver: 0,
            pending: None,
            stats: ExecutorStats::default(),
        }
    }
}

/// One posting list plus the anchor its last probe ended at, and (for
/// packed lists) a one-frame decode cache.
#[derive(Debug)]
struct ListCursor<'a> {
    src: ListRef<'a>,
    pos: usize,
    buf: [u32; FRAME],
    buf_frame: usize,
    buf_len: usize,
}

impl<'a> ListCursor<'a> {
    fn new(src: ListRef<'a>) -> ListCursor<'a> {
        ListCursor { src, pos: 0, buf: [0; FRAME], buf_frame: usize::MAX, buf_len: 0 }
    }

    fn len(&self) -> usize {
        self.src.len()
    }

    /// The `i`-th posting, unpacking (and caching) its frame if needed.
    fn node_at(&mut self, i: usize) -> NodeId {
        match self.src {
            ListRef::Flat(list) => list[i],
            ListRef::Packed(p) => {
                let f = i / FRAME;
                if f != self.buf_frame {
                    self.buf_len = p.decode_frame_into(f, &mut self.buf);
                    self.buf_frame = f;
                }
                debug_assert!(i % FRAME < self.buf_len);
                NodeId::from_index(self.buf[i % FRAME])
            }
        }
    }

    /// One gallop probe: whether entry `i` sorts strictly before `x` in
    /// document order. For packed lists the skip headers of frame `i/128`
    /// and its successor answer most probes without unpacking: entries
    /// increase strictly along the list, so the next frame's first entry
    /// bounds this frame from above and the own frame's first bounds it
    /// from below. Only a probe neither bound decides unpacks the (cached)
    /// frame. Every code path returns the same boolean the flat comparison
    /// would — this function is *why* packed and flat executions count
    /// identical stats.
    fn below(
        &mut self,
        doc: &Document,
        x: DeweyRef<'_>,
        x_id: u32,
        use_ids: bool,
        i: usize,
    ) -> bool {
        let value_below = |v: u32| {
            if use_ids {
                v < x_id
            } else {
                doc.dewey(NodeId::from_index(v)) < x
            }
        };
        match self.src {
            ListRef::Flat(list) => doc.dewey(list[i]) < x,
            ListRef::Packed(p) => {
                let f = i / FRAME;
                let r = i % FRAME;
                if f == self.buf_frame {
                    // Frame already decoded: answer straight from the
                    // payload cache, as cheap as a flat-slice read.
                    return value_below(self.buf[r]);
                }
                let first = p.frame_first(f);
                if r == 0 {
                    return value_below(first);
                }
                if f + 1 < p.frame_count() {
                    let next_first = p.frame_first(f + 1);
                    let next_le = if use_ids {
                        next_first <= x_id
                    } else {
                        doc.dewey(NodeId::from_index(next_first)) <= x
                    };
                    if next_le {
                        return true; // entry i < next frame's first <= x
                    }
                }
                let first_ge =
                    if use_ids { first >= x_id } else { doc.dewey(NodeId::from_index(first)) >= x };
                if first_ge {
                    return false; // entry i > own frame's first >= x
                }
                if self.buf_frame != f {
                    self.buf_len = p.decode_frame_into(f, &mut self.buf);
                    self.buf_frame = f;
                }
                value_below(self.buf[r])
            }
        }
    }
}

/// Lazy SLCA execution: yields each SLCA root exactly once, in document
/// order, computing candidates one driver posting at a time.
///
/// The single-pass duplicate/ancestor elimination relies on the candidate
/// sequence produced by a sorted driver list: a candidate can only sort
/// *before* its predecessor if it is an ancestor of it, so one pending
/// candidate of lookahead suffices to reproduce the sort + dedup +
/// ancestor-prune of the batch algorithm (`tests/properties.rs` pins the
/// equivalence).
#[derive(Debug)]
pub struct SlcaStream<'a> {
    doc: &'a Document,
    driver: ListCursor<'a>,
    others: Vec<ListCursor<'a>>,
    use_ids: bool,
    next_driver: usize,
    pending: Option<DeweyRef<'a>>,
    stats: ExecutorStats,
}

impl<'a> SlcaStream<'a> {
    /// The counters accumulated so far (final once the stream is
    /// exhausted; callers that stop early get the cost of what they
    /// actually consumed — the point of streaming).
    pub fn stats(&self) -> ExecutorStats {
        self.stats
    }
}

impl Iterator for SlcaStream<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.next_driver >= self.driver.len() {
                let last = self.pending.take()?;
                return Some(node_of(self.doc, last));
            }
            let v = self.driver.node_at(self.next_driver);
            self.next_driver += 1;
            self.stats.postings_scanned += 1;
            let mut x = self.doc.dewey(v);
            let mut x_node = v;
            for cursor in &mut self.others {
                (x, x_node) = anchored_deepest_lca(
                    self.doc,
                    x,
                    x_node,
                    self.use_ids,
                    cursor,
                    &mut self.stats.gallop_probes,
                );
            }
            match self.pending {
                None => self.pending = Some(x),
                // Same candidate again: drop the duplicate.
                Some(p) if p == x => self.stats.candidates_pruned += 1,
                // The pending candidate contains the new one: it cannot be
                // a *smallest* LCA, replace it.
                Some(p) if p.is_ancestor_of(x) => {
                    self.stats.candidates_pruned += 1;
                    self.pending = Some(x);
                }
                // The new candidate contains the pending one: drop it.
                Some(p) if x.is_ancestor_of(p) => self.stats.candidates_pruned += 1,
                // Unrelated: the pending candidate is final (nothing later
                // can sort before it without being its ancestor).
                Some(p) => {
                    self.pending = Some(x);
                    return Some(node_of(self.doc, p));
                }
            }
        }
    }
}

fn node_of(doc: &Document, dewey: DeweyRef<'_>) -> NodeId {
    doc.node_at(dewey).expect("SLCA candidates are prefixes of document nodes")
}

/// The deepest LCA of `x` with any node of the cursor's list — achieved by
/// one of the two nodes adjacent to `x` in document order, located by
/// galloping from the cursor's previous position. Returns the LCA prefix
/// (borrowed from `x`'s arena) together with its node handle, maintained by
/// climbing parents so the raw-id fast path never has to resolve a Dewey
/// path back to a node.
fn anchored_deepest_lca<'a>(
    doc: &Document,
    x: DeweyRef<'a>,
    x_node: NodeId,
    use_ids: bool,
    cursor: &mut ListCursor<'_>,
    probes: &mut u64,
) -> (DeweyRef<'a>, NodeId) {
    let x_id = x_node.index() as u32;
    let n = cursor.len();
    let i = gallop_insertion_by(n, cursor.pos, |j| {
        *probes += 1;
        cursor.below(doc, x, x_id, use_ids, j)
    });
    cursor.pos = i;
    let mut best = 0usize;
    for j in [i.checked_sub(1), (i < n).then_some(i)].into_iter().flatten() {
        let neighbour = cursor.node_at(j);
        best = best.max(x.common_prefix_len(doc.dewey(neighbour)));
    }
    // Nodes of one document always share the root component, so `best` ≥ 1
    // whenever the list is non-empty (guaranteed by the planner).
    let depth = best.max(1);
    let lca = x.ancestor_at_depth(depth).expect("prefix depth within bounds");
    let mut node = x_node;
    if use_ids {
        for _ in depth..x.depth() {
            node = doc.parent(node).expect("climbing within the candidate's own path");
        }
    }
    (lca, node)
}

/// The first index `i` in `0..n` for which `below(i)` is false — what
/// `partition_point(below)` computes — located by bidirectional exponential
/// search from `anchor` instead of bisecting the whole range. Cursors
/// advance monotonically for the outermost probe of each driver posting;
/// intersected prefixes can briefly step backwards (an ancestor sorts
/// before its descendants), which the backward gallop covers at the same
/// logarithmic cost.
///
/// `below` must be monotone (true-prefix). It is invoked exactly once per
/// probe, and the bracket bisection replicates `slice::partition_point`'s
/// midpoint sequence — so the probe *count* is a pure function of `(n,
/// anchor, insertion point)`, independent of the list representation
/// behind the closure. The serve goldens pin that count.
fn gallop_insertion_by(n: usize, anchor: usize, mut below: impl FnMut(usize) -> bool) -> usize {
    let a = anchor.min(n);
    let (lo, hi);
    if a < n && below(a) {
        // Insertion point in (a, n]: gallop forward over a+1, a+2, a+4, …
        let mut last_below = a;
        let mut step = 1usize;
        loop {
            let cand = a + step;
            if cand >= n {
                lo = last_below + 1;
                hi = n;
                break;
            }
            if below(cand) {
                last_below = cand;
                step *= 2;
            } else {
                lo = last_below + 1;
                hi = cand;
                break;
            }
        }
    } else {
        // Insertion point in [0, a]: gallop backward over a-1, a-2, a-4, …
        let mut first_at_or_above = a;
        let mut step = 1usize;
        loop {
            if step > a {
                lo = 0;
                hi = first_at_or_above;
                break;
            }
            let cand = a - step;
            if below(cand) {
                lo = cand + 1;
                hi = first_at_or_above;
                break;
            }
            first_at_or_above = cand;
            step *= 2;
        }
    }
    // `slice::partition_point` replica: std's branchless bisection halves
    // `size` with one probe per halving plus one final probe at `base`
    // (position-independent count, unlike the classic `while lo < hi`
    // loop). Spelled out so packed lists probe through the same closure
    // with the same call count the flat slices paid — the serve goldens
    // pin the aggregate.
    let mut size = hi - lo;
    let mut base = lo;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        if below(mid) {
            base = mid;
        }
        size -= half;
    }
    if size > 0 && below(base) {
        base += 1;
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca_full_scan;
    use xsact_xml::parse_document;

    fn doc_and_index(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn zero_postings_term_short_circuits() {
        let (_, idx) = doc_and_index("<r><a>k1</a><b>k2</b></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k1 zeppelin"));
        assert!(plan.is_empty());
        assert_eq!(plan.num_lists(), 0);
        assert_eq!(plan.driver_len(), 0);
    }

    #[test]
    fn empty_query_is_an_empty_plan() {
        let (_, idx) = doc_and_index("<r><a>k</a></r>");
        assert!(QueryPlan::new(&idx, &Query::parse("")).is_empty());
        assert!(QueryPlan::from_lists(Vec::new()).is_empty());
    }

    #[test]
    fn empty_plan_streams_nothing_and_counts_nothing() {
        let (doc, idx) = doc_and_index("<r><a>k1</a></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k1 nope"));
        let mut stream = plan.stream(&doc);
        assert_eq!(stream.next(), None);
        assert!(stream.stats().is_zero(), "no SLCA work after a short-circuit");
    }

    #[test]
    fn lists_are_ordered_rarest_first() {
        let (_, idx) = doc_and_index("<r><a>k1 k2</a><b>k2</b><c>k2</c></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k2 k1"));
        assert!(!plan.is_empty());
        let lens: Vec<usize> = plan.decoded_lists().iter().map(Vec::len).collect();
        assert_eq!(lens, [1, 3]);
        assert_eq!(plan.driver_len(), 1);
        assert_eq!(plan.total_postings(), 4);
    }

    #[test]
    fn stream_matches_full_scan_on_the_paper_example() {
        let xml = "<r><sec><x>k1</x><y>k2</y></sec><sec><x>k1</x><y>k2</y></sec></r>";
        let (doc, idx) = doc_and_index(xml);
        let q = Query::parse("k1 k2");
        let decoded: Vec<Vec<NodeId>> = q.iter().map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let oracle = slca_full_scan(&doc, &lists);
        let plan = QueryPlan::new(&idx, &q);
        let mut stream = plan.stream(&doc);
        let streamed: Vec<NodeId> = (&mut stream).collect();
        assert_eq!(streamed, oracle);
        let stats = stream.stats();
        assert_eq!(stats.postings_scanned, 2, "driver list has two postings");
        assert!(stats.gallop_probes > 0);
    }

    #[test]
    fn packed_stream_matches_flat_stream_probe_for_probe() {
        let xml = "<r><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s>\
                   <s><a>k1 k2</a></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let q = Query::parse("k1 k2");
        let decoded: Vec<Vec<NodeId>> = q.iter().map(|t| idx.postings(t).to_vec()).collect();
        let flat_plan = QueryPlan::from_lists(decoded.iter().map(Vec::as_slice).collect());
        let packed_plan = QueryPlan::new(&idx, &q);
        let mut flat = flat_plan.stream(&doc);
        let mut packed = packed_plan.stream(&doc);
        assert!(packed.use_ids, "built index over a parsed doc runs the raw-id path");
        assert!(!flat.use_ids, "flat oracle lists take the Dewey path");
        let a: Vec<NodeId> = (&mut flat).collect();
        let b: Vec<NodeId> = (&mut packed).collect();
        assert_eq!(a, b);
        assert_eq!(flat.stats(), packed.stats(), "identical counters across representations");
    }

    #[test]
    fn stream_stats_reflect_partial_consumption() {
        // Three sections, three SLCAs: taking one emits after two driver
        // probes (one candidate of lookahead), not after all three.
        let xml =
            "<r><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let plan = QueryPlan::new(&idx, &Query::parse("k1 k2"));
        let mut stream = plan.stream(&doc);
        assert!(stream.next().is_some());
        assert_eq!(stream.stats().postings_scanned, 2);
        let consumed: Vec<NodeId> = (&mut stream).collect();
        assert_eq!(consumed.len(), 2);
        assert_eq!(stream.stats().postings_scanned, 3);
    }

    #[test]
    fn gallop_insertion_equals_partition_point_for_any_anchor() {
        let xml = "<r><s><a>k</a><a>k</a></s><s><a>k</a></s><s><a>k</a><a>k</a><a>k</a></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let list = idx.postings("a").to_vec();
        assert!(list.len() >= 6);
        let probe_points: Vec<NodeId> = doc.all_nodes().collect();
        for &p in &probe_points {
            let x = doc.dewey(p);
            let expected = list.partition_point(|&n| doc.dewey(n) < x);
            for anchor in 0..=list.len() + 2 {
                let mut probes = 0u64;
                let got = gallop_insertion_by(list.len(), anchor, |i| {
                    probes += 1;
                    doc.dewey(list[i]) < x
                });
                assert_eq!(got, expected, "probe {x} from anchor {anchor}");
                assert!(probes > 0);
            }
        }
    }

    /// The pre-packing executor bisected its gallop bracket with
    /// `slice::partition_point`; the closure-based replica must pay the
    /// exact same probe count (std's bisection is branchless — one probe
    /// per halving plus a final probe — NOT the classic `while lo < hi`
    /// loop, which probes fewer). The serve goldens pin the aggregate, so
    /// pin the equivalence here over every (length, target, anchor).
    #[test]
    fn gallop_probe_count_matches_the_partition_point_reference() {
        fn reference(list: &[usize], target: usize, anchor: usize, probes: &mut u64) -> usize {
            let n = list.len();
            let below = |i: usize, probes: &mut u64| {
                *probes += 1;
                list[i] < target
            };
            let a = anchor.min(n);
            let (lo, hi);
            if a < n && below(a, probes) {
                let mut last_below = a;
                let mut step = 1usize;
                loop {
                    let cand = a + step;
                    if cand >= n {
                        lo = last_below + 1;
                        hi = n;
                        break;
                    }
                    if below(cand, probes) {
                        last_below = cand;
                        step *= 2;
                    } else {
                        lo = last_below + 1;
                        hi = cand;
                        break;
                    }
                }
            } else {
                let mut first_at_or_above = a;
                let mut step = 1usize;
                loop {
                    if step > a {
                        lo = 0;
                        hi = first_at_or_above;
                        break;
                    }
                    let cand = a - step;
                    if below(cand, probes) {
                        lo = cand + 1;
                        hi = first_at_or_above;
                        break;
                    }
                    first_at_or_above = cand;
                    step *= 2;
                }
            }
            lo + list[lo..hi].partition_point(|&v| {
                *probes += 1;
                v < target
            })
        }
        for n in 0..24usize {
            let list: Vec<usize> = (0..n).collect();
            for target in 0..=n {
                for anchor in 0..=n + 2 {
                    let mut ref_probes = 0u64;
                    let expected = reference(&list, target, anchor, &mut ref_probes);
                    let mut probes = 0u64;
                    let got = gallop_insertion_by(n, anchor, |i| {
                        probes += 1;
                        list[i] < target
                    });
                    assert_eq!(got, expected, "n {n} target {target} anchor {anchor}");
                    assert_eq!(got, target, "n {n} target {target} anchor {anchor}");
                    assert_eq!(
                        probes, ref_probes,
                        "n {n} target {target} anchor {anchor}: probe count drifted"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_cursor_probes_match_flat_cursor_probes() {
        // Same insertion point AND same probe count from every anchor, for
        // every probe node — the invariant behind the pinned golden stats.
        let xml = "<r><s><a>k</a><a>k</a></s><s><a>k</a></s><s><a>k</a><a>k</a><a>k</a></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let packed = idx.postings("a");
        let flat = packed.to_vec();
        for p in doc.all_nodes() {
            let x = doc.dewey(p);
            let x_id = p.index() as u32;
            for anchor in 0..=flat.len() + 2 {
                for use_ids in [false, true] {
                    let mut flat_probes = 0u64;
                    let flat_i = gallop_insertion_by(flat.len(), anchor, |i| {
                        flat_probes += 1;
                        doc.dewey(flat[i]) < x
                    });
                    let mut cursor = ListCursor::new(ListRef::Packed(packed));
                    let mut packed_probes = 0u64;
                    let packed_i = gallop_insertion_by(packed.len(), anchor, |i| {
                        packed_probes += 1;
                        cursor.below(&doc, x, x_id, use_ids, i)
                    });
                    assert_eq!(packed_i, flat_i, "anchor {anchor} use_ids {use_ids}");
                    assert_eq!(packed_probes, flat_probes, "anchor {anchor} use_ids {use_ids}");
                }
            }
        }
    }
}
