//! Query planning and the streaming SLCA executor.
//!
//! The paper's search layer is the cost centre of the whole pipeline, and
//! most callers only ever consume a handful of results (`take(k)`, corpus
//! top-k, the CLI's `--top`). This module is the planning half of the
//! streaming executor that serves them:
//!
//! * [`QueryPlan`] resolves a [`Query`] against an [`InvertedIndex`] once,
//!   orders the posting lists **rarest-first** (the shortest list drives
//!   the probe loop, so every other list is only ever searched, never
//!   walked), and **short-circuits to a provably-empty plan** when any term
//!   has zero postings — conjunctive semantics cannot match, so no SLCA
//!   work runs at all.
//! * [`SlcaStream`] executes the plan lazily: an iterator over SLCA roots
//!   in document order, powered by an **anchored-gallop** variant of the
//!   Indexed Lookup Eager algorithm. For each driver posting the closest
//!   neighbours in the other lists are located by exponential search from
//!   a per-list cursor left behind by the previous probe; because the
//!   driver is walked in document order the cursors mostly advance, so a
//!   probe costs `O(log gap)` instead of `O(log |list|)`. All candidate
//!   comparisons run on borrowed `&[u32]` Dewey prefixes of the document's
//!   flat component arena — the stream allocates nothing per element.
//! * [`ExecutorStats`] counts what the executor actually did (postings
//!   scanned, gallop probes, candidates pruned), so "why was this query
//!   fast/slow" is observable from the facade (`--explain` in the CLI).
//!
//! The full-scan implementations in [`crate::slca`] remain the correctness
//! oracles; `tests/properties.rs` pins the stream to them over random
//! documents and queries.

use crate::postings::InvertedIndex;
use crate::query::Query;
use std::fmt;
use std::ops::{Add, AddAssign};
use xsact_xml::{DeweyRef, Document, NodeId};

/// Counters of one executor run (or an aggregate of many — the type is a
/// commutative monoid under [`Add`], and the facade's `Workbench`
/// accumulates it across queries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Posting entries consumed: driver-list entries walked by the SLCA
    /// stream, plus every entry of every list for full-scan (ELCA) runs.
    pub postings_scanned: u64,
    /// Dewey comparisons spent locating neighbours in the non-driver
    /// lists (exponential bracket probes + the binary search inside the
    /// bracket).
    pub gallop_probes: u64,
    /// Candidates discarded on the way to the final result: SLCA
    /// candidates collapsed by the ancestor/duplicate pass, duplicate
    /// entity promotions, and scored results evicted by the bounded
    /// top-k heap.
    pub candidates_pruned: u64,
}

impl ExecutorStats {
    /// Whether nothing was counted — the signature of a short-circuited
    /// (provably empty) plan.
    pub fn is_zero(&self) -> bool {
        *self == ExecutorStats::default()
    }
}

impl Add for ExecutorStats {
    type Output = ExecutorStats;

    fn add(self, rhs: ExecutorStats) -> ExecutorStats {
        ExecutorStats {
            postings_scanned: self.postings_scanned + rhs.postings_scanned,
            gallop_probes: self.gallop_probes + rhs.gallop_probes,
            candidates_pruned: self.candidates_pruned + rhs.candidates_pruned,
        }
    }
}

impl AddAssign for ExecutorStats {
    fn add_assign(&mut self, rhs: ExecutorStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ExecutorStats {
    /// The one human-facing spelling of the counters, shared by the CLI's
    /// `--explain` line, the corpus aggregate, and the serve shutdown
    /// summary so the three can never drift apart.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} postings scanned, {} gallop probes, {} candidates pruned",
            self.postings_scanned, self.gallop_probes, self.candidates_pruned
        )
    }
}

/// A resolved, ordered execution plan for one conjunctive query.
///
/// Posting lists are held rarest-first; an empty plan (no terms, or a term
/// with zero postings) is remembered as such and never reaches the SLCA
/// machinery.
#[derive(Debug, Clone)]
pub struct QueryPlan<'a> {
    /// Posting lists ordered by ascending length. Empty exactly when
    /// planning proved the result set empty (a plan over actual matches
    /// always holds at least one non-empty list).
    lists: Vec<&'a [NodeId]>,
}

impl<'a> QueryPlan<'a> {
    /// Plans `query` against `index`: resolves each term's posting list and
    /// orders them rarest-first. A query with no terms, or with any term
    /// absent from the index, yields an [empty](Self::is_empty) plan.
    pub fn new(index: &'a InvertedIndex, query: &Query) -> QueryPlan<'a> {
        if query.is_empty() {
            return QueryPlan { lists: Vec::new() };
        }
        let mut lists = Vec::with_capacity(query.len());
        for term in query.iter() {
            let postings = index.postings(term);
            if postings.is_empty() {
                // Conjunctive semantics: one hopeless term sinks the whole
                // query before any SLCA work happens.
                return QueryPlan { lists: Vec::new() };
            }
            lists.push(postings);
        }
        QueryPlan::from_lists(lists)
    }

    /// Plans over raw posting lists (the layer-level entry point used by
    /// [`crate::slca::slca_indexed_lookup`]). Lists must be sorted in
    /// document order, as the index produces them.
    pub fn from_lists(mut lists: Vec<&'a [NodeId]>) -> QueryPlan<'a> {
        if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
            return QueryPlan { lists: Vec::new() };
        }
        lists.sort_by_key(|l| l.len());
        QueryPlan { lists }
    }

    /// Whether planning already proved the result set empty.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The planned posting lists, rarest first (empty for an empty plan).
    pub fn lists(&self) -> &[&'a [NodeId]] {
        &self.lists
    }

    /// Length of the driving (shortest) posting list — the number of SLCA
    /// probes an execution will pay.
    pub fn driver_len(&self) -> usize {
        self.lists.first().map_or(0, |l| l.len())
    }

    /// Total posting entries across all planned lists.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// Starts lazy execution over `doc`: an iterator of SLCA roots in
    /// document order. An empty plan yields an immediately-exhausted
    /// stream with zero counters.
    pub fn stream(&self, doc: &'a Document) -> SlcaStream<'a> {
        let (driver, others) = match self.lists.split_first() {
            Some((&driver, rest)) => {
                (driver, rest.iter().map(|&list| Cursor { list, pos: 0 }).collect())
            }
            None => (&[][..], Vec::new()),
        };
        SlcaStream {
            doc,
            driver,
            others,
            next_driver: 0,
            pending: None,
            stats: ExecutorStats::default(),
        }
    }
}

/// One non-driver posting list plus the anchor its last probe ended at.
#[derive(Debug)]
struct Cursor<'a> {
    list: &'a [NodeId],
    pos: usize,
}

/// Lazy SLCA execution: yields each SLCA root exactly once, in document
/// order, computing candidates one driver posting at a time.
///
/// The single-pass duplicate/ancestor elimination relies on the candidate
/// sequence produced by a sorted driver list: a candidate can only sort
/// *before* its predecessor if it is an ancestor of it, so one pending
/// candidate of lookahead suffices to reproduce the sort + dedup +
/// ancestor-prune of the batch algorithm (`tests/properties.rs` pins the
/// equivalence).
#[derive(Debug)]
pub struct SlcaStream<'a> {
    doc: &'a Document,
    driver: &'a [NodeId],
    others: Vec<Cursor<'a>>,
    next_driver: usize,
    pending: Option<DeweyRef<'a>>,
    stats: ExecutorStats,
}

impl<'a> SlcaStream<'a> {
    /// The counters accumulated so far (final once the stream is
    /// exhausted; callers that stop early get the cost of what they
    /// actually consumed — the point of streaming).
    pub fn stats(&self) -> ExecutorStats {
        self.stats
    }
}

impl Iterator for SlcaStream<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let Some(&v) = self.driver.get(self.next_driver) else {
                let last = self.pending.take()?;
                return Some(node_of(self.doc, last));
            };
            self.next_driver += 1;
            self.stats.postings_scanned += 1;
            let mut x = self.doc.dewey(v);
            for cursor in &mut self.others {
                x = anchored_deepest_lca(self.doc, x, cursor, &mut self.stats.gallop_probes);
            }
            match self.pending {
                None => self.pending = Some(x),
                // Same candidate again: drop the duplicate.
                Some(p) if p == x => self.stats.candidates_pruned += 1,
                // The pending candidate contains the new one: it cannot be
                // a *smallest* LCA, replace it.
                Some(p) if p.is_ancestor_of(x) => {
                    self.stats.candidates_pruned += 1;
                    self.pending = Some(x);
                }
                // The new candidate contains the pending one: drop it.
                Some(p) if x.is_ancestor_of(p) => self.stats.candidates_pruned += 1,
                // Unrelated: the pending candidate is final (nothing later
                // can sort before it without being its ancestor).
                Some(p) => {
                    self.pending = Some(x);
                    return Some(node_of(self.doc, p));
                }
            }
        }
    }
}

fn node_of(doc: &Document, dewey: DeweyRef<'_>) -> NodeId {
    doc.node_at(dewey).expect("SLCA candidates are prefixes of document nodes")
}

/// The deepest LCA of `x` with any node of the cursor's list — achieved by
/// one of the two nodes adjacent to `x` in document order, located by
/// galloping from the cursor's previous position. The result is an
/// ancestor-or-self prefix of `x`, borrowed from the same arena.
fn anchored_deepest_lca<'a>(
    doc: &Document,
    x: DeweyRef<'a>,
    cursor: &mut Cursor<'_>,
    probes: &mut u64,
) -> DeweyRef<'a> {
    let i = gallop_insertion(doc, cursor.list, x, cursor.pos, probes);
    cursor.pos = i;
    let mut best = 0usize;
    for neighbour in [i.checked_sub(1).map(|j| cursor.list[j]), cursor.list.get(i).copied()]
        .into_iter()
        .flatten()
    {
        best = best.max(x.common_prefix_len(doc.dewey(neighbour)));
    }
    // Nodes of one document always share the root component, so `best` ≥ 1
    // whenever the list is non-empty (guaranteed by the planner).
    x.ancestor_at_depth(best.max(1)).expect("prefix depth within bounds")
}

/// The first index `i` of `list` with `dewey(list[i]) >= x` — what
/// `list.partition_point(|n| dewey(n) < x)` computes — located by
/// bidirectional exponential search from `anchor` instead of bisecting the
/// whole list. Cursors advance monotonically for the outermost probe of
/// each driver posting; intersected prefixes can briefly step backwards
/// (an ancestor sorts before its descendants), which the backward gallop
/// covers at the same logarithmic cost.
fn gallop_insertion(
    doc: &Document,
    list: &[NodeId],
    x: DeweyRef<'_>,
    anchor: usize,
    probes: &mut u64,
) -> usize {
    let n = list.len();
    let below = |i: usize, probes: &mut u64| {
        *probes += 1;
        doc.dewey(list[i]) < x
    };
    let a = anchor.min(n);
    let (lo, hi);
    if a < n && below(a, probes) {
        // Insertion point in (a, n]: gallop forward over a+1, a+2, a+4, …
        let mut last_below = a;
        let mut step = 1usize;
        loop {
            let cand = a + step;
            if cand >= n {
                lo = last_below + 1;
                hi = n;
                break;
            }
            if below(cand, probes) {
                last_below = cand;
                step *= 2;
            } else {
                lo = last_below + 1;
                hi = cand;
                break;
            }
        }
    } else {
        // Insertion point in [0, a]: gallop backward over a-1, a-2, a-4, …
        let mut first_at_or_above = a;
        let mut step = 1usize;
        loop {
            if step > a {
                lo = 0;
                hi = first_at_or_above;
                break;
            }
            let cand = a - step;
            if below(cand, probes) {
                lo = cand + 1;
                hi = first_at_or_above;
                break;
            }
            first_at_or_above = cand;
            step *= 2;
        }
    }
    lo + list[lo..hi].partition_point(|&node| {
        *probes += 1;
        doc.dewey(node) < x
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca_full_scan;
    use xsact_xml::parse_document;

    fn doc_and_index(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn zero_postings_term_short_circuits() {
        let (_, idx) = doc_and_index("<r><a>k1</a><b>k2</b></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k1 zeppelin"));
        assert!(plan.is_empty());
        assert!(plan.lists().is_empty());
        assert_eq!(plan.driver_len(), 0);
    }

    #[test]
    fn empty_query_is_an_empty_plan() {
        let (_, idx) = doc_and_index("<r><a>k</a></r>");
        assert!(QueryPlan::new(&idx, &Query::parse("")).is_empty());
        assert!(QueryPlan::from_lists(Vec::new()).is_empty());
    }

    #[test]
    fn empty_plan_streams_nothing_and_counts_nothing() {
        let (doc, idx) = doc_and_index("<r><a>k1</a></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k1 nope"));
        let mut stream = plan.stream(&doc);
        assert_eq!(stream.next(), None);
        assert!(stream.stats().is_zero(), "no SLCA work after a short-circuit");
    }

    #[test]
    fn lists_are_ordered_rarest_first() {
        let (_, idx) = doc_and_index("<r><a>k1 k2</a><b>k2</b><c>k2</c></r>");
        let plan = QueryPlan::new(&idx, &Query::parse("k2 k1"));
        assert!(!plan.is_empty());
        let lens: Vec<usize> = plan.lists().iter().map(|l| l.len()).collect();
        assert_eq!(lens, [1, 3]);
        assert_eq!(plan.driver_len(), 1);
        assert_eq!(plan.total_postings(), 4);
    }

    #[test]
    fn stream_matches_full_scan_on_the_paper_example() {
        let xml = "<r><sec><x>k1</x><y>k2</y></sec><sec><x>k1</x><y>k2</y></sec></r>";
        let (doc, idx) = doc_and_index(xml);
        let q = Query::parse("k1 k2");
        let lists: Vec<&[NodeId]> = q.iter().map(|t| idx.postings(t)).collect();
        let oracle = slca_full_scan(&doc, &lists);
        let plan = QueryPlan::new(&idx, &q);
        let mut stream = plan.stream(&doc);
        let streamed: Vec<NodeId> = (&mut stream).collect();
        assert_eq!(streamed, oracle);
        let stats = stream.stats();
        assert_eq!(stats.postings_scanned, 2, "driver list has two postings");
        assert!(stats.gallop_probes > 0);
    }

    #[test]
    fn stream_stats_reflect_partial_consumption() {
        // Three sections, three SLCAs: taking one emits after two driver
        // probes (one candidate of lookahead), not after all three.
        let xml =
            "<r><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let plan = QueryPlan::new(&idx, &Query::parse("k1 k2"));
        let mut stream = plan.stream(&doc);
        assert!(stream.next().is_some());
        assert_eq!(stream.stats().postings_scanned, 2);
        let consumed: Vec<NodeId> = (&mut stream).collect();
        assert_eq!(consumed.len(), 2);
        assert_eq!(stream.stats().postings_scanned, 3);
    }

    #[test]
    fn gallop_insertion_equals_partition_point_for_any_anchor() {
        let xml = "<r><s><a>k</a><a>k</a></s><s><a>k</a></s><s><a>k</a><a>k</a><a>k</a></s></r>";
        let (doc, idx) = doc_and_index(xml);
        let list = idx.postings("a");
        assert!(list.len() >= 6);
        let probe_points: Vec<NodeId> = doc.all_nodes().collect();
        for &p in &probe_points {
            let x = doc.dewey(p);
            let expected = list.partition_point(|&n| doc.dewey(n) < x);
            for anchor in 0..=list.len() + 2 {
                let mut probes = 0;
                assert_eq!(
                    gallop_insertion(&doc, list, x, anchor, &mut probes),
                    expected,
                    "probe {x} from anchor {anchor}"
                );
                assert!(probes > 0);
            }
        }
    }
}
