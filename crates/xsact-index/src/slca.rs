//! Lowest-common-ancestor semantics for XML keyword search.
//!
//! Given one posting list per query term, a node is an **LCA match** if its
//! subtree contains at least one node from every list. The standard result
//! semantics — used by XSeek and therefore by XSACT — is the **Smallest LCA
//! (SLCA)**: LCA matches none of whose proper descendants are also LCA
//! matches. The **Exclusive LCA (ELCA)** is a looser alternative also
//! implemented here: a node that still contains every keyword after removing
//! the subtrees of its keyword-complete descendants.
//!
//! Two SLCA implementations are provided:
//!
//! * [`slca_full_scan`] — one bottom-up pass propagating keyword bitmasks
//!   over the whole document. Simple, obviously correct, `O(|doc| · k/64)`;
//!   used as the oracle in property tests and as the baseline in benches.
//! * [`slca_indexed_lookup`] — the Indexed Lookup Eager algorithm of Xu &
//!   Papakonstantinou (SIGMOD 2005): iterate the *shortest* posting list and
//!   locate neighbours in the others by anchored exponential search (see
//!   [`crate::plan`]), `O(|S₁| · Σ log gapᵢ · d)`. This is what the search
//!   engine uses, as the batch form of the streaming executor.

use xsact_xml::{Document, NodeId};

/// Maximum number of keyword lists supported by the bitmask algorithms.
pub const MAX_KEYWORDS: usize = 64;

fn full_mask(k: usize) -> u64 {
    assert!(k <= MAX_KEYWORDS, "at most {MAX_KEYWORDS} keywords supported");
    if k == MAX_KEYWORDS {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Computes per-node `(direct, subtree)` keyword masks.
fn keyword_masks(doc: &Document, lists: &[&[NodeId]]) -> (Vec<u64>, Vec<u64>) {
    let mut direct = vec![0u64; doc.len()];
    for (bit, list) in lists.iter().enumerate() {
        for &node in *list {
            direct[node.index()] |= 1 << bit;
        }
    }
    let order: Vec<NodeId> = doc.all_nodes().collect();
    let mut subtree = direct.clone();
    // Children follow their parent in preorder, so a reverse sweep sees every
    // node after all of its descendants.
    for &node in order.iter().rev() {
        if let Some(parent) = doc.parent(node) {
            subtree[parent.index()] |= subtree[node.index()];
        }
    }
    (direct, subtree)
}

/// Full-scan SLCA: returns, in document order, every node whose subtree
/// contains all keywords while no child subtree does.
///
/// Empty input or any empty posting list yields no results (AND semantics).
pub fn slca_full_scan(doc: &Document, lists: &[&[NodeId]]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let full = full_mask(lists.len());
    let (_, subtree) = keyword_masks(doc, lists);
    doc.all_nodes()
        .filter(|&n| {
            subtree[n.index()] == full
                && doc.children(n).iter().all(|&c| subtree[c.index()] != full)
        })
        .collect()
}

/// Full-scan ELCA: nodes that contain every keyword *exclusively* — counting
/// only witnesses not inside an already keyword-complete child subtree.
///
/// Every SLCA is an ELCA; the converse does not hold.
pub fn elca_full_scan(doc: &Document, lists: &[&[NodeId]]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let full = full_mask(lists.len());
    let (direct, subtree) = keyword_masks(doc, lists);
    doc.all_nodes()
        .filter(|&n| {
            let mut exclusive = direct[n.index()];
            for &c in doc.children(n) {
                let m = subtree[c.index()];
                if m != full {
                    exclusive |= m;
                }
            }
            exclusive == full
        })
        .collect()
}

/// Indexed Lookup Eager SLCA (Xu & Papakonstantinou), anchored-gallop
/// variant.
///
/// Iterates the shortest posting list; for each of its nodes `v` computes
/// the smallest LCA of `v` with the *closest* match from every other list,
/// located by exponential search from the previous probe's cursor (see
/// [`crate::plan`]), and eliminates candidates that are ancestors of other
/// candidates in a single streaming pass. Produces exactly the same set as
/// [`slca_full_scan`], in document order — the property tests in this
/// module and in `tests/properties.rs` enforce that.
///
/// Every intermediate LCA is a *prefix* of the driving node's Dewey
/// components, so candidates are borrowed slices into the document's flat
/// Dewey arena — the whole probe allocates nothing beyond the result
/// vector itself. Callers that only need a prefix of the results should
/// use [`crate::plan::QueryPlan::stream`] directly and stop early.
pub fn slca_indexed_lookup(doc: &Document, lists: &[&[NodeId]]) -> Vec<NodeId> {
    crate::plan::QueryPlan::from_lists(lists.to_vec()).stream(doc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::InvertedIndex;
    use xsact_xml::parse_document;

    fn run_both(xml: &str, terms: &[&str]) -> (Vec<String>, Vec<String>) {
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let decoded: Vec<Vec<NodeId>> = terms.iter().map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        let a = slca_full_scan(&doc, &lists);
        let b = slca_indexed_lookup(&doc, &lists);
        let path = |v: Vec<NodeId>| -> Vec<String> {
            v.into_iter().map(|n| doc.dewey(n).to_string()).collect()
        };
        (path(a), path(b))
    }

    #[test]
    fn single_keyword_slca_is_match_nodes() {
        let (full, ile) = run_both("<r><a>k</a><b>k</b></r>", &["k"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0", "0.1"]);
    }

    #[test]
    fn two_keywords_in_sibling_sections() {
        // Each section holds both keywords → two SLCAs, root excluded.
        let xml = "<r><sec><x>k1</x><y>k2</y></sec><sec><x>k1</x><y>k2</y></sec></r>";
        let (full, ile) = run_both(xml, &["k1", "k2"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0", "0.1"]);
    }

    #[test]
    fn keywords_split_across_sections_meet_at_root() {
        let xml = "<r><sec><x>k1</x></sec><sec><y>k2</y></sec></r>";
        let (full, ile) = run_both(xml, &["k1", "k2"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0"]);
    }

    #[test]
    fn missing_keyword_gives_no_results() {
        let (full, ile) = run_both("<r><a>k1</a></r>", &["k1", "nope"]);
        assert!(full.is_empty() && ile.is_empty());
    }

    #[test]
    fn empty_query_gives_no_results() {
        let doc = parse_document("<r><a>k</a></r>").unwrap();
        assert!(slca_full_scan(&doc, &[]).is_empty());
        assert!(slca_indexed_lookup(&doc, &[]).is_empty());
        assert!(elca_full_scan(&doc, &[]).is_empty());
    }

    #[test]
    fn tag_names_match_keywords() {
        // `product` matches via the tag, `tomtom` via text.
        let xml = "<shop><product><name>TomTom</name></product><product><name>Garmin</name></product></shop>";
        let (full, ile) = run_both(xml, &["product", "tomtom"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0"]);
    }

    #[test]
    fn nested_matches_prefer_the_smallest() {
        // Both keywords under <inner>; <outer> also contains them but is not
        // smallest.
        let xml = "<r><outer><inner><a>k1</a><b>k2</b></inner><c>k1</c></outer></r>";
        let (full, ile) = run_both(xml, &["k1", "k2"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0.0"]);
    }

    #[test]
    fn self_match_single_node_with_both_keywords() {
        let xml = "<r><a>k1 k2</a><b>k1</b></r>";
        let (full, ile) = run_both(xml, &["k1", "k2"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0"]);
    }

    #[test]
    fn three_keywords() {
        let xml = "<r><s><a>k1</a><b>k2</b><c>k3</c></s><s><a>k1 k2 k3</a></s><s><a>k1</a><b>k2</b></s></r>";
        let (full, ile) = run_both(xml, &["k1", "k2", "k3"]);
        assert_eq!(full, ile);
        assert_eq!(full, ["0.0", "0.1.0"]);
    }

    #[test]
    fn elca_includes_root_with_exclusive_witnesses() {
        // <sec> is keyword-complete; root still owns a spare k1 and k2.
        let xml = "<r><sec><a>k1</a><b>k2</b></sec><x>k1</x><y>k2</y></r>";
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let (k1, k2) = (idx.postings("k1").to_vec(), idx.postings("k2").to_vec());
        let lists: Vec<&[NodeId]> = vec![&k1, &k2];
        let slca: Vec<String> =
            slca_full_scan(&doc, &lists).iter().map(|&n| doc.dewey(n).to_string()).collect();
        let elca: Vec<String> =
            elca_full_scan(&doc, &lists).iter().map(|&n| doc.dewey(n).to_string()).collect();
        assert_eq!(slca, ["0.0"]);
        assert_eq!(elca, ["0", "0.0"]);
    }

    #[test]
    fn elca_excludes_root_without_exclusive_witnesses() {
        let xml = "<r><sec><a>k1</a><b>k2</b></sec><x>k1</x></r>";
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let (k1, k2) = (idx.postings("k1").to_vec(), idx.postings("k2").to_vec());
        let lists: Vec<&[NodeId]> = vec![&k1, &k2];
        let elca: Vec<String> =
            elca_full_scan(&doc, &lists).iter().map(|&n| doc.dewey(n).to_string()).collect();
        assert_eq!(elca, ["0.0"]);
    }

    #[test]
    fn every_slca_is_an_elca() {
        let xml = "<r><s><a>k1</a><b>k2</b></s><s><a>k1 k2</a></s><x>k1</x><y>k2</y></r>";
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let (k1, k2) = (idx.postings("k1").to_vec(), idx.postings("k2").to_vec());
        let lists: Vec<&[NodeId]> = vec![&k1, &k2];
        let slca = slca_full_scan(&doc, &lists);
        let elca = elca_full_scan(&doc, &lists);
        for n in slca {
            assert!(elca.contains(&n));
        }
    }

    #[test]
    fn results_in_document_order() {
        let xml =
            "<r><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s></r>";
        let doc = parse_document(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let (k1, k2) = (idx.postings("k1").to_vec(), idx.postings("k2").to_vec());
        let lists: Vec<&[NodeId]> = vec![&k1, &k2];
        for algo in [slca_full_scan, slca_indexed_lookup] {
            let out = algo(&doc, &lists);
            for pair in out.windows(2) {
                assert!(doc.dewey(pair[0]) < doc.dewey(pair[1]));
            }
        }
    }

    #[test]
    fn full_mask_boundaries() {
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(2), 3);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at most 64 keywords")]
    fn too_many_keywords_panics() {
        full_mask(65);
    }
}
