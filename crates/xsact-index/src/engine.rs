//! The search engine façade: query in, entity-rooted results out.
//!
//! Mirrors XSeek's behaviour as far as XSACT needs it: keyword matches are
//! combined with SLCA semantics, and each SLCA is *promoted to its master
//! entity* — the nearest ancestor-or-self node classified as an entity — so
//! that a result is a meaningful object (a `product`, a `movie`, a `brand`)
//! rather than an arbitrary grouping node. This is the return-node inference
//! of reference \[3\] in the form the demo paper describes ("each result will
//! be a brand selling men's jackets").

use crate::plan::{ExecutorStats, PlanFragments, QueryPlan};
use crate::postings::InvertedIndex;
use crate::query::Query;
use crate::rank::{rank_results, ScoredResult, Scorer, TopK};
use crate::slca::elca_full_scan;
use std::collections::{HashMap, HashSet};
use xsact_entity::{extract_features, NodeClass, ResultFeatures, StructureSummary};
use xsact_obs::TraceSink;
use xsact_xml::{writer, Document, NodeId};

/// Which lowest-common-ancestor semantics defines a keyword match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResultSemantics {
    /// Smallest LCA — XSeek's (and therefore XSACT's) default.
    #[default]
    Slca,
    /// Exclusive LCA — a looser semantics that may additionally return
    /// ancestors with their own exclusive keyword witnesses.
    Elca,
}

/// One search result: an entity subtree of the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Root of the result subtree (the master entity).
    pub root: NodeId,
    /// The SLCA node the result was promoted from (a descendant-or-self of
    /// `root`).
    pub slca: NodeId,
    /// Display label, e.g. the product's name.
    pub label: String,
}

/// The outcome of one streaming top-k run: the best `k` results with
/// their scores, best-first, plus what the executor did to find them.
#[derive(Debug, Clone)]
pub struct TopKSearch {
    /// Ranked results (score descending, Dewey tie-break), at most `k`.
    pub hits: Vec<(SearchResult, ScoredResult)>,
    /// Executor counters for this run.
    pub stats: ExecutorStats,
}

/// Annotates a `plan` span with the plan's shape.
fn note_plan(span: &mut xsact_obs::Span<'_>, plan: &QueryPlan<'_>) {
    span.note("lists", plan.num_lists() as u64);
    if !plan.is_empty() {
        span.note("driver_postings", plan.driver_len() as u64);
        span.note("total_postings", plan.total_postings() as u64);
    }
}

/// Annotates a `slca-stream` span with the executor counters it produced.
fn note_stream(span: &mut xsact_obs::Span<'_>, stats: ExecutorStats, streamed: usize) {
    span.note("postings_scanned", stats.postings_scanned);
    span.note("gallop_probes", stats.gallop_probes);
    span.note("streamed", streamed as u64);
}

/// An immutable, query-ready view of one XML document: structural summary +
/// inverted index.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    doc: Document,
    summary: StructureSummary,
    index: InvertedIndex,
}

impl SearchEngine {
    /// Indexes `doc` and infers its structural summary.
    pub fn build(doc: Document) -> Self {
        let index = InvertedIndex::build(&doc);
        SearchEngine::from_parts(doc, index)
    }

    /// Assembles an engine from a document and a pre-built (e.g. loaded)
    /// index. The caller is responsible for index/document consistency —
    /// [`crate::persist::load_index`] enforces it via the fingerprint.
    pub fn from_parts(doc: Document, index: InvertedIndex) -> Self {
        let summary = StructureSummary::infer(&doc);
        SearchEngine { doc, summary, index }
    }

    /// The underlying document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The inferred structural summary.
    pub fn summary(&self) -> &StructureSummary {
        &self.summary
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Runs a conjunctive keyword query with SLCA semantics.
    ///
    /// Results are distinct entity subtrees in document order. An empty
    /// query, or a query containing a term absent from the document,
    /// returns no results.
    pub fn search(&self, query: &Query) -> Vec<SearchResult> {
        self.search_with(query, ResultSemantics::Slca)
    }

    /// Runs a conjunctive keyword query under the chosen LCA semantics.
    pub fn search_with(&self, query: &Query, semantics: ResultSemantics) -> Vec<SearchResult> {
        self.search_with_stats(query, semantics).0
    }

    /// Like [`search_with`](Self::search_with), additionally reporting
    /// what the executor did. A query the planner proves empty (no terms,
    /// or a term with zero postings) returns zeroed counters — no SLCA
    /// work ran at all.
    pub fn search_with_stats(
        &self,
        query: &Query,
        semantics: ResultSemantics,
    ) -> (Vec<SearchResult>, ExecutorStats) {
        self.search_with_stats_traced(query, semantics, None)
    }

    /// [`search_with_stats`](Self::search_with_stats) with an optional
    /// stage trace (`plan` → `slca-stream` → `sort` spans). With `None`
    /// no timestamps are taken at all, and tracing never changes the
    /// results — only observes them.
    pub fn search_with_stats_traced(
        &self,
        query: &Query,
        semantics: ResultSemantics,
        trace: Option<&TraceSink>,
    ) -> (Vec<SearchResult>, ExecutorStats) {
        let mut stats = ExecutorStats::default();
        let span = trace.map(|sink| sink.span("plan"));
        let plan = QueryPlan::new(&self.index, query);
        if let Some(mut span) = span {
            note_plan(&mut span, &plan);
            span.finish();
        }
        if plan.is_empty() {
            return (Vec::new(), stats);
        }
        let span = trace.map(|sink| sink.span("slca-stream"));
        let mut results = Vec::new();
        self.for_each_promoted(&plan, semantics, &mut stats, |root, slca| {
            results.push(SearchResult { root, slca, label: self.label_for(root) });
        });
        if let Some(mut span) = span {
            note_stream(&mut span, stats, results.len());
            span.finish();
        }
        let span = trace.map(|sink| sink.span("sort"));
        results.sort_by(|a, b| self.doc.dewey(a.root).cmp(&self.doc.dewey(b.root)));
        if let Some(span) = span {
            span.finish();
        }
        (results, stats)
    }

    /// Runs the planned match stream under `semantics` and hands every
    /// *distinct* master-entity promotion to `f` as a `(root, slca)` pair,
    /// in match (document) order — the shared front half of
    /// [`search_with_stats`](Self::search_with_stats) and
    /// [`search_top_k`](Self::search_top_k), so promotion, duplicate
    /// accounting and the per-semantics dispatch cannot drift apart.
    fn for_each_promoted(
        &self,
        plan: &QueryPlan<'_>,
        semantics: ResultSemantics,
        stats: &mut ExecutorStats,
        mut f: impl FnMut(NodeId, NodeId),
    ) {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut promote = |slca: NodeId, stats: &mut ExecutorStats| {
            let root = self.master_entity(slca);
            if seen.insert(root) {
                f(root, slca);
            } else {
                stats.candidates_pruned += 1;
            }
        };
        match semantics {
            ResultSemantics::Slca => {
                let mut stream = plan.stream(&self.doc);
                for slca in stream.by_ref() {
                    promote(slca, stats);
                }
                *stats += stream.stats();
            }
            ResultSemantics::Elca => {
                // The full scan reads every posting of every list — it
                // needs the whole lists in memory, so decode the packed
                // frames up front (the streaming SLCA path never does).
                stats.postings_scanned += plan.total_postings() as u64;
                let decoded = plan.decoded_lists();
                let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
                for m in elca_full_scan(&self.doc, &lists) {
                    promote(m, stats);
                }
            }
        }
    }

    /// Runs a query and orders the results by relevance (best first) using
    /// the TF-IDF/specificity scorer in [`crate::rank`] — the "result
    /// ranking" companion technique the paper's summary names.
    pub fn search_ranked(&self, query: &Query) -> Vec<(SearchResult, ScoredResult)> {
        let results = self.search(query);
        let roots: Vec<NodeId> = results.iter().map(|r| r.root).collect();
        let scored = rank_results(&self.doc, &self.index, query, &roots);
        // Roots are distinct (search deduplicates promotions), so one map
        // pairs every scored entry with its result by moving it out —
        // no per-entry rescan of the result list, no clones.
        let mut by_root: HashMap<NodeId, SearchResult> =
            results.into_iter().map(|r| (r.root, r)).collect();
        scored
            .into_iter()
            .map(|s| {
                let result =
                    by_root.remove(&s.root).expect("scored roots come from the result list");
                (result, s)
            })
            .collect()
    }

    /// Runs the **streaming top-k executor**: plans the query (rarest-first
    /// term order, zero-postings short-circuit), streams SLCA roots through
    /// entity promotion and the TF-IDF scorer, and keeps only the best `k`
    /// in a bounded heap — display labels are built for the survivors
    /// only. `search_top_k(q, k, s).hits` equals the ranked full search
    /// truncated to `k` for every `k` (the ranking order is total;
    /// `tests/properties.rs` pins it), with `usize::MAX` producing the
    /// complete ranking.
    ///
    /// [`search_ranked`](Self::search_ranked) stays as the sort-everything
    /// correctness oracle.
    pub fn search_top_k(&self, query: &Query, k: usize, semantics: ResultSemantics) -> TopKSearch {
        self.search_top_k_traced(query, k, semantics, None)
    }

    /// [`search_top_k`](Self::search_top_k) with an optional stage trace
    /// (`plan` → `slca-stream` → `rank` spans, executor counters attached
    /// as span notes). With `None` no timestamps are taken at all;
    /// tracing never changes the ranked bytes (`tests/obs.rs` pins it).
    pub fn search_top_k_traced(
        &self,
        query: &Query,
        k: usize,
        semantics: ResultSemantics,
        trace: Option<&TraceSink>,
    ) -> TopKSearch {
        let stats = ExecutorStats::default();
        let span = trace.map(|sink| sink.span("plan"));
        let plan = QueryPlan::new(&self.index, query);
        if let Some(mut span) = span {
            note_plan(&mut span, &plan);
            span.finish();
        }
        self.top_k_planned(&plan, query, k, semantics, trace, stats)
    }

    /// [`search_top_k`](Self::search_top_k), but planning through a shared
    /// per-batch [`PlanFragments`] table: terms already resolved by an
    /// earlier query of the same batch are served from the table, and the
    /// reused entry count lands in [`ExecutorStats::postings_shared`].
    /// Every other byte — hits, ranking order, the three legacy counters —
    /// is identical to the independent path (`tests/properties.rs` pins
    /// it over random batches).
    pub fn search_top_k_shared<'e>(
        &'e self,
        query: &Query,
        k: usize,
        semantics: ResultSemantics,
        fragments: &mut PlanFragments<'e>,
    ) -> TopKSearch {
        let shared_before = fragments.shared_entries();
        let plan = QueryPlan::new_shared(&self.index, query, fragments);
        let stats = ExecutorStats {
            postings_shared: fragments.shared_entries() - shared_before,
            ..ExecutorStats::default()
        };
        self.top_k_planned(&plan, query, k, semantics, None, stats)
    }

    /// The execution half of the top-k search, shared by the independent
    /// and plan-sharing entry points: score, stream, and keep the best
    /// `k` in a bounded heap. `stats` carries whatever planning already
    /// counted (zero, or the shared-entry credit).
    fn top_k_planned<'e>(
        &'e self,
        plan: &QueryPlan<'e>,
        query: &Query,
        k: usize,
        semantics: ResultSemantics,
        trace: Option<&TraceSink>,
        mut stats: ExecutorStats,
    ) -> TopKSearch {
        if plan.is_empty() {
            return TopKSearch { hits: Vec::new(), stats };
        }
        let scorer = Scorer::new(&self.doc, &self.index, query);
        let span = trace.map(|sink| sink.span("slca-stream"));
        let mut heap: TopK<'_, (ScoredResult, NodeId)> = TopK::new(k);
        let mut streamed = 0usize;
        self.for_each_promoted(plan, semantics, &mut stats, |root, slca| {
            let scored = scorer.score(root);
            heap.push(scored.score, self.doc.dewey(root), (scored, slca));
            streamed += 1;
        });
        if let Some(mut span) = span {
            note_stream(&mut span, stats, streamed);
            span.finish();
        }
        let span = trace.map(|sink| sink.span("rank"));
        let (kept, evicted) = heap.finish();
        stats.candidates_pruned += evicted;
        let hits: Vec<_> = kept
            .into_iter()
            .map(|(scored, slca)| {
                let root = scored.root;
                (SearchResult { root, slca, label: self.label_for(root) }, scored)
            })
            .collect();
        if let Some(mut span) = span {
            span.note("kept", hits.len() as u64);
            span.note("heap_evicted", evicted);
            span.finish();
        }
        TopKSearch { hits, stats }
    }

    /// The nearest ancestor-or-self of `node` classified as an entity
    /// (falling back to the document root).
    pub fn master_entity(&self, node: NodeId) -> NodeId {
        let mut cur = node;
        loop {
            if self.doc.is_element(cur)
                && self.summary.class_of(&self.doc, cur) == NodeClass::Entity
            {
                return cur;
            }
            match self.doc.parent(cur) {
                Some(p) => cur = p,
                None => return cur,
            }
        }
    }

    /// Extracts the aggregated feature statistics of a result — the input of
    /// the DFS algorithms in `xsact-core`.
    pub fn extract_features(&self, result: &SearchResult) -> ResultFeatures {
        extract_features(&self.doc, &self.summary, result.root, result.label.as_str())
    }

    /// Serialises the result subtree as XML (the "click the name to see the
    /// entire result" interaction of the demo).
    pub fn result_xml(&self, result: &SearchResult) -> String {
        writer::write_subtree(&self.doc, result.root)
    }

    fn label_for(&self, root: NodeId) -> String {
        for tag in ["name", "title", "label", "id"] {
            if let Some(child) = self.doc.child_by_tag(root, tag) {
                let text = self.doc.text_content(child);
                if !text.trim().is_empty() {
                    return text.split_whitespace().collect::<Vec<_>>().join(" ");
                }
            }
        }
        if let Some(v) = self.doc.attr(root, "name") {
            return v.to_owned();
        }
        format!("{} [{}]", self.doc.tag(root), self.doc.dewey(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    fn shop_engine() -> SearchEngine {
        let doc = parse_document(
            "<shop>\
               <product><name>TomTom Go 630</name><kind>GPS</kind>\
                 <reviews><review><pros><compact>yes</compact></pros></review>\
                          <review><pros><compact>yes</compact></pros></review></reviews></product>\
               <product><name>TomTom Go 730</name><kind>GPS</kind>\
                 <reviews><review><pros><satellites>yes</satellites></pros></review>\
                          <review><pros><compact>yes</compact></pros></review></reviews></product>\
               <product><name>Canon Ixus</name><kind>camera</kind>\
                 <reviews><review><pros><compact>yes</compact></pros></review>\
                          <review><pros><compact>yes</compact></pros></review></reviews></product>\
             </shop>",
        )
        .unwrap();
        SearchEngine::build(doc)
    }

    #[test]
    fn paper_query_returns_both_tomtom_products() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("TomTom GPS"));
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["TomTom Go 630", "TomTom Go 730"]);
    }

    #[test]
    fn results_promoted_to_entity_roots() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("TomTom GPS"));
        for r in &results {
            assert_eq!(engine.document().tag(r.root), "product");
            // The SLCA sits inside the promoted subtree.
            let d = engine.document();
            assert!(d.dewey(r.root).is_ancestor_or_self_of(d.dewey(r.slca)));
        }
    }

    #[test]
    fn duplicate_promotions_collapse() {
        // Both `compact` and the review match inside the same product → one
        // result per product.
        let engine = shop_engine();
        let results = engine.search(&Query::parse("compact review"));
        let mut roots: Vec<NodeId> = results.iter().map(|r| r.root).collect();
        roots.dedup();
        assert_eq!(roots.len(), results.len());
    }

    #[test]
    fn unknown_term_yields_nothing() {
        let engine = shop_engine();
        assert!(engine.search(&Query::parse("TomTom zeppelin")).is_empty());
        assert!(engine.search(&Query::parse("")).is_empty());
    }

    #[test]
    fn single_term_query() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("camera"));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].label, "Canon Ixus");
    }

    #[test]
    fn extract_features_uses_result_label() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("TomTom GPS"));
        let rf = engine.extract_features(&results[0]);
        assert_eq!(rf.label, "TomTom Go 630");
        assert!(rf.type_count() >= 2);
        assert_eq!(rf.instances_of("shop/product/reviews/review"), 2);
    }

    #[test]
    fn result_xml_is_well_formed_subtree() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("Canon"));
        let xml = engine.result_xml(&results[0]);
        assert!(xml.starts_with("<product>"));
        assert!(parse_document(&xml).is_ok());
    }

    #[test]
    fn label_fallbacks() {
        let doc = parse_document(
            "<r><item code=\"1\"><v>k</v></item><item name=\"second\"><v>k</v></item></r>",
        )
        .unwrap();
        let engine = SearchEngine::build(doc);
        let results = engine.search(&Query::parse("k"));
        assert_eq!(results.len(), 2);
        // First item: no name/title child, no name attr → tag + dewey.
        assert!(results[0].label.starts_with("item ["));
        // Second item: `name` attribute.
        assert_eq!(results[1].label, "second");
    }

    #[test]
    fn results_in_document_order() {
        let engine = shop_engine();
        let results = engine.search(&Query::parse("compact"));
        let d = engine.document();
        for pair in results.windows(2) {
            assert!(d.dewey(pair[0].root) < d.dewey(pair[1].root));
        }
    }

    #[test]
    fn master_entity_of_root_is_root() {
        let engine = shop_engine();
        let root = engine.document().root();
        assert_eq!(engine.master_entity(root), root);
    }

    #[test]
    fn elca_semantics_is_a_superset_of_slca() {
        let engine = shop_engine();
        for text in ["TomTom GPS", "compact", "camera"] {
            let q = Query::parse(text);
            let slca = engine.search_with(&q, ResultSemantics::Slca);
            let elca = engine.search_with(&q, ResultSemantics::Elca);
            for r in &slca {
                assert!(
                    elca.iter().any(|e| e.root == r.root),
                    "{text}: SLCA result missing under ELCA"
                );
            }
        }
    }

    #[test]
    fn elca_can_return_more_results() {
        // Root holds exclusive witnesses of both terms (two products match
        // `compact` via different subtrees + spare ones at shop level is not
        // the case here, so craft one).
        let doc = parse_document(
            "<shop><product><name>A compact thing</name></product>\
             <product><name>B compact thing</name></product></shop>",
        )
        .unwrap();
        let engine = SearchEngine::build(doc);
        let q = Query::parse("compact thing");
        let slca = engine.search_with(&q, ResultSemantics::Slca);
        let elca = engine.search_with(&q, ResultSemantics::Elca);
        assert!(elca.len() >= slca.len());
    }

    #[test]
    fn zero_postings_term_short_circuits_slca_search() {
        // Satellite: a hopeless term must be caught by the planner, before
        // any SLCA work — observable as all-zero executor counters.
        let engine = shop_engine();
        let q = Query::parse("tomtom zeppelin");
        let (results, stats) = engine.search_with_stats(&q, ResultSemantics::Slca);
        assert!(results.is_empty());
        assert!(stats.is_zero(), "{stats:?}");
        let top = engine.search_top_k(&q, 4, ResultSemantics::Slca);
        assert!(top.hits.is_empty());
        assert!(top.stats.is_zero(), "{:?}", top.stats);
    }

    #[test]
    fn zero_postings_term_short_circuits_elca_search() {
        let engine = shop_engine();
        let q = Query::parse("tomtom zeppelin");
        let (results, stats) = engine.search_with_stats(&q, ResultSemantics::Elca);
        assert!(results.is_empty());
        assert!(stats.is_zero(), "no full scan may run: {stats:?}");
        let top = engine.search_top_k(&q, 4, ResultSemantics::Elca);
        assert!(top.hits.is_empty());
        assert!(top.stats.is_zero(), "{:?}", top.stats);
    }

    #[test]
    fn matching_searches_report_executor_work() {
        let engine = shop_engine();
        let q = Query::parse("TomTom GPS");
        let (results, stats) = engine.search_with_stats(&q, ResultSemantics::Slca);
        assert_eq!(results.len(), 2);
        assert!(stats.postings_scanned > 0);
        assert!(stats.gallop_probes > 0);
    }

    #[test]
    fn search_top_k_equals_truncated_ranked_search() {
        let engine = shop_engine();
        for text in ["compact", "TomTom GPS", "review compact", "camera"] {
            let q = Query::parse(text);
            let full = engine.search_ranked(&q);
            for k in 0..=full.len() + 1 {
                let top = engine.search_top_k(&q, k, ResultSemantics::Slca);
                assert_eq!(top.hits, full[..k.min(full.len())], "{text}, k = {k}");
            }
            let all = engine.search_top_k(&q, usize::MAX, ResultSemantics::Slca);
            assert_eq!(all.hits, full, "{text}, k = all");
        }
    }

    #[test]
    fn search_top_k_counts_heap_evictions() {
        let engine = shop_engine();
        let q = Query::parse("compact");
        let full = engine.search_top_k(&q, usize::MAX, ResultSemantics::Slca);
        let n = full.hits.len() as u64;
        assert!(n > 1, "fixture must produce several results");
        let top1 = engine.search_top_k(&q, 1, ResultSemantics::Slca);
        assert_eq!(top1.hits.len(), 1);
        assert_eq!(
            top1.stats.candidates_pruned,
            full.stats.candidates_pruned + (n - 1),
            "all but one scored candidate evicted by the k = 1 heap"
        );
    }

    #[test]
    fn ranked_search_orders_by_score() {
        let engine = shop_engine();
        let ranked = engine.search_ranked(&Query::parse("compact"));
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].1.score >= pair[1].1.score);
        }
        // Every ranked entry corresponds to a search result.
        let plain = engine.search(&Query::parse("compact"));
        assert_eq!(ranked.len(), plain.len());
    }
}
