//! Keyword search over XML — the *Search Engine* box of the paper's
//! architecture (Figure 3).
//!
//! The paper plugs XSACT into XSeek (Liu & Chen, SIGMOD 2007 / VLDB 2008 —
//! references [3, 4]); this crate is a from-scratch reproduction of the part
//! of XSeek that XSACT needs:
//!
//! * a tokenising [`lexer`] and [`Query`] model,
//! * an [`InvertedIndex`] mapping terms to XML nodes in document order
//!   (Dewey-encoded, so lowest-common-ancestor reasoning is cheap),
//! * [`slca`] — Smallest Lowest Common Ancestor computation, the standard
//!   XML keyword-search semantics, with two implementations (a full-scan
//!   oracle and the Indexed Lookup Eager algorithm of Xu &
//!   Papakonstantinou), plus ELCA as an alternative semantics,
//! * [`plan`] — the streaming executor: a rarest-first [`QueryPlan`] with
//!   zero-postings short-circuit, the anchored-gallop [`SlcaStream`], and
//!   [`ExecutorStats`] observability,
//! * a [`SearchEngine`] that turns SLCAs into *results* by promoting each
//!   match to its master entity, as XSeek's return-node inference does —
//!   including the bounded [`SearchEngine::search_top_k`] executor behind
//!   every `take(k)`-style caller.

pub mod engine;
pub mod lexer;
pub mod persist;
pub mod plan;
pub mod postings;
pub mod query;
pub mod rank;
pub mod slca;

pub use engine::{ResultSemantics, SearchEngine, SearchResult, TopKSearch};
pub use lexer::tokenize;
pub use persist::{document_fingerprint, load_index, save_index};
pub use plan::{ExecutorStats, PlanFragments, QueryPlan, SlcaStream};
pub use postings::{IndexStats, InvertedIndex, PostingsIter, PostingsRef};
pub use query::Query;
pub use rank::{rank_results, rank_top_k, ScoredResult, Scorer};
pub use slca::{elca_full_scan, slca_full_scan, slca_indexed_lookup};
