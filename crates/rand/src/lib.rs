//! Minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so the workspace vendors the tiny
//! slice of the `rand` 0.9 API its dataset generators actually use:
//!
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_range`] over integer and `f64` ranges,
//! * [`RngExt::random_bool`].
//!
//! Determinism is part of the contract: the same seed must produce the same
//! value stream on every platform and in every run, because the synthetic
//! datasets (and therefore every number in the experiment harness) are
//! derived from it. The stream is NOT compatible with the real `rand`
//! crate's `StdRng` — only the API shape is.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive; integers or
    /// `f64`). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 significant bits, the full precision of an f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types a range can sample uniformly. The blanket [`SampleRange`] impls
/// below hang off this trait so that an integer-literal range like `0..5`
/// unifies with a single impl and normal integer fallback applies.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)` or `[start, end]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

/// Uniform draw from `[0, span)` by widening to 128 bits — the modulo bias
/// is at most 2⁻⁶⁴ per draw, far below anything the generators can observe.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    u128::from(rng.next_u64()) % span
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self {
        let bits = rng.next_u64() >> 11; // 53 significant bits
        if inclusive {
            assert!(start <= end, "cannot sample from empty range");
            // unit in [0, 1]: both endpoints attainable, degenerate
            // start..=start is valid and returns start.
            let unit = bits as f64 / ((1u64 << 53) - 1) as f64;
            start + unit * (end - start)
        } else {
            assert!(start < end, "cannot sample from empty range");
            let unit = bits as f64 / (1u64 << 53) as f64; // [0, 1)
            start + unit * (end - start)
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample from empty range");
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3..=5usize);
            assert!((3..=5).contains(&w));
            let x = rng.random_range(-4..4i32);
            assert!((-4..4).contains(&x));
            let f = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_f64_ranges_are_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        // Degenerate inclusive range is valid and returns its only value.
        assert_eq!(rng.random_range(0.5..=0.5), 0.5);
        for _ in 0..1000 {
            let f = rng.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_600..3_400).contains(&heads), "got {heads}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
