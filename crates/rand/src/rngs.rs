//! The generator implementations behind the shim.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ (Blackman & Vigna, 2019) seeded through SplitMix64 — the
/// same construction the real `rand_xoshiro` crate uses, small enough to
/// carry inline and statistically far stronger than the generators need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into the 256-bit state; it
        // cannot produce the all-zero state xoshiro must avoid.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        for seed in 0..100 {
            let rng = StdRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0; 4], "seed {seed}");
        }
    }

    #[test]
    fn output_looks_mixed() {
        // Consecutive outputs differ in many bit positions on average.
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0;
        let mut prev = rng.next_u64();
        for _ in 0..100 {
            let cur = rng.next_u64();
            total += (cur ^ prev).count_ones();
            prev = cur;
        }
        assert!((2_400..4_000).contains(&total), "avg flip count {total}");
    }
}
