//! The comparison instance: an interned, preprocessed view of the results
//! being compared.
//!
//! [`Instance::build`] takes the per-result feature statistics produced by
//! `xsact-entity` and computes everything the DFS algorithms need:
//!
//! * an interned universe of feature types and entities,
//! * per result and entity, the types in **significance order** (Desideratum
//!   2: a valid DFS takes a prefix of this ranking),
//! * the **differentiability matrix**: for every pair of results and every
//!   shared feature type, whether the occurrence ratios differ by more than
//!   the threshold `x%` of the smaller one (paper §2),
//! * per result and type, the display cell for the comparison table.

use std::collections::BTreeSet;
use xsact_entity::{FeatureStat, FeatureType, ResultFeatures};

/// Index of a feature type in [`Instance::types`].
pub type TypeId = usize;
/// Index of an entity in [`Instance::entities`].
pub type EntityIdx = usize;

/// Tunables of DFS construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Maximum number of features per DFS — the paper's `L` (Desideratum 1).
    pub size_bound: usize,
    /// Differentiability threshold `x` in percent (paper: "empirically set
    /// to 10% in our system").
    pub threshold_pct: f64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { size_bound: 10, threshold_pct: 10.0 }
    }
}

/// The table cell of one feature type within one result.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStat {
    /// The dominant value of the type in this result.
    pub value: String,
    /// Occurrence ratio of the dominant value (`count / entity_instances`).
    pub ratio: f64,
    /// Occurrence count of the dominant value.
    pub count: u32,
    /// Number of instances of the owning entity in this result.
    pub instances: u32,
    /// Significance ratio of the whole type (`occurrences /
    /// entity_instances`) — what snippet generation ranks by.
    pub sig_ratio: f64,
}

/// Preprocessed view of one result.
#[derive(Debug, Clone)]
pub struct ResultData {
    /// Display label.
    pub label: String,
    /// Per entity, the result's feature types in significance order.
    pub ranked: Vec<Vec<TypeId>>,
    /// Per type, the display cell (`None` when the result lacks the type).
    pub cells: Vec<Option<CellStat>>,
    /// Per type, its `(entity, rank)` position within this result.
    pub rank_of: Vec<Option<(EntityIdx, usize)>>,
}

impl ResultData {
    /// Whether the result has the feature type at all.
    pub fn has_type(&self, t: TypeId) -> bool {
        self.cells[t].is_some()
    }

    /// Total number of feature types in this result (the paper's `m`).
    pub fn type_count(&self) -> usize {
        self.rank_of.iter().filter(|r| r.is_some()).count()
    }
}

/// A fully preprocessed comparison instance over `n` results.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The interned feature types, sorted by (entity, attribute).
    pub types: Vec<FeatureType>,
    /// The interned entity paths, sorted.
    pub entities: Vec<String>,
    /// Entity of each type.
    pub entity_of: Vec<EntityIdx>,
    /// The preprocessed results.
    pub results: Vec<ResultData>,
    /// Configuration used to build the instance.
    pub config: DfsConfig,
    /// `diff[i * n + j][t]`: results `i` and `j` are differentiable in type
    /// `t`. Symmetric; `false` whenever either result lacks `t`.
    diff: Vec<Vec<bool>>,
}

impl Instance {
    /// Preprocesses a set of results for comparison.
    ///
    /// # Panics
    /// Panics if `results` is empty — there is nothing to compare.
    pub fn build(results: &[ResultFeatures], config: DfsConfig) -> Self {
        assert!(!results.is_empty(), "cannot compare zero results");

        // Intern entities and types over the union of all results.
        let mut entity_set: BTreeSet<&str> = BTreeSet::new();
        let mut type_set: BTreeSet<&FeatureType> = BTreeSet::new();
        for rf in results {
            for stat in &rf.stats {
                entity_set.insert(stat.ty.entity.as_str());
                type_set.insert(&stat.ty);
            }
        }
        let entities: Vec<String> = entity_set.into_iter().map(str::to_owned).collect();
        let types: Vec<FeatureType> = type_set.into_iter().cloned().collect();
        let entity_idx =
            |path: &str| entities.binary_search_by(|e| e.as_str().cmp(path)).expect("interned");
        let entity_of: Vec<EntityIdx> = types.iter().map(|t| entity_idx(&t.entity)).collect();
        let type_idx = |ty: &FeatureType| types.binary_search(ty).expect("interned");

        // Per-result views.
        let result_data: Vec<ResultData> = results
            .iter()
            .map(|rf| {
                let mut ranked: Vec<Vec<TypeId>> = vec![Vec::new(); entities.len()];
                let mut cells: Vec<Option<CellStat>> = vec![None; types.len()];
                let mut rank_of: Vec<Option<(EntityIdx, usize)>> = vec![None; types.len()];
                // `rf.stats` is already in significance order per entity.
                for stat in &rf.stats {
                    let t = type_idx(&stat.ty);
                    let e = entity_idx(&stat.ty.entity);
                    rank_of[t] = Some((e, ranked[e].len()));
                    ranked[e].push(t);
                    let dom = stat.dominant();
                    let instances = stat.entity_instances;
                    let per_instance = |count: u32| {
                        if instances == 0 {
                            0.0
                        } else {
                            f64::from(count) / f64::from(instances)
                        }
                    };
                    cells[t] = Some(CellStat {
                        value: dom.value.clone(),
                        ratio: per_instance(dom.count),
                        count: dom.count,
                        instances,
                        sig_ratio: per_instance(stat.occurrences),
                    });
                }
                ResultData { label: rf.label.clone(), ranked, cells, rank_of }
            })
            .collect();

        // Differentiability matrix.
        let n = results.len();
        let mut diff = vec![vec![false; types.len()]; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                for (t, ty) in types.iter().enumerate() {
                    let (Some(si), Some(sj)) = (results[i].get(ty), results[j].get(ty)) else {
                        continue;
                    };
                    let d = stats_differ(si, sj, config.threshold_pct);
                    diff[i * n + j][t] = d;
                    diff[j * n + i][t] = d;
                }
            }
        }

        Instance { types, entities, entity_of, results: result_data, config, diff }
    }

    /// Number of results.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Number of interned feature types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Whether results `i` and `j` are differentiable in type `t`
    /// (`false` if either lacks the type — absence means *unknown*, the
    /// paper's NULL-value analogy).
    pub fn differentiable(&self, i: usize, j: usize, t: TypeId) -> bool {
        self.diff[i * self.results.len() + j][t]
    }
}

/// The paper's differentiability test between two stats of the same feature
/// type: is there a feature (type + value) whose occurrence ratios differ by
/// more than `x%` of the smaller one?
///
/// A value present on one side and absent on the other always differentiates
/// (the minimum ratio is 0, so any positive gap exceeds the threshold).
///
/// **Numeric rule**: when both results carry a single numeric value for the
/// type (ratings, prices, years), the *values themselves* are compared with
/// the same `x%`-of-the-smaller test instead of the exact-value histograms.
/// This matches the paper's worked example: the snippets of Figure 1 share
/// `Product:Rating` with values 4.2 and 4.1, yet their DoD is 2 — only
/// `Product:Name` and `Pro:Compact` count — so a 2.4% rating gap must *not*
/// differentiate under the 10% threshold.
pub fn stats_differ(a: &FeatureStat, b: &FeatureStat, threshold_pct: f64) -> bool {
    debug_assert_eq!(a.ty, b.ty);
    if let (Some(na), Some(nb)) = (single_numeric(a), single_numeric(b)) {
        return (na - nb).abs() > (threshold_pct / 100.0) * na.abs().min(nb.abs());
    }
    let mut values: BTreeSet<&str> = BTreeSet::new();
    for vc in &a.values {
        values.insert(&vc.value);
    }
    for vc in &b.values {
        values.insert(&vc.value);
    }
    values.into_iter().any(|v| {
        let pa = a.value_ratio(v);
        let pb = b.value_ratio(v);
        ratios_differ(pa, pb, threshold_pct)
    })
}

/// Threshold comparison of two occurrence ratios.
pub fn ratios_differ(pa: f64, pb: f64, threshold_pct: f64) -> bool {
    (pa - pb).abs() > (threshold_pct / 100.0) * pa.min(pb)
}

/// The stat's value as a number, when the type is single-valued numeric.
fn single_numeric(stat: &FeatureStat) -> Option<f64> {
    if stat.values.len() == 1 {
        stat.values[0].value.trim().parse::<f64>().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_entity::ResultFeatures;

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    fn gps1() -> ResultFeatures {
        ResultFeatures::from_raw(
            "GPS 1",
            [("product".to_string(), 1), ("review".to_string(), 11)],
            [
                (ty("product", "name"), "TomTom Go 630".to_string(), 1),
                (ty("review", "pros:easy_to_read"), "yes".to_string(), 10),
                (ty("review", "pros:compact"), "yes".to_string(), 8),
                (ty("review", "best_use:auto"), "yes".to_string(), 6),
                (ty("review", "pros:large_screen"), "yes".to_string(), 1),
            ],
        )
    }

    fn gps3() -> ResultFeatures {
        ResultFeatures::from_raw(
            "GPS 3",
            [("product".to_string(), 1), ("review".to_string(), 68)],
            [
                (ty("product", "name"), "TomTom Go 730".to_string(), 1),
                (ty("review", "pros:satellites"), "yes".to_string(), 44),
                (ty("review", "pros:easy_to_setup"), "yes".to_string(), 40),
                (ty("review", "pros:compact"), "yes".to_string(), 38),
                (ty("review", "pros:large_screen"), "yes".to_string(), 4),
            ],
        )
    }

    fn instance() -> Instance {
        Instance::build(&[gps1(), gps3()], DfsConfig::default())
    }

    #[test]
    fn interning_covers_union_of_types() {
        let inst = instance();
        assert_eq!(inst.result_count(), 2);
        assert_eq!(inst.entities, ["product", "review"]);
        // name + 6 distinct review types.
        assert_eq!(inst.type_count(), 7);
        // Types grouped by entity because of (entity, attribute) sort.
        for w in inst.entity_of.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn ranked_lists_follow_significance() {
        let inst = instance();
        let review = inst.entities.iter().position(|e| e == "review").unwrap();
        let ranked = &inst.results[0].ranked[review];
        let attrs: Vec<&str> = ranked.iter().map(|&t| inst.types[t].attribute.as_str()).collect();
        assert_eq!(
            attrs,
            ["pros:easy_to_read", "pros:compact", "best_use:auto", "pros:large_screen"]
        );
    }

    #[test]
    fn rank_of_inverts_ranked() {
        let inst = instance();
        for r in &inst.results {
            for (e, list) in r.ranked.iter().enumerate() {
                for (pos, &t) in list.iter().enumerate() {
                    assert_eq!(r.rank_of[t], Some((e, pos)));
                }
            }
        }
    }

    #[test]
    fn cells_hold_dominant_value_and_ratio() {
        let inst = instance();
        let compact = inst.types.iter().position(|t| t.attribute == "pros:compact").unwrap();
        let cell = inst.results[0].cells[compact].as_ref().unwrap();
        assert_eq!(cell.value, "yes");
        assert_eq!(cell.count, 8);
        assert_eq!(cell.instances, 11);
        assert!((cell.ratio - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn differentiability_shared_types() {
        let inst = instance();
        let t = |attr: &str| inst.types.iter().position(|x| x.attribute == attr).unwrap();
        // name: different values → differentiable.
        assert!(inst.differentiable(0, 1, t("name")));
        // compact: 8/11 = 72.7% vs 38/68 = 55.9%; gap 16.8% > 10% of 55.9%.
        assert!(inst.differentiable(0, 1, t("pros:compact")));
        // easy_to_read missing in GPS 3 → NOT differentiable (unknown).
        assert!(!inst.differentiable(0, 1, t("pros:easy_to_read")));
        assert!(!inst.differentiable(0, 1, t("pros:satellites")));
        // large_screen: 1/11 = 9.1% vs 4/68 = 5.9%; gap 3.2% > 10% of 5.9%
        // (0.59%) → differentiable.
        assert!(inst.differentiable(0, 1, t("pros:large_screen")));
        // Symmetry.
        for t in 0..inst.type_count() {
            assert_eq!(inst.differentiable(0, 1, t), inst.differentiable(1, 0, t));
        }
    }

    #[test]
    fn threshold_suppresses_small_gaps() {
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 100)],
            [(ty("e", "x"), "yes".to_string(), 50)],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 100)],
            [(ty("e", "x"), "yes".to_string(), 52)],
        );
        // 50% vs 52%: gap 2% < 10% of 50% → not differentiable at x = 10.
        let inst = Instance::build(
            &[a.clone(), b.clone()],
            DfsConfig { size_bound: 5, threshold_pct: 10.0 },
        );
        assert!(!inst.differentiable(0, 1, 0));
        // At x = 1 the same gap differentiates.
        let inst = Instance::build(&[a, b], DfsConfig { size_bound: 5, threshold_pct: 1.0 });
        assert!(inst.differentiable(0, 1, 0));
    }

    #[test]
    fn numeric_values_compared_by_magnitude() {
        let mk = |label: &str, rating: &str| {
            ResultFeatures::from_raw(
                label,
                [("p".to_string(), 1)],
                [(ty("p", "rating"), rating.to_string(), 1)],
            )
        };
        // 4.2 vs 4.1: 2.4% gap < 10% of 4.1 → NOT differentiable (the paper's
        // Figure 1 snippets).
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "4.1")], DfsConfig::default());
        assert!(!inst.differentiable(0, 1, 0));
        // 4.2 vs 2.0: 110% gap → differentiable.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "2.0")], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
        // Numeric vs non-numeric falls back to the categorical rule.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "n/a")], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
        // Equal numbers never differentiate.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "4.2")], DfsConfig::default());
        assert!(!inst.differentiable(0, 1, 0));
    }

    #[test]
    fn value_present_vs_absent_differentiates() {
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 10)],
            [(ty("e", "x"), "yes".to_string(), 5)],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 10)],
            [(ty("e", "x"), "no".to_string(), 5)],
        );
        let inst = Instance::build(&[a, b], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
    }

    #[test]
    fn identical_results_never_differentiate() {
        let inst = Instance::build(&[gps1(), gps1()], DfsConfig::default());
        for t in 0..inst.type_count() {
            assert!(!inst.differentiable(0, 1, t));
        }
    }

    #[test]
    fn ratios_differ_edge_cases() {
        assert!(!ratios_differ(0.5, 0.5, 10.0));
        assert!(ratios_differ(0.5, 0.0, 10.0));
        assert!(ratios_differ(0.0, 0.001, 10.0));
        assert!(!ratios_differ(0.0, 0.0, 10.0));
        // Exactly at the threshold: NOT differentiable (strict inequality).
        // 0.75 − 0.5 = 0.25 = 50% of 0.5; all values exact in binary.
        assert!(!ratios_differ(0.75, 0.5, 50.0));
        assert!(ratios_differ(0.765625, 0.5, 50.0));
    }

    #[test]
    #[should_panic(expected = "cannot compare zero results")]
    fn empty_input_panics() {
        Instance::build(&[], DfsConfig::default());
    }

    #[test]
    fn single_result_instance_is_fine() {
        let inst = Instance::build(&[gps1()], DfsConfig::default());
        assert_eq!(inst.result_count(), 1);
        assert_eq!(inst.type_count(), 5);
    }
}
