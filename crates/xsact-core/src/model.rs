//! The comparison instance: an interned, preprocessed view of the results
//! being compared.
//!
//! [`Instance::build`] takes the per-result feature statistics produced by
//! `xsact-entity` and computes everything the DFS algorithms need:
//!
//! * an interned universe of feature types and entities,
//! * per result and entity, the types in **significance order** (Desideratum
//!   2: a valid DFS takes a prefix of this ranking),
//! * the **differentiability matrix**: for every pair of results and every
//!   shared feature type, whether the occurrence ratios differ by more than
//!   the threshold `x%` of the smaller one (paper §2) — stored as one flat
//!   `u64` bit arena with `⌈m/64⌉` words per `(i, j)` row, so the DoD
//!   kernels in [`crate::dod`] are AND + popcount loops,
//! * per result and type, the *potential* (how many other results are
//!   differentiable on the type), precomputed once since it never depends
//!   on what the DFSs select,
//! * per result and type, the display cell for the comparison table.

use crate::bits;
use std::collections::BTreeSet;
use xsact_entity::{FeatureStat, FeatureType, ResultFeatures};

/// Index of a feature type in [`Instance::types`].
pub type TypeId = usize;
/// Index of an entity in [`Instance::entities`].
pub type EntityIdx = usize;

/// Tunables of DFS construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Maximum number of features per DFS — the paper's `L` (Desideratum 1).
    pub size_bound: usize,
    /// Differentiability threshold `x` in percent (paper: "empirically set
    /// to 10% in our system").
    pub threshold_pct: f64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { size_bound: 10, threshold_pct: 10.0 }
    }
}

/// The table cell of one feature type within one result.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStat {
    /// The dominant value of the type in this result.
    pub value: String,
    /// Occurrence ratio of the dominant value (`count / entity_instances`).
    pub ratio: f64,
    /// Occurrence count of the dominant value.
    pub count: u32,
    /// Number of instances of the owning entity in this result.
    pub instances: u32,
    /// Significance ratio of the whole type (`occurrences /
    /// entity_instances`) — what snippet generation ranks by.
    pub sig_ratio: f64,
}

/// Preprocessed view of one result.
#[derive(Debug, Clone)]
pub struct ResultData {
    /// Display label.
    pub label: String,
    /// Per entity, the result's feature types in significance order.
    pub ranked: Vec<Vec<TypeId>>,
    /// Per type, the display cell (`None` when the result lacks the type).
    pub cells: Vec<Option<CellStat>>,
    /// Per type, its `(entity, rank)` position within this result.
    pub rank_of: Vec<Option<(EntityIdx, usize)>>,
    /// Precomputed number of present types (see [`ResultData::type_count`]).
    type_count: usize,
}

impl ResultData {
    /// Whether the result has the feature type at all.
    pub fn has_type(&self, t: TypeId) -> bool {
        self.cells[t].is_some()
    }

    /// Total number of feature types in this result (the paper's `m`).
    /// Precomputed at [`Instance::build`]; the exhaustive oracle reads it
    /// inside its combination-count estimate.
    pub fn type_count(&self) -> usize {
        self.type_count
    }
}

/// A fully preprocessed comparison instance over `n` results.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The interned feature types, sorted by (entity, attribute).
    pub types: Vec<FeatureType>,
    /// The interned entity paths, sorted.
    pub entities: Vec<String>,
    /// Entity of each type.
    pub entity_of: Vec<EntityIdx>,
    /// The preprocessed results.
    pub results: Vec<ResultData>,
    /// Configuration used to build the instance.
    pub config: DfsConfig,
    /// Words per bitset row (`⌈type_count/64⌉`).
    words: usize,
    /// The differentiability matrix as a flat bit arena: row `(i, j)` is
    /// `diff[(i*n + j)*words ..][..words]`, bit `t` set iff results `i` and
    /// `j` are differentiable in type `t`. Symmetric; `false` whenever
    /// either result lacks `t`.
    diff: Vec<u64>,
    /// Per result and type, the *potential*: how many other results are
    /// differentiable from it on the type. Flat `n × m`; independent of any
    /// DFS selection, so computed once here.
    pot: Vec<u32>,
}

/// Per-(result, type) comparison-ready view of a [`FeatureStat`], computed
/// once per stat at build time so the `O(n² · m)` matrix fill never touches
/// strings beyond the pre-sorted value lists.
struct PreStat<'a> {
    /// The single numeric value, when the type is single-valued numeric.
    numeric: Option<f64>,
    /// Instance count of the owning entity.
    instances: u32,
    /// `(value, count)` pairs sorted by value — merge-walk ready.
    values: Vec<(&'a str, u32)>,
}

impl<'a> PreStat<'a> {
    fn new(stat: &'a FeatureStat) -> Self {
        let mut values: Vec<(&'a str, u32)> =
            stat.values.iter().map(|vc| (vc.value.as_str(), vc.count)).collect();
        values.sort_unstable_by(|a, b| a.0.cmp(b.0));
        PreStat { numeric: single_numeric(stat), instances: stat.entity_instances, values }
    }

    /// Occurrence ratio of a value count (mirrors
    /// `FeatureStat::value_ratio` exactly, including the zero-instance
    /// rule).
    #[inline]
    fn ratio(&self, count: u32) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            f64::from(count) / f64::from(self.instances)
        }
    }
}

impl Instance {
    /// Preprocesses a set of results for comparison.
    ///
    /// # Panics
    /// Panics if `results` is empty — there is nothing to compare.
    pub fn build(results: &[ResultFeatures], config: DfsConfig) -> Self {
        assert!(!results.is_empty(), "cannot compare zero results");

        // Intern entities and types over the union of all results.
        let mut entity_set: BTreeSet<&str> = BTreeSet::new();
        let mut type_set: BTreeSet<&FeatureType> = BTreeSet::new();
        for rf in results {
            for stat in &rf.stats {
                entity_set.insert(stat.ty.entity.as_str());
                type_set.insert(&stat.ty);
            }
        }
        let entities: Vec<String> = entity_set.into_iter().map(str::to_owned).collect();
        let types: Vec<FeatureType> = type_set.into_iter().cloned().collect();
        let entity_idx =
            |path: &str| entities.binary_search_by(|e| e.as_str().cmp(path)).expect("interned");
        let entity_of: Vec<EntityIdx> = types.iter().map(|t| entity_idx(&t.entity)).collect();
        let type_idx = |ty: &FeatureType| types.binary_search(ty).expect("interned");

        // Per-result views, plus each result's stats indexed by interned
        // `TypeId` (one binary search per stat here — the matrix fill below
        // then never looks a type up by string again).
        let mut pre_stats: Vec<Vec<Option<PreStat<'_>>>> = Vec::with_capacity(results.len());
        let result_data: Vec<ResultData> = results
            .iter()
            .map(|rf| {
                let mut ranked: Vec<Vec<TypeId>> = vec![Vec::new(); entities.len()];
                let mut cells: Vec<Option<CellStat>> = vec![None; types.len()];
                let mut rank_of: Vec<Option<(EntityIdx, usize)>> = vec![None; types.len()];
                let mut pre: Vec<Option<PreStat<'_>>> = (0..types.len()).map(|_| None).collect();
                // `rf.stats` is already in significance order per entity.
                for stat in &rf.stats {
                    let t = type_idx(&stat.ty);
                    let e = entity_idx(&stat.ty.entity);
                    rank_of[t] = Some((e, ranked[e].len()));
                    ranked[e].push(t);
                    pre[t] = Some(PreStat::new(stat));
                    let dom = stat.dominant();
                    let instances = stat.entity_instances;
                    let per_instance = |count: u32| {
                        if instances == 0 {
                            0.0
                        } else {
                            f64::from(count) / f64::from(instances)
                        }
                    };
                    cells[t] = Some(CellStat {
                        value: dom.value.clone(),
                        ratio: per_instance(dom.count),
                        count: dom.count,
                        instances,
                        sig_ratio: per_instance(stat.occurrences),
                    });
                }
                let type_count = cells.iter().filter(|c| c.is_some()).count();
                pre_stats.push(pre);
                ResultData { label: rf.label.clone(), ranked, cells, rank_of, type_count }
            })
            .collect();

        // Differentiability matrix: one flat bit arena, filled by dense
        // iteration over the indexed stats.
        let n = results.len();
        let m = types.len();
        let words = bits::words_for(m);
        let mut diff = vec![0u64; n * n * words];
        for i in 0..n {
            for j in (i + 1)..n {
                for (t, slot) in pre_stats[i].iter().zip(&pre_stats[j]).enumerate() {
                    let (Some(si), Some(sj)) = slot else {
                        continue;
                    };
                    if pre_stats_differ(si, sj, config.threshold_pct) {
                        bits::set_bit(&mut diff[(i * n + j) * words..][..words], t);
                        bits::set_bit(&mut diff[(j * n + i) * words..][..words], t);
                    }
                }
            }
        }

        // Potentials: per (result, type), the number of other results
        // differentiable on the type — a column sum over the bit rows.
        let mut pot = vec![0u32; n * m];
        for i in 0..n {
            let row = &mut pot[i * m..][..m];
            for j in 0..n {
                if j == i {
                    continue;
                }
                bits::for_each_bit(&diff[(i * n + j) * words..][..words], |t| row[t] += 1);
            }
        }

        Instance { types, entities, entity_of, results: result_data, config, words, diff, pot }
    }

    /// Number of results.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Number of interned feature types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Words per bitset row over the type universe (`⌈m/64⌉`) — the row
    /// width of [`Instance::diff_row`] and of `DfsSet` selection masks.
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// The differentiability row of result pair `(i, j)` as a word slice —
    /// bit `t` set iff the pair is differentiable in type `t`.
    pub fn diff_row(&self, i: usize, j: usize) -> &[u64] {
        &self.diff[(i * self.results.len() + j) * self.words..][..self.words]
    }

    /// Whether results `i` and `j` are differentiable in type `t`
    /// (`false` if either lacks the type — absence means *unknown*, the
    /// paper's NULL-value analogy).
    pub fn differentiable(&self, i: usize, j: usize, t: TypeId) -> bool {
        bits::test_bit(self.diff_row(i, j), t)
    }

    /// The precomputed potentials of result `i`, one per type: how many
    /// other results are differentiable from `i` on the type. See
    /// [`crate::dod::type_potentials`] for the role potentials play in the
    /// local searches.
    pub fn potentials(&self, i: usize) -> &[u32] {
        &self.pot[i * self.types.len()..][..self.types.len()]
    }

    /// Heap bytes of the differentiability bit matrix (`n² · ⌈m/64⌉` words)
    /// — reported by the bench sweeps to make the memory win visible.
    pub fn bitmatrix_bytes(&self) -> usize {
        self.diff.len() * std::mem::size_of::<u64>()
    }
}

/// The paper's differentiability test between two stats of the same feature
/// type: is there a feature (type + value) whose occurrence ratios differ by
/// more than `x%` of the smaller one?
///
/// A value present on one side and absent on the other always differentiates
/// (the minimum ratio is 0, so any positive gap exceeds the threshold).
///
/// **Numeric rule**: when both results carry a single numeric value for the
/// type (ratings, prices, years), the *values themselves* are compared with
/// the same `x%`-of-the-smaller test instead of the exact-value histograms.
/// This matches the paper's worked example: the snippets of Figure 1 share
/// `Product:Rating` with values 4.2 and 4.1, yet their DoD is 2 — only
/// `Product:Name` and `Pro:Compact` count — so a 2.4% rating gap must *not*
/// differentiate under the 10% threshold.
pub fn stats_differ(a: &FeatureStat, b: &FeatureStat, threshold_pct: f64) -> bool {
    debug_assert_eq!(a.ty, b.ty);
    pre_stats_differ(&PreStat::new(a), &PreStat::new(b), threshold_pct)
}

/// [`stats_differ`] over prebuilt [`PreStat`]s: the numeric rule, then a
/// merge-walk over the two value lists (pre-sorted by value) in place of the
/// seed's per-pair `BTreeSet<&str>` union.
fn pre_stats_differ(a: &PreStat<'_>, b: &PreStat<'_>, threshold_pct: f64) -> bool {
    if let (Some(na), Some(nb)) = (a.numeric, b.numeric) {
        return (na - nb).abs() > (threshold_pct / 100.0) * na.abs().min(nb.abs());
    }
    let (mut i, mut j) = (0, 0);
    while i < a.values.len() || j < b.values.len() {
        let (pa, pb) = match (a.values.get(i), b.values.get(j)) {
            (Some(&(va, ca)), Some(&(vb, cb))) => match va.cmp(vb) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (a.ratio(ca), b.ratio(cb))
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    (a.ratio(ca), 0.0)
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    (0.0, b.ratio(cb))
                }
            },
            (Some(&(_, ca)), None) => {
                i += 1;
                (a.ratio(ca), 0.0)
            }
            (None, Some(&(_, cb))) => {
                j += 1;
                (0.0, b.ratio(cb))
            }
            (None, None) => unreachable!("loop condition"),
        };
        if ratios_differ(pa, pb, threshold_pct) {
            return true;
        }
    }
    false
}

/// Threshold comparison of two occurrence ratios.
pub fn ratios_differ(pa: f64, pb: f64, threshold_pct: f64) -> bool {
    (pa - pb).abs() > (threshold_pct / 100.0) * pa.min(pb)
}

/// The stat's value as a number, when the type is single-valued numeric.
fn single_numeric(stat: &FeatureStat) -> Option<f64> {
    if stat.values.len() == 1 {
        stat.values[0].value.trim().parse::<f64>().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_entity::ResultFeatures;

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    fn gps1() -> ResultFeatures {
        ResultFeatures::from_raw(
            "GPS 1",
            [("product".to_string(), 1), ("review".to_string(), 11)],
            [
                (ty("product", "name"), "TomTom Go 630".to_string(), 1),
                (ty("review", "pros:easy_to_read"), "yes".to_string(), 10),
                (ty("review", "pros:compact"), "yes".to_string(), 8),
                (ty("review", "best_use:auto"), "yes".to_string(), 6),
                (ty("review", "pros:large_screen"), "yes".to_string(), 1),
            ],
        )
    }

    fn gps3() -> ResultFeatures {
        ResultFeatures::from_raw(
            "GPS 3",
            [("product".to_string(), 1), ("review".to_string(), 68)],
            [
                (ty("product", "name"), "TomTom Go 730".to_string(), 1),
                (ty("review", "pros:satellites"), "yes".to_string(), 44),
                (ty("review", "pros:easy_to_setup"), "yes".to_string(), 40),
                (ty("review", "pros:compact"), "yes".to_string(), 38),
                (ty("review", "pros:large_screen"), "yes".to_string(), 4),
            ],
        )
    }

    fn instance() -> Instance {
        Instance::build(&[gps1(), gps3()], DfsConfig::default())
    }

    #[test]
    fn interning_covers_union_of_types() {
        let inst = instance();
        assert_eq!(inst.result_count(), 2);
        assert_eq!(inst.entities, ["product", "review"]);
        // name + 6 distinct review types.
        assert_eq!(inst.type_count(), 7);
        // Types grouped by entity because of (entity, attribute) sort.
        for w in inst.entity_of.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn ranked_lists_follow_significance() {
        let inst = instance();
        let review = inst.entities.iter().position(|e| e == "review").unwrap();
        let ranked = &inst.results[0].ranked[review];
        let attrs: Vec<&str> = ranked.iter().map(|&t| inst.types[t].attribute.as_str()).collect();
        assert_eq!(
            attrs,
            ["pros:easy_to_read", "pros:compact", "best_use:auto", "pros:large_screen"]
        );
    }

    #[test]
    fn rank_of_inverts_ranked() {
        let inst = instance();
        for r in &inst.results {
            for (e, list) in r.ranked.iter().enumerate() {
                for (pos, &t) in list.iter().enumerate() {
                    assert_eq!(r.rank_of[t], Some((e, pos)));
                }
            }
        }
    }

    #[test]
    fn type_count_is_precomputed_per_result() {
        let inst = instance();
        for r in &inst.results {
            assert_eq!(r.type_count(), r.rank_of.iter().filter(|x| x.is_some()).count());
            assert_eq!(r.type_count(), r.ranked.iter().map(Vec::len).sum::<usize>());
        }
        assert_eq!(inst.results[0].type_count(), 5);
        assert_eq!(inst.results[1].type_count(), 5);
    }

    #[test]
    fn cells_hold_dominant_value_and_ratio() {
        let inst = instance();
        let compact = inst.types.iter().position(|t| t.attribute == "pros:compact").unwrap();
        let cell = inst.results[0].cells[compact].as_ref().unwrap();
        assert_eq!(cell.value, "yes");
        assert_eq!(cell.count, 8);
        assert_eq!(cell.instances, 11);
        assert!((cell.ratio - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn differentiability_shared_types() {
        let inst = instance();
        let t = |attr: &str| inst.types.iter().position(|x| x.attribute == attr).unwrap();
        // name: different values → differentiable.
        assert!(inst.differentiable(0, 1, t("name")));
        // compact: 8/11 = 72.7% vs 38/68 = 55.9%; gap 16.8% > 10% of 55.9%.
        assert!(inst.differentiable(0, 1, t("pros:compact")));
        // easy_to_read missing in GPS 3 → NOT differentiable (unknown).
        assert!(!inst.differentiable(0, 1, t("pros:easy_to_read")));
        assert!(!inst.differentiable(0, 1, t("pros:satellites")));
        // large_screen: 1/11 = 9.1% vs 4/68 = 5.9%; gap 3.2% > 10% of 5.9%
        // (0.59%) → differentiable.
        assert!(inst.differentiable(0, 1, t("pros:large_screen")));
        // Symmetry.
        for t in 0..inst.type_count() {
            assert_eq!(inst.differentiable(0, 1, t), inst.differentiable(1, 0, t));
        }
    }

    #[test]
    fn diff_rows_expose_the_bit_view() {
        let inst = instance();
        assert_eq!(inst.words_per_row(), 1);
        assert_eq!(inst.bitmatrix_bytes(), 2 * 2 * 8);
        for t in 0..inst.type_count() {
            assert_eq!(crate::bits::test_bit(inst.diff_row(0, 1), t), inst.differentiable(0, 1, t));
        }
        // The self row is all zeroes (never filled).
        assert!(inst.diff_row(0, 0).iter().all(|&w| w == 0));
    }

    #[test]
    fn potentials_are_column_sums_of_the_matrix() {
        let inst = Instance::build(&[gps1(), gps3(), gps1()], DfsConfig::default());
        let n = inst.result_count();
        for i in 0..n {
            for (t, &p) in inst.potentials(i).iter().enumerate() {
                let expected =
                    (0..n).filter(|&j| j != i && inst.differentiable(i, j, t)).count() as u32;
                assert_eq!(p, expected, "result {i} type {t}");
            }
        }
    }

    #[test]
    fn threshold_suppresses_small_gaps() {
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 100)],
            [(ty("e", "x"), "yes".to_string(), 50)],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 100)],
            [(ty("e", "x"), "yes".to_string(), 52)],
        );
        // 50% vs 52%: gap 2% < 10% of 50% → not differentiable at x = 10.
        let inst = Instance::build(
            &[a.clone(), b.clone()],
            DfsConfig { size_bound: 5, threshold_pct: 10.0 },
        );
        assert!(!inst.differentiable(0, 1, 0));
        // At x = 1 the same gap differentiates.
        let inst = Instance::build(&[a, b], DfsConfig { size_bound: 5, threshold_pct: 1.0 });
        assert!(inst.differentiable(0, 1, 0));
    }

    #[test]
    fn numeric_values_compared_by_magnitude() {
        let mk = |label: &str, rating: &str| {
            ResultFeatures::from_raw(
                label,
                [("p".to_string(), 1)],
                [(ty("p", "rating"), rating.to_string(), 1)],
            )
        };
        // 4.2 vs 4.1: 2.4% gap < 10% of 4.1 → NOT differentiable (the paper's
        // Figure 1 snippets).
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "4.1")], DfsConfig::default());
        assert!(!inst.differentiable(0, 1, 0));
        // 4.2 vs 2.0: 110% gap → differentiable.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "2.0")], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
        // Numeric vs non-numeric falls back to the categorical rule.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "n/a")], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
        // Equal numbers never differentiate.
        let inst = Instance::build(&[mk("a", "4.2"), mk("b", "4.2")], DfsConfig::default());
        assert!(!inst.differentiable(0, 1, 0));
    }

    #[test]
    fn value_present_vs_absent_differentiates() {
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 10)],
            [(ty("e", "x"), "yes".to_string(), 5)],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 10)],
            [(ty("e", "x"), "no".to_string(), 5)],
        );
        let inst = Instance::build(&[a, b], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
    }

    #[test]
    fn merge_walk_matches_union_semantics_on_histograms() {
        // Multi-valued types: the merge-walk must test every value of the
        // union exactly once, including values present on only one side.
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 10)],
            [
                (ty("e", "x"), "red".to_string(), 4),
                (ty("e", "x"), "green".to_string(), 4),
                (ty("e", "x"), "blue".to_string(), 2),
            ],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 10)],
            [
                (ty("e", "x"), "red".to_string(), 4),
                (ty("e", "x"), "green".to_string(), 4),
                (ty("e", "x"), "violet".to_string(), 2),
            ],
        );
        // Identical on red/green; blue vs violet are one-sided → differ.
        let inst = Instance::build(&[a.clone(), b], DfsConfig::default());
        assert!(inst.differentiable(0, 1, 0));
        // Against itself the union collapses and nothing differs.
        let inst = Instance::build(&[a.clone(), a], DfsConfig::default());
        assert!(!inst.differentiable(0, 1, 0));
    }

    #[test]
    fn stats_differ_is_exposed_and_symmetric() {
        let a = gps1();
        let b = gps3();
        let compact = ty("review", "pros:compact");
        let sa = a.get(&compact).unwrap();
        let sb = b.get(&compact).unwrap();
        assert!(stats_differ(sa, sb, 10.0));
        assert_eq!(stats_differ(sa, sb, 10.0), stats_differ(sb, sa, 10.0));
        assert!(!stats_differ(sa, sa, 10.0));
    }

    #[test]
    fn identical_results_never_differentiate() {
        let inst = Instance::build(&[gps1(), gps1()], DfsConfig::default());
        for t in 0..inst.type_count() {
            assert!(!inst.differentiable(0, 1, t));
        }
    }

    #[test]
    fn ratios_differ_edge_cases() {
        assert!(!ratios_differ(0.5, 0.5, 10.0));
        assert!(ratios_differ(0.5, 0.0, 10.0));
        assert!(ratios_differ(0.0, 0.001, 10.0));
        assert!(!ratios_differ(0.0, 0.0, 10.0));
        // Exactly at the threshold: NOT differentiable (strict inequality).
        // 0.75 − 0.5 = 0.25 = 50% of 0.5; all values exact in binary.
        assert!(!ratios_differ(0.75, 0.5, 50.0));
        assert!(ratios_differ(0.765625, 0.5, 50.0));
    }

    #[test]
    #[should_panic(expected = "cannot compare zero results")]
    fn empty_input_panics() {
        Instance::build(&[], DfsConfig::default());
    }

    #[test]
    fn single_result_instance_is_fine() {
        let inst = Instance::build(&[gps1()], DfsConfig::default());
        assert_eq!(inst.result_count(), 1);
        assert_eq!(inst.type_count(), 5);
    }
}
