//! XSACT core — the paper's primary contribution.
//!
//! Given a set of structured search results (as feature statistics from
//! `xsact-entity`), generate one **Differentiation Feature Set (DFS)** per
//! result so that, within a size bound `L` and subject to per-result
//! validity, the total **Degree of Differentiation (DoD)** across all result
//! pairs is maximised. The exact problem is NP-hard (paper Theorem 2.1);
//! the crate implements the paper's two local-optimality algorithms plus
//! baselines and an exhaustive oracle:
//!
//! | module | algorithm | guarantee |
//! |--------|-----------|-----------|
//! | [`mod@snippet`] | eXtract-style frequency snippets | none (baseline) |
//! | [`mod@greedy`] | one greedy marginal-gain pass | none (baseline) |
//! | [`mod@single_swap`] | iterated one-feature improvement | single-swap optimal |
//! | [`mod@multi_swap`] | per-result knapsack DP over prefixes | multi-swap optimal |
//! | [`mod@exhaustive`] | full enumeration | global optimum (small inputs) |
//!
//! Entry point: [`Comparison`].

pub mod annealing;
pub mod bits;
pub mod comparison;
pub mod dfs;
pub mod dod;
pub mod exhaustive;
pub mod greedy;
pub mod interestingness;
pub mod model;
pub mod multi_swap;
pub mod single_swap;
pub mod snippet;
pub mod table;

pub use annealing::{anneal, anneal_from, AnnealingConfig};
pub use comparison::{run_algorithm, Algorithm, Comparison, ComparisonOutcome, RunStats};
pub use dfs::{Dfs, DfsSet};
pub use dod::{
    all_type_weights, all_type_weights_into, dod_pair, dod_total, dod_upper_bound, toggle_delta,
    type_potentials, type_weight,
};
pub use exhaustive::{count_valid_dfss, exhaustive};
pub use greedy::greedy_set;
pub use interestingness::{interesting_set, total_interestingness, type_interestingness};
pub use model::{CellStat, DfsConfig, Instance};
pub use multi_swap::{is_multi_swap_optimal, multi_swap, multi_swap_from};
pub use single_swap::{is_single_swap_optimal, single_swap, single_swap_from, SwapStats};
pub use snippet::{snippet_dfs, snippet_set};
pub use table::render_table;
