//! Exhaustive search — the optimality oracle.
//!
//! The DFS construction problem is NP-hard (paper Theorem 2.1), so this
//! module enumerates *every* combination of valid DFSs and keeps the best.
//! Only feasible for small instances; used by property tests to validate
//! the local-search algorithms and by the ablation harness to measure their
//! optimality gap.

use crate::dfs::{Dfs, DfsSet};
use crate::dod::dod_total;
use crate::model::Instance;

/// Enumerates all valid DFSs (per-entity prefix vectors with size ≤ L) of
/// one result.
pub fn enumerate_valid_dfss(inst: &Instance, result: usize) -> Vec<Dfs> {
    let lens: Vec<usize> = inst.results[result].ranked.iter().map(Vec::len).collect();
    let bound = inst.config.size_bound;
    let mut out = Vec::new();
    let mut prefixes = vec![0usize; lens.len()];
    enumerate_rec(&lens, bound, 0, 0, &mut prefixes, &mut out, inst, result);
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec(
    lens: &[usize],
    bound: usize,
    e: usize,
    used: usize,
    prefixes: &mut Vec<usize>,
    out: &mut Vec<Dfs>,
    inst: &Instance,
    result: usize,
) {
    if e == lens.len() {
        out.push(Dfs::from_prefixes(inst, result, prefixes));
        return;
    }
    let max_len = lens[e].min(bound - used);
    for len in 0..=max_len {
        prefixes[e] = len;
        enumerate_rec(lens, bound, e + 1, used + len, prefixes, out, inst, result);
    }
    prefixes[e] = 0;
}

/// Number of valid DFSs of one result — `enumerate_valid_dfss(..).len()`
/// without materialising anything: a counting DP over (entity, budget),
/// with the budget capped by the result's precomputed
/// [`type_count`](crate::model::ResultData::type_count). `None` on `u64`
/// overflow (the instance is certainly too large for brute force).
pub fn count_valid_dfss(inst: &Instance, result: usize) -> Option<u64> {
    let data = &inst.results[result];
    let cap = inst.config.size_bound.min(data.type_count());
    // ways[c] = number of prefix vectors of total size exactly c over the
    // entities processed so far.
    let mut ways = vec![0u64; cap + 1];
    ways[0] = 1;
    for list in &data.ranked {
        let mut next = vec![0u64; cap + 1];
        for (c_prev, &w) in ways.iter().enumerate() {
            if w == 0 {
                continue;
            }
            for len in 0..=list.len().min(cap - c_prev) {
                let slot = &mut next[c_prev + len];
                *slot = slot.checked_add(w)?;
            }
        }
        ways = next;
    }
    ways.iter().try_fold(0u64, |acc, &w| acc.checked_add(w))
}

/// Exhaustively maximises the total DoD over all combinations of valid
/// DFSs.
///
/// Returns `None` when the number of combinations exceeds `limit` (the
/// instance is too large for brute force) — decided by the counting DP
/// *before* any enumeration is materialised; otherwise the optimal set and
/// its DoD. Ties are broken towards the combination enumerated first, then
/// by larger total size (to mirror the local searches' budget-filling rule
/// the comparison only relies on the DoD value, which is unique).
///
/// The branch-and-walk over the combination space is allocation-free per
/// step: one working [`DfsSet`] is advanced odometer-style, replacing only
/// the DFSs whose index digit rolled, and the DoD of each combination is a
/// popcount over the set's selection masks.
pub fn exhaustive(inst: &Instance, limit: u64) -> Option<(DfsSet, u32)> {
    let mut combos: u64 = 1;
    for i in 0..inst.result_count() {
        combos = combos.checked_mul(count_valid_dfss(inst, i)?)?;
        if combos > limit {
            return None;
        }
    }
    let per_result: Vec<Vec<Dfs>> =
        (0..inst.result_count()).map(|i| enumerate_valid_dfss(inst, i)).collect();

    let mut indices = vec![0usize; per_result.len()];
    let mut set =
        DfsSet::from_dfss(inst, per_result.iter().map(|options| options[0].clone()).collect());
    let mut best: Option<(DfsSet, u32)> = None;
    loop {
        let dod = dod_total(inst, &set);
        let better = match &best {
            None => true,
            Some((_, cur)) => dod > *cur,
        };
        if better {
            best = Some((set.clone(), dod));
        }
        // Odometer increment, swapping in only the DFSs whose digit moved.
        let mut pos = 0;
        loop {
            if pos == indices.len() {
                return best;
            }
            indices[pos] += 1;
            if indices[pos] < per_result[pos].len() {
                set.replace(inst, pos, per_result[pos][indices[pos]].clone());
                break;
            }
            indices[pos] = 0;
            set.replace(inst, pos, per_result[pos][0].clone());
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DfsConfig;
    use crate::multi_swap::multi_swap;
    use crate::single_swap::single_swap;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(a: &str) -> FeatureType {
        FeatureType::new("e", a)
    }

    fn small_instance(bound: usize) -> Instance {
        let mk = |label: &str, x: u32, y: u32, z: u32| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10)],
                [
                    (ty("x"), "yes".to_string(), x),
                    (ty("y"), "yes".to_string(), y),
                    (ty("z"), "yes".to_string(), z),
                ],
            )
        };
        Instance::build(
            &[mk("a", 9, 5, 1), mk("b", 9, 2, 6)],
            DfsConfig { size_bound: bound, threshold_pct: 10.0 },
        )
    }

    #[test]
    fn enumeration_counts_prefix_vectors() {
        // One entity with 3 types, bound 2 → prefixes 0, 1, 2 → 3 DFSs.
        let inst = small_instance(2);
        assert_eq!(enumerate_valid_dfss(&inst, 0).len(), 3);
        // Bound ≥ 3 → 4 DFSs.
        let inst = small_instance(5);
        assert_eq!(enumerate_valid_dfss(&inst, 0).len(), 4);
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let inst = small_instance(3);
        let (_, dod) = exhaustive(&inst, 1_000_000).unwrap();
        // x identical; y, z differentiable; both reachable with prefix 3 on
        // both sides.
        assert_eq!(dod, 2);
    }

    #[test]
    fn local_searches_never_beat_exhaustive() {
        for bound in [0, 1, 2, 3] {
            let inst = small_instance(bound);
            let (_, opt) = exhaustive(&inst, 1_000_000).unwrap();
            let (s, _) = single_swap(&inst);
            let (m, _) = multi_swap(&inst);
            assert!(dod_total(&inst, &s) <= opt, "single bound {bound}");
            assert!(dod_total(&inst, &m) <= opt, "multi bound {bound}");
            // On these tiny instances multi-swap actually reaches optimum.
            assert_eq!(dod_total(&inst, &m), opt, "multi gap at bound {bound}");
        }
    }

    #[test]
    fn limit_guard_refuses_large_instances() {
        let inst = small_instance(3);
        assert!(exhaustive(&inst, 1).is_none());
    }

    #[test]
    fn counting_dp_matches_enumeration() {
        for bound in [0, 1, 2, 3, 5] {
            let inst = small_instance(bound);
            for i in 0..inst.result_count() {
                assert_eq!(
                    count_valid_dfss(&inst, i),
                    Some(enumerate_valid_dfss(&inst, i).len() as u64),
                    "result {i} bound {bound}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_respects_validity_and_bound() {
        let inst = small_instance(2);
        let (set, _) = exhaustive(&inst, 1_000_000).unwrap();
        assert!(set.all_valid(&inst));
    }
}
