//! The snippet baseline — a reproduction of what eXtract-style result
//! snippets select (reference \[2\] of the paper).
//!
//! A snippet shows the most significant information of a *single* result:
//! the features with the highest occurrence ratios, regardless of what any
//! other result contains. The paper's motivating observation (Figure 1) is
//! that such snippets are poor for comparison: each result highlights
//! different feature types, so few types are shared and the DoD is low.
//!
//! Snippet DFSs are also the *initial solution* of the single-swap and
//! multi-swap algorithms — they are valid by construction (within each
//! entity, picking the top types by ratio picks a prefix of the
//! significance ranking).

use crate::dfs::{Dfs, DfsSet};
use crate::model::Instance;

/// The snippet DFS of one result: up to `bound` features chosen greedily by
/// significance ratio across entities, respecting per-entity prefix order.
pub fn snippet_dfs(inst: &Instance, result: usize, bound: usize) -> Dfs {
    let data = &inst.results[result];
    let mut dfs = Dfs::empty(inst.entities.len());
    while dfs.size() < bound {
        // The candidate of each entity is its next unselected ranked type;
        // take the one with the highest significance ratio.
        let mut best: Option<(f64, usize)> = None;
        for e in 0..inst.entities.len() {
            let Some(t) = dfs.next_type(inst, result, e) else { continue };
            let ratio = data.cells[t].as_ref().expect("ranked type has a cell").sig_ratio;
            // Strict `>` keeps the earliest entity on ties, making snippets
            // deterministic.
            if best.is_none_or(|(r, _)| ratio > r) {
                best = Some((ratio, e));
            }
        }
        match best {
            Some((_, e)) => {
                dfs.grow(inst, result, e);
            }
            None => break, // every type already selected
        }
    }
    debug_assert!(dfs.is_consistent(inst, result));
    dfs
}

/// Snippet DFSs for every result, each bounded by the instance's `L`.
pub fn snippet_set(inst: &Instance) -> DfsSet {
    let bound = inst.config.size_bound;
    let dfss = (0..inst.result_count()).map(|i| snippet_dfs(inst, i, bound)).collect();
    DfsSet::from_dfss(inst, dfss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    /// GPS 1 of the paper's Figure 1.
    fn gps1() -> ResultFeatures {
        ResultFeatures::from_raw(
            "GPS 1",
            [("product".to_string(), 1), ("review".to_string(), 11)],
            [
                (ty("product", "name"), "TomTom Go 630".to_string(), 1),
                (ty("product", "rating"), "4.2".to_string(), 1),
                (ty("review", "pros:easy_to_read"), "yes".to_string(), 10),
                (ty("review", "pros:compact"), "yes".to_string(), 8),
                (ty("review", "uses:best_use:auto"), "yes".to_string(), 6),
                (ty("review", "uses:category:casual_user"), "yes".to_string(), 6),
                (ty("review", "pros:large_screen"), "yes".to_string(), 1),
            ],
        )
    }

    fn inst(bound: usize) -> Instance {
        Instance::build(&[gps1()], DfsConfig { size_bound: bound, threshold_pct: 10.0 })
    }

    #[test]
    fn snippet_picks_top_ratios_across_entities() {
        let inst = inst(6);
        let dfs = snippet_dfs(&inst, 0, 6);
        let attrs: Vec<&str> = dfs
            .selected_types(&inst, 0)
            .iter()
            .map(|&t| inst.types[t].attribute.as_str())
            .collect();
        // name & rating (ratio 1.0), then easy_to_read (.91), compact (.73),
        // auto (.55), casual (.55) — exactly the Figure 1 snippet.
        assert!(attrs.contains(&"name"));
        assert!(attrs.contains(&"rating"));
        assert!(attrs.contains(&"pros:easy_to_read"));
        assert!(attrs.contains(&"pros:compact"));
        assert!(attrs.contains(&"uses:best_use:auto"));
        assert!(attrs.contains(&"uses:category:casual_user"));
        assert!(!attrs.contains(&"pros:large_screen"));
        assert_eq!(dfs.size(), 6);
    }

    #[test]
    fn snippet_respects_bound() {
        let inst = inst(3);
        let dfs = snippet_dfs(&inst, 0, 3);
        assert_eq!(dfs.size(), 3);
        assert!(dfs.within(3));
    }

    #[test]
    fn snippet_exhausts_small_results() {
        let inst = inst(100);
        let dfs = snippet_dfs(&inst, 0, 100);
        assert_eq!(dfs.size(), 7); // all types
    }

    #[test]
    fn zero_bound_gives_empty_snippet() {
        let inst = inst(0);
        assert_eq!(snippet_dfs(&inst, 0, 0).size(), 0);
    }

    #[test]
    fn snippet_is_valid_prefix() {
        let inst = inst(4);
        let dfs = snippet_dfs(&inst, 0, 4);
        assert!(dfs.is_consistent(&inst, 0));
        // Within `review`, the selected types must be the top of the
        // significance ranking: easy_to_read, compact (prefix of 2).
        let review = inst.entities.iter().position(|e| e == "review").unwrap();
        assert_eq!(dfs.prefix(review), 2);
    }

    #[test]
    fn snippet_set_covers_all_results() {
        let i2 =
            Instance::build(&[gps1(), gps1()], DfsConfig { size_bound: 5, threshold_pct: 10.0 });
        let set = snippet_set(&i2);
        assert_eq!(set.len(), 2);
        assert!(set.all_valid(&i2));
        assert_eq!(set.dfs(0), set.dfs(1));
    }
}
