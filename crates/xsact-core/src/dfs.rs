//! Differentiation Feature Sets as *prefix vectors*.
//!
//! Desideratum 2 (validity) requires that feature types of one entity enter
//! a DFS in significance order, so a valid DFS is fully described by how
//! many of each entity's top-ranked types it takes — a vector of per-entity
//! prefix lengths. This representation makes validity *structural*: every
//! representable DFS is valid by construction, and the algorithms only have
//! to respect the size bound.
//!
//! [`DfsSet`] additionally maintains one **selection bitmask** per result —
//! a `⌈m/64⌉`-word bitset over the instance's type universe, updated
//! incrementally on every [`grow`](DfsSet::grow) / [`shrink`](DfsSet::shrink)
//! / [`replace`](DfsSet::replace) — which is what the word-parallel DoD
//! kernels in [`crate::dod`] AND against the differentiability rows. The
//! prefix vectors stay the public representation; the masks are a derived,
//! internally-consistent acceleration structure.

use crate::bits;
use crate::model::{EntityIdx, Instance, TypeId};

/// A valid DFS of one result: `prefix[e]` of entity `e`'s ranked types are
/// selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfs {
    prefix: Vec<usize>,
}

impl Dfs {
    /// The empty DFS over `entity_count` entities.
    pub fn empty(entity_count: usize) -> Self {
        Dfs { prefix: vec![0; entity_count] }
    }

    /// Builds a DFS from explicit prefix lengths, clamping each to the
    /// number of types the result actually has for that entity.
    pub fn from_prefixes(inst: &Instance, result: usize, prefixes: &[usize]) -> Self {
        let ranked = &inst.results[result].ranked;
        let prefix = prefixes
            .iter()
            .enumerate()
            .map(|(e, &p)| p.min(ranked.get(e).map_or(0, Vec::len)))
            .collect();
        Dfs { prefix }
    }

    /// Prefix length of entity `e`.
    pub fn prefix(&self, e: EntityIdx) -> usize {
        self.prefix[e]
    }

    /// All prefix lengths.
    pub fn prefixes(&self) -> &[usize] {
        &self.prefix
    }

    /// Number of selected features (= selected types, since a DFS holds one
    /// feature per type — see DESIGN.md "Modeling decisions").
    pub fn size(&self) -> usize {
        self.prefix.iter().sum()
    }

    /// Whether the DFS respects a size bound `L`.
    pub fn within(&self, bound: usize) -> bool {
        self.size() <= bound
    }

    /// Grows entity `e`'s prefix by one. Returns `false` (and changes
    /// nothing) when the result has no further type for that entity.
    pub fn grow(&mut self, inst: &Instance, result: usize, e: EntityIdx) -> bool {
        if self.prefix[e] < inst.results[result].ranked[e].len() {
            self.prefix[e] += 1;
            true
        } else {
            false
        }
    }

    /// Shrinks entity `e`'s prefix by one. Returns `false` when already 0.
    pub fn shrink(&mut self, e: EntityIdx) -> bool {
        if self.prefix[e] > 0 {
            self.prefix[e] -= 1;
            true
        } else {
            false
        }
    }

    /// The type that `grow` on `e` would add, if any.
    pub fn next_type(&self, inst: &Instance, result: usize, e: EntityIdx) -> Option<TypeId> {
        inst.results[result].ranked[e].get(self.prefix[e]).copied()
    }

    /// The type that `shrink` on `e` would remove, if any.
    pub fn last_type(&self, inst: &Instance, result: usize, e: EntityIdx) -> Option<TypeId> {
        if self.prefix[e] == 0 {
            None
        } else {
            Some(inst.results[result].ranked[e][self.prefix[e] - 1])
        }
    }

    /// Whether a type is selected.
    pub fn contains(&self, inst: &Instance, result: usize, t: TypeId) -> bool {
        match inst.results[result].rank_of[t] {
            Some((e, pos)) => pos < self.prefix[e],
            None => false,
        }
    }

    /// The selected types, grouped by entity, each group in significance
    /// order.
    pub fn selected_types(&self, inst: &Instance, result: usize) -> Vec<TypeId> {
        let ranked = &inst.results[result].ranked;
        let mut out = Vec::with_capacity(self.size());
        for (e, &len) in self.prefix.iter().enumerate() {
            out.extend_from_slice(&ranked[e][..len]);
        }
        out
    }

    /// Calls `f` for every selected type, grouped by entity in significance
    /// order — the allocation-free form of
    /// [`selected_types`](Self::selected_types).
    pub fn for_each_selected(&self, inst: &Instance, result: usize, mut f: impl FnMut(TypeId)) {
        let ranked = &inst.results[result].ranked;
        for (e, &len) in self.prefix.iter().enumerate() {
            for &t in &ranked[e][..len] {
                f(t);
            }
        }
    }

    /// A boolean membership mask over the instance's type universe. The
    /// scalar reference form — the hot paths use the word-packed masks
    /// maintained by [`DfsSet`] instead.
    pub fn selection_mask(&self, inst: &Instance, result: usize) -> Vec<bool> {
        let mut mask = vec![false; inst.type_count()];
        for t in self.selected_types(inst, result) {
            mask[t] = true;
        }
        mask
    }

    /// Validity invariant check, used by tests and debug assertions: every
    /// prefix length is within the result's ranked list.
    pub fn is_consistent(&self, inst: &Instance, result: usize) -> bool {
        self.prefix.len() == inst.entities.len()
            && self
                .prefix
                .iter()
                .enumerate()
                .all(|(e, &p)| p <= inst.results[result].ranked[e].len())
    }
}

/// The DFSs of all results under comparison, one per result, plus the
/// per-result selection bitmasks the DoD kernels consume.
///
/// All mutation goes through [`grow`](Self::grow), [`shrink`](Self::shrink)
/// and [`replace`](Self::replace) so the masks can never drift from the
/// prefix vectors; equality and the public representation remain defined by
/// the prefix vectors alone.
#[derive(Debug, Clone)]
pub struct DfsSet {
    dfss: Vec<Dfs>,
    /// Flat `n × words` selection bitmask arena; row `i` has bit `t` set
    /// iff `dfss[i]` selects type `t`.
    masks: Vec<u64>,
    /// Words per mask row (= `inst.words_per_row()` at construction).
    words: usize,
}

impl PartialEq for DfsSet {
    fn eq(&self, other: &Self) -> bool {
        // Masks are derived state: over the same instance, equal prefix
        // vectors imply equal masks.
        self.dfss == other.dfss
    }
}

impl Eq for DfsSet {}

impl DfsSet {
    /// One empty DFS per result.
    pub fn empty(inst: &Instance) -> Self {
        let words = inst.words_per_row();
        DfsSet {
            dfss: vec![Dfs::empty(inst.entities.len()); inst.result_count()],
            masks: vec![0; inst.result_count() * words],
            words,
        }
    }

    /// Wraps pre-built DFSs.
    ///
    /// # Panics
    /// Panics if the number of DFSs differs from the instance's result
    /// count (checked by callers that build per-result).
    pub fn from_dfss(inst: &Instance, dfss: Vec<Dfs>) -> Self {
        assert_eq!(dfss.len(), inst.result_count());
        let words = inst.words_per_row();
        let mut set = DfsSet { dfss, masks: vec![0; inst.result_count() * words], words };
        for i in 0..set.dfss.len() {
            set.rebuild_mask(inst, i);
        }
        set
    }

    /// The DFS of result `i`.
    pub fn dfs(&self, i: usize) -> &Dfs {
        &self.dfss[i]
    }

    /// The selection bitmask of result `i` as a word slice — bit `t` set
    /// iff the DFS selects type `t`.
    pub fn mask(&self, i: usize) -> &[u64] {
        &self.masks[i * self.words..][..self.words]
    }

    /// Grows entity `e`'s prefix of result `i` by one, keeping the mask in
    /// sync. Returns `false` (and changes nothing) when the result has no
    /// further type for that entity.
    pub fn grow(&mut self, inst: &Instance, i: usize, e: EntityIdx) -> bool {
        let Some(t) = self.dfss[i].next_type(inst, i, e) else {
            return false;
        };
        let grown = self.dfss[i].grow(inst, i, e);
        debug_assert!(grown);
        bits::set_bit(&mut self.masks[i * self.words..][..self.words], t);
        true
    }

    /// Shrinks entity `e`'s prefix of result `i` by one, keeping the mask
    /// in sync. Returns `false` when already 0.
    pub fn shrink(&mut self, inst: &Instance, i: usize, e: EntityIdx) -> bool {
        let Some(t) = self.dfss[i].last_type(inst, i, e) else {
            return false;
        };
        let shrunk = self.dfss[i].shrink(e);
        debug_assert!(shrunk);
        bits::clear_bit(&mut self.masks[i * self.words..][..self.words], t);
        true
    }

    /// Replaces the DFS of result `i`, rebuilding its mask row.
    pub fn replace(&mut self, inst: &Instance, i: usize, dfs: Dfs) {
        self.dfss[i] = dfs;
        self.rebuild_mask(inst, i);
    }

    fn rebuild_mask(&mut self, inst: &Instance, i: usize) {
        let row = &mut self.masks[i * self.words..][..self.words];
        row.fill(0);
        let ranked = &inst.results[i].ranked;
        for (e, &len) in self.dfss[i].prefixes().iter().enumerate() {
            for &t in &ranked[e][..len] {
                bits::set_bit(row, t);
            }
        }
    }

    /// Number of DFSs (= results).
    pub fn len(&self) -> usize {
        self.dfss.len()
    }

    /// Whether the set is empty (never true for a built instance).
    pub fn is_empty(&self) -> bool {
        self.dfss.is_empty()
    }

    /// Iterates the DFSs in result order.
    pub fn iter(&self) -> impl Iterator<Item = &Dfs> {
        self.dfss.iter()
    }

    /// All DFSs satisfy the size bound and validity, and (as part of the
    /// same debug-time contract) every mask row agrees with its prefix
    /// vector.
    pub fn all_valid(&self, inst: &Instance) -> bool {
        self.dfss
            .iter()
            .enumerate()
            .all(|(i, d)| d.is_consistent(inst, i) && d.within(inst.config.size_bound))
            && self.masks_consistent(inst)
    }

    /// Whether every incremental mask row equals the mask rebuilt from its
    /// prefix vector — the invariant the annealing debug assertions pin.
    pub fn masks_consistent(&self, inst: &Instance) -> bool {
        (0..self.dfss.len()).all(|i| {
            let mut fresh = vec![0u64; self.words];
            self.dfss[i].for_each_selected(inst, i, |t| bits::set_bit(&mut fresh, t));
            fresh == self.mask(i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    fn inst() -> Instance {
        let a = ResultFeatures::from_raw(
            "A",
            [("p".to_string(), 1), ("r".to_string(), 10)],
            [
                (ty("p", "name"), "A".to_string(), 1),
                (ty("r", "x"), "yes".to_string(), 9),
                (ty("r", "y"), "yes".to_string(), 5),
                (ty("r", "z"), "yes".to_string(), 2),
            ],
        );
        let b = ResultFeatures::from_raw(
            "B",
            [("p".to_string(), 1), ("r".to_string(), 10)],
            [
                (ty("p", "name"), "B".to_string(), 1),
                (ty("r", "x"), "yes".to_string(), 3),
                (ty("r", "w"), "yes".to_string(), 7),
            ],
        );
        Instance::build(&[a, b], DfsConfig { size_bound: 3, threshold_pct: 10.0 })
    }

    #[test]
    fn empty_dfs() {
        let inst = inst();
        let d = Dfs::empty(inst.entities.len());
        assert_eq!(d.size(), 0);
        assert!(d.within(0));
        assert!(d.selected_types(&inst, 0).is_empty());
        assert!(d.is_consistent(&inst, 0));
    }

    #[test]
    fn grow_and_shrink_respect_bounds() {
        let inst = inst();
        let p = inst.entities.iter().position(|e| e == "p").unwrap();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        let mut d = Dfs::empty(inst.entities.len());
        assert!(d.grow(&inst, 0, p));
        assert!(!d.grow(&inst, 0, p)); // result 0 has one `p` type
        assert!(d.grow(&inst, 0, r));
        assert!(d.grow(&inst, 0, r));
        assert!(d.grow(&inst, 0, r));
        assert!(!d.grow(&inst, 0, r)); // exhausted the 3 `r` types
        assert_eq!(d.size(), 4);
        assert!(d.shrink(r));
        assert_eq!(d.size(), 3);
        let mut empty = Dfs::empty(inst.entities.len());
        assert!(!empty.shrink(r));
    }

    #[test]
    fn selected_types_are_prefixes_in_significance_order() {
        let inst = inst();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        let mut d = Dfs::empty(inst.entities.len());
        d.grow(&inst, 0, r);
        d.grow(&inst, 0, r);
        let selected = d.selected_types(&inst, 0);
        let attrs: Vec<&str> = selected.iter().map(|&t| inst.types[t].attribute.as_str()).collect();
        // x (9) then y (5) — never z before y.
        assert_eq!(attrs, ["x", "y"]);
        // The callback form visits the same types in the same order.
        let mut visited = Vec::new();
        d.for_each_selected(&inst, 0, |t| visited.push(t));
        assert_eq!(visited, selected);
    }

    #[test]
    fn contains_matches_mask() {
        let inst = inst();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        let mut d = Dfs::empty(inst.entities.len());
        d.grow(&inst, 0, r);
        let mask = d.selection_mask(&inst, 0);
        for (t, &selected) in mask.iter().enumerate() {
            assert_eq!(selected, d.contains(&inst, 0, t));
        }
    }

    #[test]
    fn next_and_last_type() {
        let inst = inst();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        let mut d = Dfs::empty(inst.entities.len());
        let first = d.next_type(&inst, 0, r).unwrap();
        assert_eq!(inst.types[first].attribute, "x");
        assert_eq!(d.last_type(&inst, 0, r), None);
        d.grow(&inst, 0, r);
        assert_eq!(d.last_type(&inst, 0, r), Some(first));
        let second = d.next_type(&inst, 0, r).unwrap();
        assert_eq!(inst.types[second].attribute, "y");
    }

    #[test]
    fn from_prefixes_clamps() {
        let inst = inst();
        let d = Dfs::from_prefixes(&inst, 1, &[10, 10]);
        // Result 1 has 1 `p` type and 2 `r` types.
        assert_eq!(d.size(), 3);
        assert!(d.is_consistent(&inst, 1));
    }

    #[test]
    fn dfs_set_validity() {
        let inst = inst();
        let mut set = DfsSet::empty(&inst);
        assert!(set.all_valid(&inst));
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        set.grow(&inst, 0, r);
        set.grow(&inst, 0, r);
        set.grow(&inst, 0, r);
        assert!(set.all_valid(&inst)); // size 3 == bound
        let p = inst.entities.iter().position(|e| e == "p").unwrap();
        set.grow(&inst, 0, p);
        assert!(!set.all_valid(&inst)); // size 4 > bound 3
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn set_mutations_keep_masks_in_sync() {
        let inst = inst();
        let p = inst.entities.iter().position(|e| e == "p").unwrap();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        let mut set = DfsSet::empty(&inst);
        assert!(set.mask(0).iter().all(|&w| w == 0));

        assert!(set.grow(&inst, 0, r));
        assert!(set.grow(&inst, 0, p));
        assert!(set.masks_consistent(&inst));
        // The packed mask mirrors the scalar reference mask bit for bit.
        let scalar = set.dfs(0).selection_mask(&inst, 0);
        for (t, &sel) in scalar.iter().enumerate() {
            assert_eq!(crate::bits::test_bit(set.mask(0), t), sel, "type {t}");
        }

        assert!(set.shrink(&inst, 0, r));
        assert!(set.masks_consistent(&inst));
        assert!(!set.shrink(&inst, 0, r), "r prefix already empty");
        assert!(!set.grow(&inst, 0, p), "p exhausted");
        assert!(set.masks_consistent(&inst));

        set.replace(&inst, 0, Dfs::from_prefixes(&inst, 0, &[1, 3]));
        assert!(set.masks_consistent(&inst));
        assert_eq!(crate::bits::and2_count(set.mask(0), set.mask(0)), set.dfs(0).size() as u32);

        // Result 1's mask never moved.
        assert!(set.mask(1).iter().all(|&w| w == 0));
    }

    #[test]
    fn equality_ignores_derived_masks() {
        let inst = inst();
        let a = DfsSet::from_dfss(
            &inst,
            vec![Dfs::from_prefixes(&inst, 0, &[1, 2]), Dfs::empty(inst.entities.len())],
        );
        let mut b = DfsSet::empty(&inst);
        let p = inst.entities.iter().position(|e| e == "p").unwrap();
        let r = inst.entities.iter().position(|e| e == "r").unwrap();
        b.grow(&inst, 0, p);
        b.grow(&inst, 0, r);
        b.grow(&inst, 0, r);
        // Same prefix vectors reached by different routes: equal sets and
        // equal masks.
        assert_eq!(a, b);
        assert_eq!(a.mask(0), b.mask(0));
    }

    #[test]
    fn missing_type_not_contained() {
        let inst = inst();
        // Type `w` exists only in result 1.
        let w = inst.types.iter().position(|t| t.attribute == "w").unwrap();
        let d = Dfs::from_prefixes(&inst, 0, &[1, 3]);
        assert!(!d.contains(&inst, 0, w));
    }
}
