//! Rendering a DFS set as a comparison table (paper Figure 2).
//!
//! Rows are the feature types selected by at least one DFS, grouped by
//! entity; columns are the results. A cell shows the dominant value and, for
//! multi-instance entities, its occurrence percentage — e.g. `yes (73%)`.
//! A `—` cell means the feature type is *not in that result's DFS*: per the
//! paper, absence is "unknown", like a NULL value, and never differentiates.

use crate::dfs::DfsSet;
use crate::model::{Instance, TypeId};
use xsact_entity::label::{display_label, entity_short_name};

/// Renders the comparison table of a DFS set over its instance.
pub fn render_table(inst: &Instance, set: &DfsSet) -> String {
    let rows = table_rows(inst, set);
    let mut header = vec!["feature".to_string()];
    header.extend(inst.results.iter().map(|r| r.label.clone()));

    let mut body: Vec<Vec<String>> = Vec::with_capacity(rows.len());
    for &t in &rows {
        let mut row = Vec::with_capacity(inst.results.len() + 1);
        row.push(row_label(inst, t));
        for (i, result) in inst.results.iter().enumerate() {
            if set.dfs(i).contains(inst, i, t) {
                let cell = result.cells[t].as_ref().expect("selected type has a cell");
                if cell.instances > 1 {
                    row.push(format!("{} ({:.0}%)", cell.value, cell.ratio * 100.0));
                } else {
                    row.push(cell.value.clone());
                }
            } else {
                row.push("—".to_string());
            }
        }
        body.push(row);
    }
    render_grid(&header, &body)
}

/// The row order of the comparison table: selected types grouped by entity,
/// each group sorted by best significance across results (then attribute).
pub fn table_rows(inst: &Instance, set: &DfsSet) -> Vec<TypeId> {
    let mut selected: Vec<bool> = vec![false; inst.type_count()];
    for i in 0..set.len() {
        for t in set.dfs(i).selected_types(inst, i) {
            selected[t] = true;
        }
    }
    let best_sig = |t: TypeId| -> f64 {
        inst.results
            .iter()
            .filter_map(|r| r.cells[t].as_ref())
            .map(|c| c.sig_ratio)
            .fold(0.0, f64::max)
    };
    let mut rows: Vec<TypeId> = (0..inst.type_count()).filter(|&t| selected[t]).collect();
    rows.sort_by(|&a, &b| {
        inst.entity_of[a]
            .cmp(&inst.entity_of[b])
            .then_with(|| best_sig(b).partial_cmp(&best_sig(a)).expect("ratios are finite"))
            .then_with(|| inst.types[a].attribute.cmp(&inst.types[b].attribute))
    });
    rows
}

fn row_label(inst: &Instance, t: TypeId) -> String {
    let ty = &inst.types[t];
    format!("{} · {}", entity_short_name(&ty.entity), display_label(ty))
}

/// Plain ASCII grid with `+---+` borders.
fn render_grid(header: &[String], body: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| display_width(h)).collect();
    for row in body {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(display_width(cell));
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.extend(std::iter::repeat_n('-', w + 2));
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', widths[c] - display_width(cell) + 1));
        }
        out.push_str("|\n");
    };
    rule(&mut out);
    line(&mut out, header);
    rule(&mut out);
    for row in body {
        debug_assert_eq!(row.len(), columns);
        line(&mut out, row);
    }
    rule(&mut out);
    out
}

/// Character count (not bytes) — good enough for the box layout with the
/// `—` dash and accented text the datasets produce.
fn display_width(s: &str) -> usize {
    s.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::Dfs;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn sample() -> (Instance, DfsSet) {
        let a = ResultFeatures::from_raw(
            "GPS 1",
            [("shop/product".to_string(), 1), ("shop/product/reviews/review".to_string(), 11)],
            [
                (FeatureType::new("shop/product", "name"), "TomTom Go 630".to_string(), 1),
                (
                    FeatureType::new("shop/product/reviews/review", "pros:compact"),
                    "yes".to_string(),
                    8,
                ),
            ],
        );
        let b = ResultFeatures::from_raw(
            "GPS 3",
            [("shop/product".to_string(), 1), ("shop/product/reviews/review".to_string(), 68)],
            [
                (FeatureType::new("shop/product", "name"), "TomTom Go 730".to_string(), 1),
                (
                    FeatureType::new("shop/product/reviews/review", "pros:compact"),
                    "yes".to_string(),
                    38,
                ),
            ],
        );
        let inst = Instance::build(&[a, b], DfsConfig { size_bound: 4, threshold_pct: 10.0 });
        let dfss = (0..2).map(|i| Dfs::from_prefixes(&inst, i, &[9, 9])).collect();
        let set = DfsSet::from_dfss(&inst, dfss);
        (inst, set)
    }

    #[test]
    fn table_contains_labels_values_and_percentages() {
        let (inst, set) = sample();
        let table = render_table(&inst, &set);
        assert!(table.contains("GPS 1"));
        assert!(table.contains("GPS 3"));
        assert!(table.contains("product · name"));
        assert!(table.contains("review · pros: compact"));
        assert!(table.contains("TomTom Go 630"));
        // 8 / 11 → 73%, 38 / 68 → 56%.
        assert!(table.contains("yes (73%)"));
        assert!(table.contains("yes (56%)"));
        // Single-instance entities show the bare value, no percentage.
        assert!(!table.contains("TomTom Go 630 (100%)"));
    }

    #[test]
    fn unselected_types_render_as_dash() {
        let (inst, _) = sample();
        // Only result 0 selects anything.
        let dfss =
            vec![Dfs::from_prefixes(&inst, 0, &[9, 9]), Dfs::from_prefixes(&inst, 1, &[0, 0])];
        let set = DfsSet::from_dfss(&inst, dfss);
        let table = render_table(&inst, &set);
        assert!(table.contains('—'));
        assert!(table.contains("TomTom Go 630"));
        assert!(!table.contains("TomTom Go 730"));
    }

    #[test]
    fn rows_grouped_by_entity() {
        let (inst, set) = sample();
        let rows = table_rows(&inst, &set);
        assert_eq!(rows.len(), 2);
        // product (entity index 0) before review (entity index 1).
        assert!(inst.entity_of[rows[0]] <= inst.entity_of[rows[1]]);
    }

    #[test]
    fn grid_is_rectangular() {
        let (inst, set) = sample();
        let table = render_table(&inst, &set);
        let line_widths: Vec<usize> = table.lines().map(|l| l.chars().count()).collect();
        assert!(line_widths.windows(2).all(|w| w[0] == w[1]));
        // 3 rules + header + 2 body rows.
        assert_eq!(table.lines().count(), 6);
    }

    #[test]
    fn empty_selection_renders_header_only() {
        let (inst, _) = sample();
        let set = DfsSet::empty(&inst);
        let table = render_table(&inst, &set);
        assert!(table.contains("feature"));
        assert_eq!(table.lines().count(), 4); // rules + header, no body
    }
}
