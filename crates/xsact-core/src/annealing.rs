//! Simulated annealing over DFS sets — an exploration of the paper's other
//! future-work direction ("better algorithms … for the DFS generation
//! problem").
//!
//! The two local-optimality criteria are deterministic hill climbers and
//! can park in coordination equilibria (see `single_swap.rs`). Annealing
//! explores the same prefix-vector space stochastically: a random
//! grow/shrink/transfer move on a random result's DFS, accepted with the
//! Metropolis rule on the DoD and a geometric cooling schedule. The
//! best-seen set is returned, so quality is monotone in the iteration
//! budget.
//!
//! The RNG is an embedded SplitMix64, keeping `xsact-core` free of runtime
//! dependencies and runs reproducible from the seed.

use crate::dfs::DfsSet;
use crate::dod::dod_total;
use crate::model::Instance;
use crate::multi_swap::multi_swap;

/// Parameters of an annealing run.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Number of proposed moves.
    pub iterations: u32,
    /// Initial temperature (in DoD units).
    pub initial_temperature: f64,
    /// Multiplicative cooling per iteration.
    pub cooling: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig { seed: 2010, iterations: 4_000, initial_temperature: 2.0, cooling: 0.999 }
    }
}

/// SplitMix64 — tiny, fast, statistically fine for annealing proposals.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs simulated annealing from the multi-swap solution and returns the
/// best DFS set seen together with its DoD.
///
/// Starting from multi-swap guarantees the result is never worse than the
/// paper's best algorithm; the stochastic phase then looks for coordinated
/// escapes that deterministic best-response cannot make.
pub fn anneal(inst: &Instance, config: &AnnealingConfig) -> (DfsSet, u32) {
    let (start, _) = multi_swap(inst);
    anneal_from(inst, start, config)
}

/// Annealing from a caller-provided starting set.
///
/// The DoD is maintained **incrementally**: toggling one type in one DFS
/// only affects the pairs involving that result, so a proposal is evaluated
/// in `O(n)` via [`crate::dod::toggle_delta`] on the set's own selection
/// bitmasks (kept in sync by `DfsSet::grow`/`shrink`) — not by re-summing
/// all pairs (`O(n² · m)`). The equivalence of the two evaluations is
/// asserted in tests and (in debug builds) at the end of the run, together
/// with mask/prefix consistency.
pub fn anneal_from(inst: &Instance, start: DfsSet, config: &AnnealingConfig) -> (DfsSet, u32) {
    let n = inst.result_count();
    let entity_count = inst.entities.len();
    let bound = inst.config.size_bound;
    let mut rng = SplitMix64::new(config.seed);

    let mut current = start;
    let mut current_dod = dod_total(inst, &current);
    let mut best = current.clone();
    let mut best_dod = current_dod;
    let mut temperature = config.initial_temperature;

    if entity_count == 0 || bound == 0 {
        return (best, best_dod);
    }

    for _ in 0..config.iterations {
        temperature *= config.cooling;
        let i = rng.below(n);
        // Propose: 0 = grow, 1 = shrink, 2 = transfer. Work out the toggled
        // types first so the DoD delta is an O(n) computation.
        let kind = rng.below(3);
        let dfs = current.dfs(i);
        let (added, removed): (Option<usize>, Option<usize>) = match kind {
            0 => {
                if dfs.size() >= bound {
                    continue;
                }
                (dfs.next_type(inst, i, rng.below(entity_count)), None)
            }
            1 => (None, dfs.last_type(inst, i, rng.below(entity_count))),
            _ => {
                let from = rng.below(entity_count);
                let to = rng.below(entity_count);
                if from == to {
                    continue;
                }
                let removed = dfs.last_type(inst, i, from);
                let added = dfs.next_type(inst, i, to);
                if removed.is_none() || added.is_none() {
                    continue;
                }
                (added, removed)
            }
        };
        if added.is_none() && removed.is_none() {
            continue;
        }
        let delta = added.map_or(0, |t| crate::dod::toggle_delta(inst, &current, i, t)) as i64
            - removed.map_or(0, |t| crate::dod::toggle_delta(inst, &current, i, t)) as i64;
        let accept = delta >= 0
            || (temperature > f64::EPSILON && rng.unit() < (delta as f64 / temperature).exp());
        if !accept {
            continue;
        }
        // Apply the move; DfsSet::shrink/grow keep the selection bitmasks
        // in lock-step with the prefix vectors.
        if let Some(t) = removed {
            let (e, _) = inst.results[i].rank_of[t].expect("removed type is ranked");
            let ok = current.shrink(inst, i, e);
            debug_assert!(ok);
        }
        if let Some(t) = added {
            let (e, _) = inst.results[i].rank_of[t].expect("added type is ranked");
            let ok = current.grow(inst, i, e);
            debug_assert!(ok);
        }
        current_dod = (i64::from(current_dod) + delta) as u32;
        if current_dod > best_dod {
            best = current.clone();
            best_dod = current_dod;
        }
    }
    debug_assert!(best.all_valid(inst));
    debug_assert!(current.masks_consistent(inst), "selection bitmask drifted from prefixes");
    debug_assert_eq!(current_dod, dod_total(inst, &current), "incremental DoD drifted");
    debug_assert_eq!(best_dod, dod_total(inst, &best));
    (best, best_dod)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    fn inst() -> Instance {
        let mk = |label: &str, x: u32, y: u32| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10), ("f".to_string(), 10)],
                [
                    (ty("e", "p"), "yes".to_string(), 9),
                    (ty("e", "x"), "yes".to_string(), x),
                    (ty("f", "y"), "yes".to_string(), y),
                ],
            )
        };
        Instance::build(
            &[mk("a", 8, 2), mk("b", 3, 7)],
            DfsConfig { size_bound: 2, threshold_pct: 10.0 },
        )
    }

    #[test]
    fn never_worse_than_multi_swap() {
        let inst = inst();
        let (multi, _) = multi_swap(&inst);
        let (annealed, dod) = anneal(&inst, &AnnealingConfig::default());
        assert!(dod >= dod_total(&inst, &multi));
        assert!(annealed.all_valid(&inst));
        assert_eq!(dod, dod_total(&inst, &annealed));
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = inst();
        let cfg = AnnealingConfig { iterations: 500, ..Default::default() };
        let (a, da) = anneal(&inst, &cfg);
        let (b, db) = anneal(&inst, &cfg);
        assert_eq!(da, db);
        assert_eq!(a.dfs(0).prefixes(), b.dfs(0).prefixes());
    }

    #[test]
    fn respects_validity_throughout() {
        let inst = inst();
        let cfg = AnnealingConfig { iterations: 2_000, seed: 5, ..Default::default() };
        let (set, _) = anneal(&inst, &cfg);
        assert!(set.all_valid(&inst));
    }

    #[test]
    fn zero_iterations_returns_start() {
        let inst = inst();
        let (multi, _) = multi_swap(&inst);
        let cfg = AnnealingConfig { iterations: 0, ..Default::default() };
        let (set, dod) = anneal_from(&inst, multi.clone(), &cfg);
        assert_eq!(dod, dod_total(&inst, &multi));
        assert_eq!(set.dfs(0).prefixes(), multi.dfs(0).prefixes());
    }

    #[test]
    fn escapes_a_coordination_equilibrium() {
        // The differentiation-blind equilibrium: both snippets hold the
        // identical `loud` type; `quiet` (differentiable, other entity)
        // needs both sides to move.
        let mk = |label: &str, quiet: u32| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10), ("f".to_string(), 10)],
                [
                    (ty("e", "loud"), "yes".to_string(), 9),
                    (ty("f", "quiet"), "yes".to_string(), quiet),
                ],
            )
        };
        let inst = Instance::build(
            &[mk("a", 8), mk("b", 3)],
            DfsConfig { size_bound: 1, threshold_pct: 10.0 },
        );
        let start = crate::snippet::snippet_set(&inst);
        assert_eq!(dod_total(&inst, &start), 0);
        let cfg = AnnealingConfig { iterations: 2_000, seed: 1, ..Default::default() };
        let (_, dod) = anneal_from(&inst, start, &cfg);
        assert_eq!(dod, 1);
    }

    #[test]
    fn incremental_dod_matches_full_recompute() {
        // The debug_asserts inside anneal_from verify the incremental DoD
        // at the end of each run; exercise many seeds and move mixes.
        let inst = inst();
        for seed in 0..20 {
            let cfg =
                AnnealingConfig { seed, iterations: 500, initial_temperature: 3.0, cooling: 0.99 };
            let start = crate::snippet::snippet_set(&inst);
            let (set, dod) = anneal_from(&inst, start, &cfg);
            assert_eq!(dod, dod_total(&inst, &set), "seed {seed}");
            assert!(set.all_valid(&inst), "seed {seed}");
        }
    }

    #[test]
    fn splitmix_is_uniform_enough() {
        let mut rng = SplitMix64::new(42);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.below(4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
        let u = rng.unit();
        assert!((0.0..1.0).contains(&u));
    }
}
