//! The multi-swap optimal algorithm — the paper's dynamic-programming
//! method.
//!
//! A DFS set is **multi-swap optimal** if changing *any number* of features
//! in one DFS (keeping validity and the size bound) cannot increase the
//! degree of differentiation. Checking every feature combination is
//! exponential; the paper proposes a dynamic program. Our reconstruction:
//! with all other DFSs fixed, result `i`'s contribution decomposes into
//! independent per-type weights (see [`crate::dod`]), and a valid DFS is a
//! per-entity prefix vector — so the optimal replacement DFS is a **knapsack
//! over prefix lengths**, solved exactly in `O(entities · L · max_types)`.
//!
//! The DP objective is lexicographic `(ΔDoD, Δpotential, size)`:
//! differentiation first, then the potential tie-breaker that lets DFSs
//! coordinate on not-yet-selected shared types, then DFS size (at equal
//! differentiation a fuller table is more informative). Replacements are
//! accepted only when this key strictly improves, and each acceptance
//! strictly increases the bounded triple `(total DoD, Σ potentials,
//! Σ sizes)` — termination is guaranteed.

use crate::dfs::{Dfs, DfsSet};
use crate::dod::{all_type_weights, all_type_weights_into};
use crate::model::Instance;
use crate::single_swap::SwapStats;
use crate::snippet::snippet_set;

/// Runs the multi-swap algorithm as a multi-start local search and returns
/// the best fixpoint.
///
/// Because multi-swap optimality licenses changing *any number* of features
/// of a DFS at once, the method considers three starting points, each a
/// configuration its own move repertoire could produce:
///
/// 1. the potential-aware greedy construction (multi-feature, coordinated);
/// 2. the plain snippet summaries (the single-swap method's start);
/// 3. the single-swap fixpoint itself — polishing it guarantees
///    `DoD(multi-swap) ≥ DoD(single-swap)` unconditionally, matching the
///    paper's observation that multi-swap "generally outperforms"
///    single-swap.
///
/// Local search over DFS sets has genuinely different basins — e.g. the
/// snippet start can be a *differentiation-blind equilibrium* where a
/// shared differentiable type selected by no one can never enter any DFS
/// (swapping it in always trades away realised weight) — so the restarts
/// earn real quality, not just robustness. The returned counters are those
/// of the winning run.
pub fn multi_swap(inst: &Instance) -> (DfsSet, SwapStats) {
    let mut best: Option<(DfsSet, SwapStats, u32)> = None;
    let starts: [DfsSet; 3] = [
        crate::greedy::greedy_set(inst),
        snippet_set(inst),
        crate::single_swap::single_swap(inst).0,
    ];
    for mut set in starts {
        let stats = multi_swap_from(inst, &mut set);
        let dod = crate::dod::dod_total(inst, &set);
        if best.as_ref().is_none_or(|(_, _, b)| dod > *b) {
            best = Some((set, stats, dod));
        }
    }
    let (set, stats, _) = best.expect("three starts evaluated");
    (set, stats)
}

/// Runs the multi-swap algorithm from a caller-provided initial solution.
/// `set` is updated in place.
///
/// All per-move state (the weight vector, the DP tables, the reconstructed
/// prefix vector) lives in scratch buffers reused across results and
/// rounds, so a best-response evaluation allocates nothing; a `Dfs` is
/// materialised only when a replacement is actually accepted.
pub fn multi_swap_from(inst: &Instance, set: &mut DfsSet) -> SwapStats {
    let mut stats = SwapStats::default();
    let mut weights: Vec<u32> = Vec::new();
    let mut scratch = ResponseScratch::default();
    loop {
        stats.rounds += 1;
        let mut improved = false;
        for i in 0..set.len() {
            all_type_weights_into(inst, set, i, &mut weights);
            let potentials = inst.potentials(i);
            let best_value = optimal_response_into(inst, i, &weights, potentials, &mut scratch);
            let current_value = dfs_value(inst, i, set.dfs(i), &weights, potentials);
            let best_size: usize = scratch.prefixes.iter().sum();
            if (best_value, best_size) > (current_value, set.dfs(i).size()) {
                set.replace(inst, i, Dfs::from_prefixes(inst, i, &scratch.prefixes));
                stats.moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(set.all_valid(inst));
    stats
}

/// Combined per-type value: weight in the high 32 bits, potential in the
/// low — so `u64` comparison is the lexicographic `(weight, potential)`
/// comparison and values stay additive.
fn combined(weight: u32, potential: u32) -> u64 {
    (u64::from(weight) << 32) | u64::from(potential)
}

fn dfs_value(inst: &Instance, i: usize, dfs: &Dfs, weights: &[u32], potentials: &[u32]) -> u64 {
    let mut value = 0;
    dfs.for_each_selected(inst, i, |t| value += combined(weights[t], potentials[t]));
    value
}

/// Reusable buffers of the knapsack-over-prefixes DP — one per search run,
/// refilled per best-response call.
#[derive(Debug, Default)]
pub struct ResponseScratch {
    /// dp[c] = best combined value using exactly c features over the
    /// entities processed so far; `None` marks unreachable budgets.
    dp: Vec<Option<u64>>,
    /// Double buffer for `dp`.
    next: Vec<Option<u64>>,
    /// Flat `entity_count × (cap + 1)`: chosen prefix length of entity `e`
    /// in the best solution of budget `c` after processing entity `e`.
    choice: Vec<usize>,
    /// Prefix sums of one entity's type values in significance order.
    cum: Vec<u64>,
    /// The reconstructed optimal prefix vector — the call's result.
    prefixes: Vec<usize>,
}

/// The optimal valid DFS for result `i` given fixed per-type values — the
/// knapsack-over-prefixes DP. Returns the DFS and its combined value.
pub fn optimal_response(
    inst: &Instance,
    i: usize,
    weights: &[u32],
    potentials: &[u32],
) -> (Dfs, u64) {
    let mut scratch = ResponseScratch::default();
    let value = optimal_response_into(inst, i, weights, potentials, &mut scratch);
    (Dfs::from_prefixes(inst, i, &scratch.prefixes), value)
}

/// [`optimal_response`] into caller-provided scratch: returns the optimal
/// combined value and leaves the optimal prefix vector in
/// `scratch.prefixes`, allocating nothing after the buffers warm up.
fn optimal_response_into(
    inst: &Instance,
    i: usize,
    weights: &[u32],
    potentials: &[u32],
    scratch: &mut ResponseScratch,
) -> u64 {
    let ranked = &inst.results[i].ranked;
    let entity_count = inst.entities.len();
    let cap = inst.config.size_bound.min(inst.results[i].type_count());

    let ResponseScratch { dp, next, choice, cum, prefixes } = scratch;
    dp.clear();
    dp.resize(cap + 1, None);
    dp[0] = Some(0);
    choice.clear();
    choice.resize(entity_count * (cap + 1), 0);

    for (e, list) in ranked.iter().enumerate() {
        // Prefix sums of the entity's type values in significance order.
        cum.clear();
        cum.push(0u64);
        for &t in list {
            cum.push(cum.last().unwrap() + combined(weights[t], potentials[t]));
        }
        next.clear();
        next.resize(cap + 1, None);
        let chosen = &mut choice[e * (cap + 1)..][..cap + 1];
        for (c_prev, &slot) in dp.iter().enumerate() {
            let Some(base) = slot else { continue };
            let max_len = list.len().min(cap - c_prev);
            for (len, &gain) in cum.iter().enumerate().take(max_len + 1) {
                let c = c_prev + len;
                let cand = base + gain;
                if next[c].is_none_or(|v| cand > v) {
                    next[c] = Some(cand);
                    chosen[c] = len;
                }
            }
        }
        std::mem::swap(dp, next);
    }

    // Pick the best (value, size) — larger budgets win ties, so the DFS
    // fills up to the bound when extra features cost nothing.
    let mut best_c = 0;
    let mut best_value = 0u64;
    for (c, v) in dp.iter().enumerate() {
        if let Some(v) = *v {
            if (v, c) >= (best_value, best_c) {
                best_value = v;
                best_c = c;
            }
        }
    }

    // Reconstruct prefix lengths entity by entity, backwards.
    prefixes.clear();
    prefixes.resize(entity_count, 0);
    let mut c = best_c;
    for e in (0..entity_count).rev() {
        let len = choice[e * (cap + 1) + c];
        prefixes[e] = len;
        c -= len;
    }
    debug_assert_eq!(c, 0);
    best_value
}

/// Verifies multi-swap optimality in the paper's sense: for every result,
/// no valid replacement DFS (any number of feature changes) has a higher DoD
/// contribution. Uses a weights-only DP, so the potential tie-breaker plays
/// no role in the check.
pub fn is_multi_swap_optimal(inst: &Instance, set: &DfsSet) -> bool {
    let zero = vec![0u32; inst.type_count()];
    for i in 0..set.len() {
        let weights = all_type_weights(inst, set, i);
        let (_, best) = optimal_response(inst, i, &weights, &zero);
        let current = dfs_value(inst, i, set.dfs(i), &weights, &zero);
        if best > current {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dod::dod_total;
    use crate::model::DfsConfig;
    use crate::single_swap::single_swap;
    use crate::snippet::snippet_set;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(a: &str) -> FeatureType {
        FeatureType::new("e", a)
    }

    fn two_entity_instance(bound: usize) -> Instance {
        let mk = |label: &str, triplets: Vec<(&str, u32)>| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10), ("f".to_string(), 4)],
                triplets
                    .into_iter()
                    .map(|(a, c)| {
                        let (ent, attr) = a.split_once('.').unwrap();
                        (FeatureType::new(ent, attr), "yes".to_string(), c)
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let a = mk("A", vec![("e.p", 9), ("e.q", 8), ("e.r", 2), ("f.u", 4), ("f.v", 1)]);
        let b = mk("B", vec![("e.p", 9), ("e.q", 3), ("e.r", 7), ("f.u", 1), ("f.v", 1)]);
        Instance::build(&[a, b], DfsConfig { size_bound: bound, threshold_pct: 10.0 })
    }

    #[test]
    fn multi_swap_reaches_optimality() {
        for bound in [1, 2, 3, 4, 5] {
            let inst = two_entity_instance(bound);
            let (set, _) = multi_swap(&inst);
            assert!(is_multi_swap_optimal(&inst, &set), "bound {bound}");
            assert!(set.all_valid(&inst));
        }
    }

    #[test]
    fn multi_swap_at_least_as_good_as_single_swap() {
        for bound in [1, 2, 3, 4, 5] {
            let inst = two_entity_instance(bound);
            let (single, _) = single_swap(&inst);
            let (multi, _) = multi_swap(&inst);
            assert!(dod_total(&inst, &multi) >= dod_total(&inst, &single), "bound {bound}");
        }
    }

    #[test]
    fn dp_beats_single_swap_when_coordination_needed() {
        // Validity chains: differentiable types q (rank 2) and r (rank 3) of
        // entity `e` sit behind identical p (rank 1); reaching r requires
        // changing several features at once when the budget forces dropping
        // the `f` entity. Construct bound 3: optimum selects e-prefix 3
        // = {p, q, r} on both sides (q, r differentiable; u also but budget).
        let inst = two_entity_instance(3);
        let (multi, _) = multi_swap(&inst);
        // q: .8 vs .3 differ; r: .2 vs .7 differ; u: 1.0 vs .25 differ;
        // p never. Best DoD with 3 slots: {q, r, u} needs e-prefix 3 (p
        // first) → impossible; so either {p,q,r} → 2, or {p,q}+{u} → 2.
        assert_eq!(dod_total(&inst, &multi), 2);
        assert!(is_multi_swap_optimal(&inst, &multi));
    }

    #[test]
    fn optimal_response_is_a_true_best_response() {
        // Cross-check the DP against brute-force enumeration of all valid
        // prefix vectors.
        let inst = two_entity_instance(3);
        let set = snippet_set(&inst);
        for i in 0..2 {
            let weights = all_type_weights(&inst, &set, i);
            let pots = crate::dod::type_potentials(&inst, i);
            let (_, dp_value) = optimal_response(&inst, i, &weights, &pots);
            // Brute force over prefix pairs.
            let lens: Vec<usize> = inst.results[i].ranked.iter().map(Vec::len).collect();
            let mut best = 0u64;
            for p0 in 0..=lens[0] {
                for p1 in 0..=lens[1] {
                    if p0 + p1 > inst.config.size_bound {
                        continue;
                    }
                    let d = Dfs::from_prefixes(&inst, i, &[p0, p1]);
                    best = best.max(dfs_value(&inst, i, &d, &weights, &pots));
                }
            }
            assert_eq!(dp_value, best, "result {i}");
        }
    }

    #[test]
    fn ties_fill_the_budget() {
        // All weights/potentials zero (identical results): the DP still
        // fills the DFS up to the bound with the most significant types.
        let a = ResultFeatures::from_raw(
            "A",
            [("e".to_string(), 10)],
            [(ty("x"), "yes".to_string(), 5), (ty("y"), "yes".to_string(), 3)],
        );
        let inst =
            Instance::build(&[a.clone(), a], DfsConfig { size_bound: 1, threshold_pct: 10.0 });
        let (set, _) = multi_swap(&inst);
        assert_eq!(set.dfs(0).size(), 1);
        assert_eq!(set.dfs(1).size(), 1);
        assert_eq!(dod_total(&inst, &set), 0);
    }

    #[test]
    fn zero_bound_is_stable() {
        let inst = two_entity_instance(0);
        let (set, stats) = multi_swap(&inst);
        assert_eq!(set.dfs(0).size() + set.dfs(1).size(), 0);
        assert_eq!(stats.moves, 0);
    }

    #[test]
    fn stats_count_rounds_and_moves() {
        let inst = two_entity_instance(4);
        let (_, stats) = multi_swap(&inst);
        assert!(stats.rounds >= 1);
        // The final round never moves.
        assert!(stats.moves <= (stats.rounds - 1).max(1) * 2 + 2);
    }
}
