//! The Degree of Differentiation (DoD) objective — paper Desideratum 3.
//!
//! `DoD(D1, …, Dn) = Σ_{i<j} DoD(Di, Dj)`, where the pairwise DoD is the
//! number of feature types selected in *both* DFSs on which the two results
//! are differentiable. The crucial decomposition the multi-swap DP exploits:
//! with all other DFSs fixed, the contribution of result `i`'s DFS is a sum
//! of independent per-type weights ([`type_weight`]).
//!
//! Every quantity here is a **word-parallel bitset kernel**: the instance
//! stores the differentiability matrix as flat `u64` rows, the [`DfsSet`]
//! maintains per-result selection bitmasks, and a pairwise DoD is literally
//! `popcount(sel_i ∧ sel_j ∧ diff_ij)` — 64 feature types per CPU word.
//! The `_into` variants take caller-provided scratch buffers so the swap
//! loops run allocation-free per move.

use crate::bits;
use crate::dfs::{Dfs, DfsSet};
use crate::model::{Instance, TypeId};

/// Pairwise degree of differentiation of results `i` and `j` under the
/// set's current selections: `popcount(sel_i ∧ sel_j ∧ diff_ij)`.
pub fn dod_pair(inst: &Instance, set: &DfsSet, i: usize, j: usize) -> u32 {
    debug_assert!(i != j);
    bits::and3_count(set.mask(i), set.mask(j), inst.diff_row(i, j))
}

/// Total DoD of a DFS set: the paper's objective function.
pub fn dod_total(inst: &Instance, set: &DfsSet) -> u32 {
    let n = set.len();
    let mut total = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += dod_pair(inst, set, i, j);
        }
    }
    total
}

/// The marginal DoD contribution of selecting type `t` in result `i`'s DFS,
/// with every other DFS fixed: the number of other results whose DFS also
/// selects `t` and is differentiable from `i` on it.
pub fn type_weight(inst: &Instance, set: &DfsSet, i: usize, t: TypeId) -> u32 {
    (0..set.len())
        .filter(|&j| {
            j != i && bits::test_bit(set.mask(j), t) && bits::test_bit(inst.diff_row(i, j), t)
        })
        .count() as u32
}

/// Per-type weights for all of result `i`'s types at once (types the result
/// lacks get weight 0), written into a caller-provided scratch buffer —
/// the allocation-free primitive behind the swap loops. `O(n · m/64)` word
/// operations plus one increment per realised (pair, type).
pub fn all_type_weights_into(inst: &Instance, set: &DfsSet, i: usize, weights: &mut Vec<u32>) {
    weights.clear();
    weights.resize(inst.type_count(), 0);
    for j in 0..set.len() {
        if j == i {
            continue;
        }
        // `diff_ij` is zero wherever result `i` lacks the type, so the
        // has-type guard of the scalar formulation is implied by the AND.
        bits::for_each_and2(set.mask(j), inst.diff_row(i, j), |t| weights[t] += 1);
    }
}

/// Allocating convenience form of [`all_type_weights_into`].
pub fn all_type_weights(inst: &Instance, set: &DfsSet, i: usize) -> Vec<u32> {
    let mut weights = Vec::new();
    all_type_weights_into(inst, set, i, &mut weights);
    weights
}

/// DoD contribution of result `i`'s DFS against all the others — the part of
/// the total that changes when only `Di` changes. Accepts an arbitrary
/// candidate DFS (not necessarily the one in the set).
pub fn result_contribution(inst: &Instance, set: &DfsSet, i: usize, di: &Dfs) -> u32 {
    let mut total = 0;
    di.for_each_selected(inst, i, |t| total += type_weight(inst, set, i, t));
    total
}

/// Marginal DoD change from toggling a single type `t` in result `i`'s
/// DFS: the number of *other* results that select `t` and are
/// differentiable from `i` on it, read off the set's incremental selection
/// masks.
///
/// This is the `O(n)` primitive behind incremental DoD maintenance: adding
/// `t` to `Di` raises the total by exactly this amount, removing it lowers
/// it by the same — no other pair is affected. It *is* the marginal weight
/// of the type, so this delegates to [`type_weight`]; the separate name
/// keeps the annealing call sites self-describing.
pub fn toggle_delta(inst: &Instance, set: &DfsSet, i: usize, t: TypeId) -> u32 {
    type_weight(inst, set, i, t)
}

/// The *potential* of each of result `i`'s types: the number of other
/// results differentiable from `i` on the type — independent of what their
/// DFSs currently select, so [`Instance::build`] precomputes it and this is
/// a copy of [`Instance::potentials`].
///
/// Potentials are the tie-breaker of both local-search algorithms: a move
/// that leaves the DoD unchanged but selects a type other results *could*
/// match is preferred, which lets two DFSs converge on a shared
/// differentiable type neither had selected yet (pure DoD deltas are 0 on
/// both sides of such a type, so a DoD-only search could never pick it up).
pub fn type_potentials(inst: &Instance, i: usize) -> Vec<u32> {
    inst.potentials(i).to_vec()
}

/// An upper bound on the total DoD: every differentiable (pair, type) counts
/// — reachable only if the size bound permits selecting all of them on both
/// sides. Useful for sanity checks and ablation reporting.
pub fn dod_upper_bound(inst: &Instance) -> u32 {
    let n = inst.result_count();
    let mut total = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let row = inst.diff_row(i, j);
            total += bits::and2_count(row, row);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(a: &str) -> FeatureType {
        FeatureType::new("e", a)
    }

    /// Three results over one entity with controlled differentiability:
    /// * type `a`: present everywhere, all pairwise differentiable
    /// * type `b`: present everywhere, identical (never differentiable)
    /// * type `c`: only in results 0 and 1, differentiable
    fn inst() -> Instance {
        let mk = |label: &str, a: u32, c: Option<u32>| {
            let mut triplets =
                vec![(ty("a"), "yes".to_string(), a), (ty("b"), "yes".to_string(), 5)];
            if let Some(c) = c {
                triplets.push((ty("c"), "yes".to_string(), c));
            }
            ResultFeatures::from_raw(label, [("e".to_string(), 10)], triplets)
        };
        Instance::build(
            &[mk("r0", 9, Some(8)), mk("r1", 6, Some(2)), mk("r2", 3, None)],
            DfsConfig { size_bound: 3, threshold_pct: 10.0 },
        )
    }

    fn full_set(inst: &Instance) -> DfsSet {
        let dfss =
            (0..inst.result_count()).map(|i| Dfs::from_prefixes(inst, i, &[usize::MAX])).collect();
        DfsSet::from_dfss(inst, dfss)
    }

    #[test]
    fn pair_dod_counts_shared_differentiable_types() {
        let inst = inst();
        let set = full_set(&inst);
        // (0,1): a and c differentiable, b identical → 2.
        assert_eq!(dod_pair(&inst, &set, 0, 1), 2);
        // (0,2): only a (c missing in r2) → 1.
        assert_eq!(dod_pair(&inst, &set, 0, 2), 1);
        // Symmetric.
        assert_eq!(dod_pair(&inst, &set, 0, 1), dod_pair(&inst, &set, 1, 0));
    }

    #[test]
    fn total_is_sum_over_pairs() {
        let inst = inst();
        let set = full_set(&inst);
        // pairs: (0,1)=2, (0,2)=1, (1,2)=1.
        assert_eq!(dod_total(&inst, &set), 4);
        assert_eq!(dod_upper_bound(&inst), 4);
    }

    #[test]
    fn empty_dfss_have_zero_dod() {
        let inst = inst();
        let set = DfsSet::empty(&inst);
        assert_eq!(dod_total(&inst, &set), 0);
    }

    #[test]
    fn unselected_types_do_not_count() {
        let inst = inst();
        let mut set = full_set(&inst);
        // Restrict r1 to its single most significant type. r1's ranking:
        // a(6), b(5), c(2) → prefix 1 = {a}.
        set.replace(&inst, 1, Dfs::from_prefixes(&inst, 1, &[1]));
        // (0,1): only a shared-and-selected → 1; (0,2) unchanged 1; (1,2): a → 1.
        assert_eq!(dod_total(&inst, &set), 3);
    }

    #[test]
    fn type_weight_counts_other_results() {
        let inst = inst();
        let set = full_set(&inst);
        let a = inst.types.iter().position(|t| t.attribute == "a").unwrap();
        let b = inst.types.iter().position(|t| t.attribute == "b").unwrap();
        let c = inst.types.iter().position(|t| t.attribute == "c").unwrap();
        assert_eq!(type_weight(&inst, &set, 0, a), 2);
        assert_eq!(type_weight(&inst, &set, 0, b), 0);
        assert_eq!(type_weight(&inst, &set, 0, c), 1);
        // r2 lacks c entirely.
        assert_eq!(type_weight(&inst, &set, 2, c), 0);
    }

    #[test]
    fn all_type_weights_matches_pointwise() {
        let inst = inst();
        let set = full_set(&inst);
        let mut scratch = Vec::new();
        for i in 0..inst.result_count() {
            let bulk = all_type_weights(&inst, &set, i);
            all_type_weights_into(&inst, &set, i, &mut scratch);
            assert_eq!(bulk, scratch, "into/alloc forms agree for result {i}");
            for (t, &w) in bulk.iter().enumerate() {
                assert_eq!(w, type_weight(&inst, &set, i, t), "result {i} type {t}");
            }
        }
    }

    #[test]
    fn scratch_buffer_is_reset_between_calls() {
        let inst = inst();
        let full = full_set(&inst);
        let empty = DfsSet::empty(&inst);
        let mut scratch = vec![99u32; 17]; // stale garbage of the wrong size
        all_type_weights_into(&inst, &full, 0, &mut scratch);
        let first = scratch.clone();
        all_type_weights_into(&inst, &empty, 0, &mut scratch);
        assert!(scratch.iter().all(|&w| w == 0), "stale weights leaked");
        all_type_weights_into(&inst, &full, 0, &mut scratch);
        assert_eq!(scratch, first);
    }

    #[test]
    fn toggle_delta_matches_total_difference() {
        let inst = inst();
        let mut set = full_set(&inst);
        // Restrict r1 to one type so toggling r0's types changes pair DoD.
        set.replace(&inst, 1, Dfs::from_prefixes(&inst, 1, &[1]));
        // Toggling each of r0's selected types off must change the total by
        // exactly toggle_delta.
        let before = dod_total(&inst, &set);
        for (e, list) in inst.results[0].ranked.clone().iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let t = *list.last().expect("non-empty");
            let delta = toggle_delta(&inst, &set, 0, t);
            let mut modified = set.clone();
            let mut dfs = Dfs::from_prefixes(&inst, 0, set.dfs(0).prefixes());
            dfs.shrink(e);
            modified.replace(&inst, 0, dfs);
            assert_eq!(before - dod_total(&inst, &modified), delta, "type {t}");
        }
    }

    #[test]
    fn potentials_ignore_selection() {
        let inst = inst();
        let empty = DfsSet::empty(&inst);
        let full = full_set(&inst);
        // Potentials are the same whatever the DFSs select.
        for i in 0..inst.result_count() {
            let p = type_potentials(&inst, i);
            assert_eq!(p, inst.potentials(i));
            // With everything selected, weights equal potentials.
            assert_eq!(p, all_type_weights(&inst, &full, i));
            // With nothing selected, weights are all zero but potentials
            // are not.
            assert!(all_type_weights(&inst, &empty, i).iter().all(|&w| w == 0));
        }
        let a = inst.types.iter().position(|t| t.attribute == "a").unwrap();
        assert_eq!(type_potentials(&inst, 0)[a], 2);
        // r2 lacks type c → potential 0 even though others have it.
        let c = inst.types.iter().position(|t| t.attribute == "c").unwrap();
        assert_eq!(type_potentials(&inst, 2)[c], 0);
    }

    #[test]
    fn result_contribution_consistent_with_total() {
        let inst = inst();
        let set = full_set(&inst);
        // Moving r0's contribution out and back: total = contribution(0) +
        // dod among {1,2}.
        let contrib0 = result_contribution(&inst, &set, 0, set.dfs(0));
        let pair12 = dod_pair(&inst, &set, 1, 2);
        assert_eq!(dod_total(&inst, &set), contrib0 + pair12);
    }
}
