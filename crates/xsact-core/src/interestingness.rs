//! Feature interestingness — the paper's named future-work direction
//! ("considering more factors (e.g., interestingness) when selecting
//! features for DFS", §3).
//!
//! We quantify how *surprising* a result's value for a feature type is,
//! relative to the other results under comparison: a type whose dominant
//! value is shared by every result carries no information, while a value
//! (or occurrence ratio) that deviates from the group is worth showing even
//! when it does not change the DoD count. Two signals are combined:
//!
//! * **value surprise** — `-ln` of the fraction of type-bearing results
//!   that share this result's dominant value;
//! * **ratio deviation** — the absolute gap between this result's
//!   occurrence ratio and the group mean.
//!
//! [`interesting_set`] is a DFS generator that blends interestingness into
//! the greedy selection; the ablation harness compares it against the
//! DoD-only algorithms.

use crate::dfs::{Dfs, DfsSet};
use crate::dod::all_type_weights_into;
use crate::model::{Instance, TypeId};

/// Interestingness of result `i`'s cell for type `t`, in `[0, ~5]`.
/// Zero when the result lacks the type or no other result carries it.
pub fn type_interestingness(inst: &Instance, i: usize, t: TypeId) -> f64 {
    let Some(cell) = inst.results[i].cells[t].as_ref() else {
        return 0.0;
    };
    // Scan the other results carrying the type — one pass, no peer list.
    let mut peers = 0usize;
    let mut sharing = 1usize;
    let mut peer_ratio_sum = 0.0f64;
    for j in 0..inst.result_count() {
        if j == i {
            continue;
        }
        let Some(peer) = inst.results[j].cells[t].as_ref() else {
            continue;
        };
        peers += 1;
        if peer.value == cell.value {
            sharing += 1;
        }
        peer_ratio_sum += peer.ratio;
    }
    if peers == 0 {
        return 0.0;
    }
    let bearing = peers + 1;
    let value_surprise = -((sharing as f64) / (bearing as f64)).ln();
    let mean_ratio = (cell.ratio + peer_ratio_sum) / bearing as f64;
    let ratio_deviation = (cell.ratio - mean_ratio).abs();
    value_surprise + ratio_deviation
}

/// The interestingness of every type for result `i`, written into a
/// caller-provided scratch buffer.
pub fn interestingness_profile_into(inst: &Instance, i: usize, profile: &mut Vec<f64>) {
    profile.clear();
    profile.extend((0..inst.type_count()).map(|t| type_interestingness(inst, i, t)));
}

/// The interestingness of every type for result `i`.
pub fn interestingness_profile(inst: &Instance, i: usize) -> Vec<f64> {
    let mut profile = Vec::new();
    interestingness_profile_into(inst, i, &mut profile);
    profile
}

/// Total interestingness of a DFS set (sum over results and selected
/// types). A secondary quality metric reported by the ablation harness.
pub fn total_interestingness(inst: &Instance, set: &DfsSet) -> f64 {
    (0..set.len())
        .map(|i| {
            set.dfs(i)
                .selected_types(inst, i)
                .into_iter()
                .map(|t| type_interestingness(inst, i, t))
                .sum::<f64>()
        })
        .sum()
}

/// Greedy DFS generation blending differentiation and interestingness:
/// each slot takes the entity whose next ranked type maximises
/// `(weight, potential + λ·interestingness, significance)` — realised DoD
/// first, then a blend of differentiation *potential* and surprise.
///
/// With `lambda = 0` this reduces to the plain greedy baseline; larger
/// `lambda` increasingly prefers surprising features over merely
/// potentially-differentiating ones.
pub fn interesting_set(inst: &Instance, lambda: f64) -> DfsSet {
    let mut set = crate::snippet::snippet_set(inst);
    let mut weights: Vec<u32> = Vec::new();
    let mut interest: Vec<f64> = Vec::new();
    for i in 0..set.len() {
        all_type_weights_into(inst, &set, i, &mut weights);
        let potentials = inst.potentials(i);
        interestingness_profile_into(inst, i, &mut interest);
        let bound = inst.config.size_bound;
        let mut dfs = Dfs::empty(inst.entities.len());
        while dfs.size() < bound {
            let mut best: Option<((u32, f64, f64), usize)> = None;
            for e in 0..inst.entities.len() {
                let Some(t) = dfs.next_type(inst, i, e) else { continue };
                let sig =
                    inst.results[i].cells[t].as_ref().expect("ranked type has a cell").sig_ratio;
                let key = (weights[t], f64::from(potentials[t]) + lambda * interest[t], sig);
                let better = match &best {
                    None => true,
                    Some((cur, _)) => {
                        key.0 > cur.0
                            || (key.0 == cur.0 && key.1 > cur.1)
                            || (key.0 == cur.0 && key.1 == cur.1 && key.2 > cur.2)
                    }
                };
                if better {
                    best = Some((key, e));
                }
            }
            match best {
                Some((_, e)) => {
                    dfs.grow(inst, i, e);
                }
                None => break,
            }
        }
        set.replace(inst, i, dfs);
    }
    debug_assert!(set.all_valid(inst));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dod::dod_total;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(e: &str, a: &str) -> FeatureType {
        FeatureType::new(e, a)
    }

    fn inst() -> Instance {
        let mk = |label: &str, shared: &str, ratio_count: u32| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10)],
                [
                    (ty("e", "common"), shared.to_string(), 9),
                    (ty("e", "varies"), "yes".to_string(), ratio_count),
                ],
            )
        };
        Instance::build(
            &[mk("a", "x", 9), mk("b", "x", 5), mk("c", "odd", 1)],
            DfsConfig { size_bound: 2, threshold_pct: 10.0 },
        )
    }

    #[test]
    fn shared_values_are_boring() {
        let inst = inst();
        let common = inst.types.iter().position(|t| t.attribute == "common").unwrap();
        // Results a and b share value "x": low surprise. Result c's "odd"
        // value is unique: high surprise.
        let ia = type_interestingness(&inst, 0, common);
        let ic = type_interestingness(&inst, 2, common);
        assert!(ic > ia, "unique value must be more interesting: {ic} vs {ia}");
    }

    #[test]
    fn ratio_outliers_are_interesting() {
        let inst = inst();
        let varies = inst.types.iter().position(|t| t.attribute == "varies").unwrap();
        // Ratios 0.9, 0.5, 0.1: the extremes deviate more from the mean
        // than the middle one.
        let ia = type_interestingness(&inst, 0, varies);
        let ib = type_interestingness(&inst, 1, varies);
        let ic = type_interestingness(&inst, 2, varies);
        assert!(ia > ib);
        assert!(ic > ib);
    }

    #[test]
    fn absent_types_score_zero() {
        let a = ResultFeatures::from_raw(
            "a",
            [("e".to_string(), 5)],
            [(ty("e", "only_a"), "v".to_string(), 3)],
        );
        let b = ResultFeatures::from_raw(
            "b",
            [("e".to_string(), 5)],
            [(ty("e", "only_b"), "v".to_string(), 3)],
        );
        let inst = Instance::build(&[a, b], DfsConfig::default());
        for t in 0..inst.type_count() {
            // Either the result lacks the type or no peer carries it.
            assert_eq!(type_interestingness(&inst, 0, t), 0.0);
            assert_eq!(type_interestingness(&inst, 1, t), 0.0);
        }
    }

    #[test]
    fn interesting_set_is_valid_and_bounded() {
        let inst = inst();
        for lambda in [0.0, 0.5, 2.0] {
            let set = interesting_set(&inst, lambda);
            assert!(set.all_valid(&inst), "lambda {lambda}");
        }
    }

    #[test]
    fn lambda_zero_matches_greedy_dod() {
        let inst = inst();
        let greedy = crate::greedy::greedy_set(&inst);
        let interesting = interesting_set(&inst, 0.0);
        assert_eq!(dod_total(&inst, &greedy), dod_total(&inst, &interesting));
    }

    #[test]
    fn total_interestingness_sums_selected() {
        let inst = inst();
        let empty = DfsSet::empty(&inst);
        assert_eq!(total_interestingness(&inst, &empty), 0.0);
        let set = interesting_set(&inst, 1.0);
        assert!(total_interestingness(&inst, &set) > 0.0);
    }

    #[test]
    fn profile_has_one_entry_per_type() {
        let inst = inst();
        assert_eq!(interestingness_profile(&inst, 0).len(), inst.type_count());
    }
}
