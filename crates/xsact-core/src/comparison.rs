//! The public façade: configure a comparison, run an algorithm, inspect the
//! outcome.

use crate::dfs::DfsSet;
use crate::dod::{dod_total, dod_upper_bound};
use crate::exhaustive::exhaustive;
use crate::greedy::greedy_set;
use crate::model::{DfsConfig, Instance};
use crate::single_swap::SwapStats;
use crate::snippet::snippet_set;
use crate::table::render_table;
use std::time::{Duration, Instant};
use xsact_entity::{FeatureType, ResultFeatures};

/// DFS generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-result frequency snippets (eXtract-style baseline, no
    /// cross-result awareness).
    Snippet,
    /// One greedy marginal-gain pass.
    Greedy,
    /// The paper's single-swap optimal local search.
    SingleSwap,
    /// The paper's multi-swap optimal dynamic-programming local search.
    MultiSwap,
    /// The exhaustive oracle: full enumeration of the DFS combination
    /// space, bounded by `limit` combinations. Exponential — only feasible
    /// on small instances; [`Comparison::run_exhaustive`] reports the
    /// blow-up as `None`, and the `Workbench` facade as a typed error.
    Exhaustive {
        /// Maximum number of DFS combinations to enumerate before giving
        /// up.
        limit: u64,
    },
}

impl Algorithm {
    /// The polynomial-time algorithms, in cheap-to-expensive order. The
    /// [`Algorithm::Exhaustive`] oracle is deliberately excluded: it is
    /// exponential and parameterised, so sweeps that iterate `ALL` stay
    /// tractable on any instance size.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Snippet, Algorithm::Greedy, Algorithm::SingleSwap, Algorithm::MultiSwap];

    /// Short display name used by the CLI and the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Snippet => "snippet",
            Algorithm::Greedy => "greedy",
            Algorithm::SingleSwap => "single-swap",
            Algorithm::MultiSwap => "multi-swap",
            Algorithm::Exhaustive { .. } => "exhaustive",
        }
    }
}

/// Counters and timing of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Local-search rounds (0 for the non-iterative algorithms).
    pub rounds: u32,
    /// Accepted moves / DFS replacements.
    pub moves: u32,
    /// Wall-clock time of DFS generation (instance preprocessing excluded).
    pub elapsed: Duration,
}

/// A configured comparison over a set of results.
///
/// ```
/// use xsact_core::{Algorithm, Comparison};
/// use xsact_entity::{FeatureType, ResultFeatures};
///
/// let a = ResultFeatures::from_raw(
///     "A",
///     [("e".to_string(), 10)],
///     [(FeatureType::new("e", "x"), "yes".to_string(), 8)],
/// );
/// let b = ResultFeatures::from_raw(
///     "B",
///     [("e".to_string(), 10)],
///     [(FeatureType::new("e", "x"), "yes".to_string(), 2)],
/// );
/// let outcome = Comparison::new(&[a, b]).size_bound(3).run(Algorithm::MultiSwap);
/// assert_eq!(outcome.dod(), 1);
/// println!("{}", outcome.table());
/// ```
#[derive(Debug, Clone)]
pub struct Comparison {
    results: Vec<ResultFeatures>,
    config: DfsConfig,
}

impl Comparison {
    /// Starts a comparison over the given results with default
    /// configuration (`L = 10`, `x = 10%`).
    pub fn new(results: &[ResultFeatures]) -> Self {
        Comparison { results: results.to_vec(), config: DfsConfig::default() }
    }

    /// Sets the comparison-table size bound `L` (features per DFS).
    #[must_use]
    pub fn size_bound(mut self, bound: usize) -> Self {
        self.config.size_bound = bound;
        self
    }

    /// Sets the differentiability threshold `x` in percent.
    #[must_use]
    pub fn threshold(mut self, pct: f64) -> Self {
        self.config.threshold_pct = pct;
        self
    }

    /// Builds the preprocessed instance (interning + differentiability
    /// matrix). `run` does this internally; exposed for benchmarks that
    /// time the algorithms in isolation.
    pub fn instance(&self) -> Instance {
        Instance::build(&self.results, self.config)
    }

    /// Generates DFSs with the chosen algorithm.
    ///
    /// For [`Algorithm::Exhaustive`] this panics when the combination count
    /// exceeds the variant's limit; use [`Comparison::run_exhaustive`] (or
    /// the `Workbench` facade, which returns a typed error) when the
    /// instance size is not known in advance.
    pub fn run(&self, algorithm: Algorithm) -> ComparisonOutcome {
        if let Algorithm::Exhaustive { limit } = algorithm {
            return self
                .run_exhaustive(limit)
                .expect("exhaustive enumeration exceeds its combination limit");
        }
        // Build the instance fresh and *move* it into the outcome — the
        // single-run path never pays a clone; multi-run callers go through
        // `run_on` instead.
        let instance = self.instance();
        let start = Instant::now();
        let (set, swap_stats) = run_algorithm(&instance, algorithm);
        let elapsed = start.elapsed();
        let dod = dod_total(&instance, &set);
        ComparisonOutcome {
            instance,
            set,
            dod,
            algorithm,
            stats: RunStats { rounds: swap_stats.rounds, moves: swap_stats.moves, elapsed },
        }
    }

    /// Runs an algorithm over an already-built instance — the entry point
    /// for callers that compare the *same* result set with several
    /// algorithms (or repeatedly): preprocessing (interning + the
    /// differentiability bit matrix) is paid once, each run only clones the
    /// flat arenas into its outcome.
    ///
    /// Panics like [`Comparison::run`] when an [`Algorithm::Exhaustive`]
    /// run exceeds its combination limit; use
    /// [`Comparison::run_exhaustive_on`] for the fallible form.
    pub fn run_on(instance: &Instance, algorithm: Algorithm) -> ComparisonOutcome {
        if let Algorithm::Exhaustive { limit } = algorithm {
            return Self::run_exhaustive_on(instance, limit)
                .expect("exhaustive enumeration exceeds its combination limit");
        }
        let start = Instant::now();
        let (set, swap_stats) = run_algorithm(instance, algorithm);
        let elapsed = start.elapsed();
        let dod = dod_total(instance, &set);
        ComparisonOutcome {
            instance: instance.clone(),
            set,
            dod,
            algorithm,
            stats: RunStats { rounds: swap_stats.rounds, moves: swap_stats.moves, elapsed },
        }
    }

    /// Exhaustive optimum, if the instance is small enough that at most
    /// `limit` DFS combinations must be enumerated. `None` otherwise. The
    /// outcome is labelled [`Algorithm::Exhaustive`].
    pub fn run_exhaustive(&self, limit: u64) -> Option<ComparisonOutcome> {
        Self::run_exhaustive_on(&self.instance(), limit)
    }

    /// [`Comparison::run_exhaustive`] over an already-built instance.
    pub fn run_exhaustive_on(instance: &Instance, limit: u64) -> Option<ComparisonOutcome> {
        let start = Instant::now();
        let (set, dod) = exhaustive(instance, limit)?;
        let elapsed = start.elapsed();
        Some(ComparisonOutcome {
            instance: instance.clone(),
            set,
            dod,
            algorithm: Algorithm::Exhaustive { limit },
            stats: RunStats { rounds: 0, moves: 0, elapsed },
        })
    }
}

/// Runs `algorithm` on a prebuilt instance. The bench harness calls this
/// directly to exclude preprocessing from timings.
///
/// Panics if an [`Algorithm::Exhaustive`] run exceeds its combination
/// limit — callers that cannot bound the instance should go through
/// [`Comparison::run_exhaustive`] instead.
pub fn run_algorithm(inst: &Instance, algorithm: Algorithm) -> (DfsSet, SwapStats) {
    match algorithm {
        Algorithm::Snippet => (snippet_set(inst), SwapStats::default()),
        Algorithm::Greedy => (greedy_set(inst), SwapStats::default()),
        Algorithm::SingleSwap => crate::single_swap::single_swap(inst),
        Algorithm::MultiSwap => crate::multi_swap::multi_swap(inst),
        Algorithm::Exhaustive { limit } => {
            let (set, _) = exhaustive(inst, limit)
                .expect("exhaustive enumeration exceeds its combination limit");
            (set, SwapStats::default())
        }
    }
}

/// The result of a comparison run: the DFSs, their DoD, and the rendered
/// table.
#[derive(Debug, Clone)]
pub struct ComparisonOutcome {
    /// The preprocessed instance the run operated on.
    pub instance: Instance,
    /// The generated DFSs, one per result.
    pub set: DfsSet,
    /// Total degree of differentiation achieved.
    pub dod: u32,
    /// The algorithm that produced the DFSs.
    pub algorithm: Algorithm,
    /// Run counters and timing.
    pub stats: RunStats,
}

impl ComparisonOutcome {
    /// Total degree of differentiation.
    pub fn dod(&self) -> u32 {
        self.dod
    }

    /// Upper bound on any DoD for this instance (all differentiable pairs).
    pub fn dod_upper_bound(&self) -> u32 {
        dod_upper_bound(&self.instance)
    }

    /// The comparison table (paper Figure 2) as ASCII art.
    pub fn table(&self) -> String {
        render_table(&self.instance, &self.set)
    }

    /// Result labels, in column order.
    pub fn labels(&self) -> Vec<&str> {
        self.instance.results.iter().map(|r| r.label.as_str()).collect()
    }

    /// The feature types selected for result `i`, grouped by entity in
    /// significance order.
    pub fn selected_types(&self, i: usize) -> Vec<&FeatureType> {
        self.set
            .dfs(i)
            .selected_types(&self.instance, i)
            .into_iter()
            .map(|t| &self.instance.types[t])
            .collect()
    }

    /// Size of result `i`'s DFS.
    pub fn dfs_size(&self, i: usize) -> usize {
        self.set.dfs(i).size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<ResultFeatures> {
        let mk = |label: &str, x: u32, y: u32| {
            ResultFeatures::from_raw(
                label,
                [("e".to_string(), 10)],
                [
                    (FeatureType::new("e", "same"), "yes".to_string(), 9),
                    (FeatureType::new("e", "x"), "yes".to_string(), x),
                    (FeatureType::new("e", "y"), "yes".to_string(), y),
                ],
            )
        };
        vec![mk("A", 8, 1), mk("B", 3, 6)]
    }

    #[test]
    fn builder_configures_bound_and_threshold() {
        let c = Comparison::new(&results()).size_bound(2).threshold(25.0);
        let inst = c.instance();
        assert_eq!(inst.config.size_bound, 2);
        assert!((inst.config.threshold_pct - 25.0).abs() < 1e-12);
    }

    #[test]
    fn algorithms_are_ordered_by_quality_here() {
        let c = Comparison::new(&results()).size_bound(3);
        let snippet = c.run(Algorithm::Snippet);
        let single = c.run(Algorithm::SingleSwap);
        let multi = c.run(Algorithm::MultiSwap);
        assert!(single.dod() >= snippet.dod());
        assert!(multi.dod() >= single.dod());
        assert_eq!(multi.dod(), 2); // x and y both differentiable
        assert!(multi.dod() <= multi.dod_upper_bound());
    }

    #[test]
    fn exhaustive_matches_multi_swap_on_small_instance() {
        let c = Comparison::new(&results()).size_bound(3);
        let multi = c.run(Algorithm::MultiSwap);
        let opt = c.run_exhaustive(100_000).unwrap();
        assert_eq!(opt.dod(), multi.dod());
    }

    #[test]
    fn exhaustive_outcome_is_labelled_exhaustive() {
        let c = Comparison::new(&results()).size_bound(3);
        let opt = c.run_exhaustive(100_000).unwrap();
        assert_eq!(opt.algorithm, Algorithm::Exhaustive { limit: 100_000 });
        assert_eq!(opt.algorithm.name(), "exhaustive");
        // `run` accepts the variant and produces the same label and DoD.
        let via_run = c.run(Algorithm::Exhaustive { limit: 100_000 });
        assert_eq!(via_run.algorithm, opt.algorithm);
        assert_eq!(via_run.dod(), opt.dod());
    }

    #[test]
    fn exhaustive_over_limit_is_none() {
        let c = Comparison::new(&results()).size_bound(3);
        assert!(c.run_exhaustive(1).is_none());
    }

    #[test]
    fn outcome_exposes_selections() {
        let c = Comparison::new(&results()).size_bound(3);
        let out = c.run(Algorithm::MultiSwap);
        assert_eq!(out.labels(), ["A", "B"]);
        assert_eq!(out.dfs_size(0), 3);
        let attrs: Vec<&str> = out.selected_types(0).iter().map(|t| t.attribute.as_str()).collect();
        assert_eq!(attrs, ["same", "x", "y"]);
        assert!(out.table().contains("A"));
    }

    #[test]
    fn run_reports_timing() {
        let c = Comparison::new(&results());
        let out = c.run(Algorithm::MultiSwap);
        // Some wall-clock time passed (may round to zero on coarse clocks,
        // so only check it is well-formed).
        assert!(out.stats.elapsed >= Duration::ZERO);
        assert!(out.stats.rounds >= 1);
    }

    #[test]
    fn algorithm_names() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["snippet", "greedy", "single-swap", "multi-swap"]);
    }
}
