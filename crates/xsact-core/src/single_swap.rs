//! The single-swap optimal algorithm (paper §2, "Local Optimality and
//! Algorithms").
//!
//! A DFS set is **single-swap optimal** if changing *or adding one feature*
//! in any DFS — while keeping validity and the size bound — cannot increase
//! the total degree of differentiation. On the prefix-vector representation
//! the one-feature neighbourhood of result `i` is:
//!
//! * **grow(e)** — extend entity `e`'s prefix by one (needs `|Di| < L`),
//! * **swap(e₁ → e₂)** — drop the last feature of `e₁`'s prefix and extend
//!   `e₂`'s prefix ("changing one feature").
//!
//! Because the total DoD decomposes into per-type weights when only one DFS
//! moves (see [`crate::dod`]), the gain of each move is evaluated in `O(1)`
//! after an `O(n·m)` weight pass.
//!
//! Moves are ranked by `(ΔDoD, Δpotential)` lexicographically and accepted
//! while strictly positive. The potential tie-breaker (see
//! [`crate::dod::type_potentials`]) lets two DFSs converge on a shared
//! differentiable type that neither has selected yet — a pure-DoD search
//! would see a 0 gain on both sides and stall. Each accepted move strictly
//! increases the bounded pair `(total DoD, Σ selected potentials)`, so the
//! search terminates.

use crate::dfs::DfsSet;
use crate::dod::{all_type_weights, all_type_weights_into};
use crate::model::Instance;
use crate::snippet::snippet_set;

/// Counters describing a local-search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Round-robin passes over the results (including the final pass that
    /// found no improvement).
    pub rounds: u32,
    /// Accepted improving moves (single-swap) or DFS replacements
    /// (multi-swap).
    pub moves: u32,
}

/// Runs the single-swap algorithm exactly as the paper describes it:
/// start from the natural valid summary of each result (its significance
/// snippet) and iteratively improve one feature at a time until no grow or
/// swap move helps.
pub fn single_swap(inst: &Instance) -> (DfsSet, SwapStats) {
    let mut set = snippet_set(inst);
    let stats = single_swap_from(inst, &mut set);
    (set, stats)
}

/// Runs the single-swap algorithm from a caller-provided initial solution
/// (used by tests and ablations). Returns run counters; `set` is updated in
/// place.
pub fn single_swap_from(inst: &Instance, set: &mut DfsSet) -> SwapStats {
    let bound = inst.config.size_bound;
    let entity_count = inst.entities.len();
    let mut stats = SwapStats::default();
    // One scratch weight buffer for the whole run — refilled per result,
    // never reallocated.
    let mut weights: Vec<u32> = Vec::new();

    loop {
        stats.rounds += 1;
        let mut improved = false;
        for i in 0..set.len() {
            // Weights depend only on the *other* DFSs, so they stay valid
            // while we repeatedly improve result i. Potentials are static
            // and precomputed by the instance.
            all_type_weights_into(inst, set, i, &mut weights);
            let potentials = inst.potentials(i);
            loop {
                let mut best_key = (0i64, 0i64);
                let mut best_move: Option<(Option<usize>, usize)> = None; // (shrink e1, grow e2)
                for e2 in 0..entity_count {
                    let Some(added) = set.dfs(i).next_type(inst, i, e2) else {
                        continue;
                    };
                    let gain = (i64::from(weights[added]), i64::from(potentials[added]));
                    if set.dfs(i).size() < bound && gain > best_key {
                        best_key = gain;
                        best_move = Some((None, e2));
                    }
                    for e1 in 0..entity_count {
                        if e1 == e2 {
                            continue;
                        }
                        let Some(removed) = set.dfs(i).last_type(inst, i, e1) else {
                            continue;
                        };
                        let key = (
                            gain.0 - i64::from(weights[removed]),
                            gain.1 - i64::from(potentials[removed]),
                        );
                        if key > best_key {
                            best_key = key;
                            best_move = Some((Some(e1), e2));
                        }
                    }
                }
                match best_move {
                    // Accept (ΔDoD, Δpot) > (0, 0): either the DoD improves,
                    // or it is unchanged and the potential improves.
                    Some((shrink, grow)) if best_key > (0, 0) => {
                        if let Some(e1) = shrink {
                            let ok = set.shrink(inst, i, e1);
                            debug_assert!(ok);
                        }
                        let ok = set.grow(inst, i, grow);
                        debug_assert!(ok);
                        stats.moves += 1;
                        improved = true;
                    }
                    _ => break,
                }
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(set.all_valid(inst));
    stats
}

/// Verifies single-swap optimality in the paper's sense: no grow or swap
/// move on any result increases the total DoD. (The potential tie-breaker is
/// an implementation refinement on top of this criterion.)
pub fn is_single_swap_optimal(inst: &Instance, set: &DfsSet) -> bool {
    let bound = inst.config.size_bound;
    for i in 0..set.len() {
        let weights = all_type_weights(inst, set, i);
        for e2 in 0..inst.entities.len() {
            let Some(added) = set.dfs(i).next_type(inst, i, e2) else { continue };
            let gain = i64::from(weights[added]);
            if set.dfs(i).size() < bound && gain > 0 {
                return false;
            }
            for e1 in 0..inst.entities.len() {
                if e1 == e2 {
                    continue;
                }
                let Some(removed) = set.dfs(i).last_type(inst, i, e1) else { continue };
                if gain - i64::from(weights[removed]) > 0 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dod::dod_total;
    use crate::model::DfsConfig;
    use crate::snippet::snippet_set;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(a: &str) -> FeatureType {
        FeatureType::new("e", a)
    }

    /// Two results where the snippet choice is differentiation-blind:
    /// * entity `e`'s `loud` has the highest ratio in both results but
    ///   identical stats (never differentiates);
    /// * entity `f`'s `quiet` is lower-ranked but differentiable. Separate
    ///   entities keep the swap valid (within one entity the prefix rule
    ///   would pin the selection).
    fn blind_instance(bound: usize) -> Instance {
        let a = ResultFeatures::from_raw(
            "A",
            [("e".to_string(), 10), ("f".to_string(), 10)],
            [
                (FeatureType::new("e", "loud"), "yes".to_string(), 9),
                (FeatureType::new("f", "quiet"), "yes".to_string(), 8),
            ],
        );
        let b = ResultFeatures::from_raw(
            "B",
            [("e".to_string(), 10), ("f".to_string(), 10)],
            [
                (FeatureType::new("e", "loud"), "yes".to_string(), 9),
                (FeatureType::new("f", "quiet"), "yes".to_string(), 3),
            ],
        );
        Instance::build(&[a, b], DfsConfig { size_bound: bound, threshold_pct: 10.0 })
    }

    #[test]
    fn improves_over_snippets() {
        // Bound 1: snippets pick `loud` (DoD 0); the potential tie-breaker
        // moves one DFS to `quiet`, the other follows for a real gain.
        let inst = blind_instance(1);
        let snippets = snippet_set(&inst);
        assert_eq!(dod_total(&inst, &snippets), 0);
        let (set, _) = single_swap(&inst);
        assert_eq!(dod_total(&inst, &set), 1);
        assert!(set.all_valid(&inst));
        // The snippet-start run alone also escapes, via the potential
        // tie-breaker: one swap per result.
        let mut from_snippets = snippet_set(&inst);
        let stats = single_swap_from(&inst, &mut from_snippets);
        assert_eq!(dod_total(&inst, &from_snippets), 1);
        assert!(stats.moves >= 2);
    }

    #[test]
    fn reaches_single_swap_optimality() {
        for bound in [1, 2, 3] {
            let inst = blind_instance(bound);
            let (set, _) = single_swap(&inst);
            assert!(is_single_swap_optimal(&inst, &set), "bound {bound}");
        }
    }

    #[test]
    fn never_decreases_dod() {
        let inst = blind_instance(2);
        let snippets = snippet_set(&inst);
        let before = dod_total(&inst, &snippets);
        let (set, _) = single_swap(&inst);
        assert!(dod_total(&inst, &set) >= before);
    }

    #[test]
    fn single_result_is_trivially_optimal() {
        let a = ResultFeatures::from_raw(
            "A",
            [("e".to_string(), 5)],
            [(ty("x"), "yes".to_string(), 3)],
        );
        let inst = Instance::build(&[a], DfsConfig::default());
        let (set, stats) = single_swap(&inst);
        assert_eq!(dod_total(&inst, &set), 0);
        assert_eq!(stats.moves, 0);
        assert!(is_single_swap_optimal(&inst, &set));
    }

    #[test]
    fn zero_bound_stays_empty() {
        let inst = blind_instance(0);
        let (set, _) = single_swap(&inst);
        assert_eq!(set.dfs(0).size(), 0);
        assert_eq!(set.dfs(1).size(), 0);
        assert_eq!(dod_total(&inst, &set), 0);
    }

    #[test]
    fn identical_results_converge_immediately() {
        let a = ResultFeatures::from_raw(
            "A",
            [("e".to_string(), 10)],
            [(ty("x"), "yes".to_string(), 5), (ty("y"), "yes".to_string(), 3)],
        );
        let inst = Instance::build(&[a.clone(), a], DfsConfig::default());
        let (set, stats) = single_swap(&inst);
        assert_eq!(dod_total(&inst, &set), 0);
        // No move can ever improve: one fixpoint-check round only.
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.moves, 0);
    }

    #[test]
    fn three_results_pairwise_gains_accumulate() {
        // One type per entity so any subset is a valid DFS.
        let mk = |label: &str, x: u32, y: u32| {
            ResultFeatures::from_raw(
                label,
                [("n".to_string(), 10), ("f".to_string(), 10), ("g".to_string(), 10)],
                [
                    (FeatureType::new("n", "noise"), "yes".to_string(), 10),
                    (FeatureType::new("f", "x"), "yes".to_string(), x),
                    (FeatureType::new("g", "y"), "yes".to_string(), y),
                ],
            )
        };
        // `noise` identical everywhere; x and y differentiable on all pairs.
        let inst = Instance::build(
            &[mk("a", 9, 1), mk("b", 5, 4), mk("c", 2, 8)],
            DfsConfig { size_bound: 2, threshold_pct: 10.0 },
        );
        let (set, _) = single_swap(&inst);
        // Optimal: everyone selects {x, y} → 2 types × 3 pairs = 6.
        assert_eq!(dod_total(&inst, &set), 6);
    }
}
