//! Word-parallel bitset primitives for the DoD kernel.
//!
//! The differentiability matrix and the per-result selection masks are both
//! sets over the instance's type universe (`m` types), stored as flat `u64`
//! arenas with `⌈m/64⌉` words per row. Every DoD quantity then reduces to
//! AND + popcount over two or three word slices — one CPU word processes 64
//! feature types at a time, and the kernels below are the only place the
//! bit layout is spelled out.

/// Number of `u64` words needed for a bitset over `bits` positions.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Tests bit `t` of a row.
#[inline]
pub fn test_bit(row: &[u64], t: usize) -> bool {
    (row[t / 64] >> (t % 64)) & 1 != 0
}

/// Sets bit `t` of a row.
#[inline]
pub fn set_bit(row: &mut [u64], t: usize) {
    row[t / 64] |= 1u64 << (t % 64);
}

/// Clears bit `t` of a row.
#[inline]
pub fn clear_bit(row: &mut [u64], t: usize) {
    row[t / 64] &= !(1u64 << (t % 64));
}

/// `popcount(a ∧ b)` — the word-parallel pair kernel.
///
/// Dispatches to the widest SIMD lane the CPU supports (see `xsact-kernel`);
/// the byte-identical scalar oracle lives in `xsact_kernel::scalar`.
#[inline]
pub fn and2_count(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    xsact_kernel::and2_count(a, b)
}

/// `popcount(a ∧ b ∧ c)` — the DoD pair kernel (`sel_i ∧ sel_j ∧ diff_ij`).
///
/// Dispatches to the widest SIMD lane the CPU supports (see `xsact-kernel`);
/// the byte-identical scalar oracle lives in `xsact_kernel::scalar`.
#[inline]
pub fn and3_count(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    xsact_kernel::and3_count(a, b, c)
}

/// Calls `f(t)` for every set bit of a row, in ascending bit order.
#[inline]
pub fn for_each_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in row.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let t = w * 64 + bits.trailing_zeros() as usize;
            f(t);
            bits &= bits - 1;
        }
    }
}

/// Calls `f(t)` for every set bit of `a ∧ b`, in ascending bit order.
#[inline]
pub fn for_each_and2(a: &[u64], b: &[u64], mut f: impl FnMut(usize)) {
    debug_assert_eq!(a.len(), b.len());
    for (w, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut bits = x & y;
        while bits != 0 {
            let t = w * 64 + bits.trailing_zeros() as usize;
            f(t);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn set_test_clear_round_trip() {
        let mut row = vec![0u64; words_for(130)];
        for t in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!test_bit(&row, t));
            set_bit(&mut row, t);
            assert!(test_bit(&row, t));
        }
        clear_bit(&mut row, 64);
        assert!(!test_bit(&row, 64));
        assert!(test_bit(&row, 63));
        assert!(test_bit(&row, 65));
    }

    #[test]
    fn and_counts_match_scalar() {
        let m = 150;
        let mut a = vec![0u64; words_for(m)];
        let mut b = vec![0u64; words_for(m)];
        let mut c = vec![0u64; words_for(m)];
        for t in 0..m {
            if t % 2 == 0 {
                set_bit(&mut a, t);
            }
            if t % 3 == 0 {
                set_bit(&mut b, t);
            }
            if t % 5 == 0 {
                set_bit(&mut c, t);
            }
        }
        let s2 = (0..m).filter(|t| t % 2 == 0 && t % 3 == 0).count() as u32;
        let s3 = (0..m).filter(|t| t % 2 == 0 && t % 3 == 0 && t % 5 == 0).count() as u32;
        assert_eq!(and2_count(&a, &b), s2);
        assert_eq!(and3_count(&a, &b, &c), s3);
    }

    #[test]
    fn for_each_visits_ascending() {
        let m = 200;
        let mut a = vec![0u64; words_for(m)];
        let mut b = vec![0u64; words_for(m)];
        for t in 0..m {
            if t % 7 == 0 {
                set_bit(&mut a, t);
            }
            if t % 7 == 0 || t % 11 == 0 {
                set_bit(&mut b, t);
            }
        }
        let mut seen = Vec::new();
        for_each_and2(&a, &b, |t| seen.push(t));
        let expected: Vec<usize> = (0..m).filter(|t| t % 7 == 0).collect();
        assert_eq!(seen, expected);
    }
}
