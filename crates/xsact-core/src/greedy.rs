//! A greedy marginal-gain baseline.
//!
//! One pass over the results: each DFS is rebuilt by repeatedly adding the
//! feature with the highest `(weight, potential, significance)` among the
//! entities' next ranked types, until the size bound is reached. Cheaper
//! than the swap algorithms (no convergence loop) but with no optimality
//! guarantee — the ablation harness quantifies the gap.

use crate::dfs::{Dfs, DfsSet};
use crate::dod::{all_type_weights, all_type_weights_into};
use crate::model::Instance;
use crate::snippet::snippet_set;

/// Builds DFSs greedily: snippet initialisation, then one greedy rebuild per
/// result (in order), each seeing the already-rebuilt DFSs of its
/// predecessors. One weight buffer serves the whole pass.
pub fn greedy_set(inst: &Instance) -> DfsSet {
    let mut set = snippet_set(inst);
    let mut weights: Vec<u32> = Vec::new();
    for i in 0..set.len() {
        all_type_weights_into(inst, &set, i, &mut weights);
        let dfs = greedy_dfs_weighted(inst, i, &weights);
        set.replace(inst, i, dfs);
    }
    debug_assert!(set.all_valid(inst));
    set
}

/// The greedy best-effort DFS of result `i` against the current set.
pub fn greedy_dfs(inst: &Instance, set: &DfsSet, i: usize) -> Dfs {
    greedy_dfs_weighted(inst, i, &all_type_weights(inst, set, i))
}

/// The greedy construction over precomputed weights (potentials come from
/// the instance).
fn greedy_dfs_weighted(inst: &Instance, i: usize, weights: &[u32]) -> Dfs {
    let potentials = inst.potentials(i);
    let bound = inst.config.size_bound;
    let mut dfs = Dfs::empty(inst.entities.len());
    while dfs.size() < bound {
        let mut best: Option<((u32, u32, f64), usize)> = None;
        for e in 0..inst.entities.len() {
            let Some(t) = dfs.next_type(inst, i, e) else { continue };
            let sig = inst.results[i].cells[t].as_ref().expect("ranked type has a cell").sig_ratio;
            let key = (weights[t], potentials[t], sig);
            let better = match &best {
                None => true,
                Some((cur, _)) => {
                    (key.0, key.1) > (cur.0, cur.1)
                        || ((key.0, key.1) == (cur.0, cur.1) && key.2 > cur.2)
                }
            };
            if better {
                best = Some((key, e));
            }
        }
        match best {
            Some((_, e)) => {
                dfs.grow(inst, i, e);
            }
            None => break,
        }
    }
    dfs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dod::dod_total;
    use crate::model::DfsConfig;
    use xsact_entity::{FeatureType, ResultFeatures};

    fn ty(a: &str) -> FeatureType {
        FeatureType::new("e", a)
    }

    fn inst(bound: usize) -> Instance {
        let a = ResultFeatures::from_raw(
            "A",
            [("e".to_string(), 10)],
            [
                (ty("same"), "yes".to_string(), 9),
                (ty("d1"), "yes".to_string(), 8),
                (ty("d2"), "yes".to_string(), 2),
            ],
        );
        let b = ResultFeatures::from_raw(
            "B",
            [("e".to_string(), 10)],
            [
                (ty("same"), "yes".to_string(), 9),
                (ty("d1"), "yes".to_string(), 3),
                (ty("d2"), "yes".to_string(), 7),
            ],
        );
        Instance::build(&[a, b], DfsConfig { size_bound: bound, threshold_pct: 10.0 })
    }

    #[test]
    fn greedy_prefers_differentiating_types() {
        // Bound 2: greedy must pick {d1, d2}-bearing prefixes... but
        // validity forces `same` (rank 1 on both sides) before d2/d1.
        // A's ranking: same(9), d1(8), d2(2); greedy with bound 2 picks
        // prefix {same, d1} — d1 has potential 1, then actual weight once B
        // rebuilds.
        let inst = inst(3);
        let set = greedy_set(&inst);
        // Full prefixes fit at bound 3: DoD = d1 + d2 = 2.
        assert_eq!(dod_total(&inst, &set), 2);
        assert!(set.all_valid(&inst));
    }

    #[test]
    fn greedy_respects_bound() {
        let inst = inst(1);
        let set = greedy_set(&inst);
        assert!(set.dfs(0).within(1));
        assert!(set.dfs(1).within(1));
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = inst(2);
        assert_eq!(greedy_set(&inst), greedy_set(&inst));
    }
}
