//! Human-readable rendering of entity and attribute labels.
//!
//! Tag names in the datasets use `snake_case` (`easy_to_read`, `best_use`);
//! the paper's UI shows them as words ("easy to read", "best use"). These
//! helpers are purely cosmetic — the comparison algorithms never look at
//! display labels.

use crate::features::FeatureType;

/// Replaces underscores with spaces: `easy_to_read` → `easy to read`.
pub fn prettify(tag: &str) -> String {
    tag.replace('_', " ")
}

/// The short, paper-style label of a feature type, e.g.
/// `(shop/product/reviews/review, pros:compact)` → `"pros: compact"`, and
/// `(shop/product, name)` → `"name"`.
///
/// The entity path is dropped (the comparison table groups rows by entity
/// already); attribute path segments are joined with `": "`.
pub fn display_label(ty: &FeatureType) -> String {
    ty.attribute.split(':').map(prettify).collect::<Vec<_>>().join(": ")
}

/// The short name of an entity path: its last segment, prettified.
/// `shop/product/reviews/review` → `review`.
pub fn entity_short_name(entity_path: &str) -> String {
    prettify(entity_path.rsplit('/').next().unwrap_or(entity_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prettify_replaces_underscores() {
        assert_eq!(prettify("easy_to_read"), "easy to read");
        assert_eq!(prettify("plain"), "plain");
        assert_eq!(prettify(""), "");
    }

    #[test]
    fn display_label_joins_attribute_segments() {
        let ty = FeatureType {
            entity: "shop/product/reviews/review".into(),
            attribute: "pros:easy_to_read".into(),
        };
        assert_eq!(display_label(&ty), "pros: easy to read");
        let ty = FeatureType { entity: "shop/product".into(), attribute: "name".into() };
        assert_eq!(display_label(&ty), "name");
    }

    #[test]
    fn entity_short_name_takes_last_segment() {
        assert_eq!(entity_short_name("shop/product/reviews/review"), "review");
        assert_eq!(entity_short_name("product"), "product");
        assert_eq!(entity_short_name("a/b/big_thing"), "big thing");
    }
}
