//! The entity identifier: structural node classification.
//!
//! Following XSeek (reference \[3\] of the paper), nodes of a data-centric XML
//! document play one of three roles, inferred from the data's structure
//! (no schema required):
//!
//! * **Entity** — a node "corresponding to a `*`-node in the schema": its tag
//!   occurs multiple times under a single parent somewhere in the data, and
//!   it has internal structure (element children). Example: `product`,
//!   `review`.
//! * **Attribute** — a leaf element carrying a value. Example: `name`,
//!   `rating`, `compact`.
//! * **Connection** — everything else: non-repeating internal nodes that
//!   merely group related items. Example: `pros`, `reviews`, `uses`.
//!
//! Classification is computed once per document over *tag paths* (the chain
//! of tags from the root), so every instance of `/shop/product/reviews/review`
//! receives the same class — exactly how XSeek's summary-based inference
//! behaves.

use std::collections::HashMap;
use xsact_xml::{Document, NodeId};

/// The inferred role of a node (more precisely, of its tag path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A real-world object with its own identity (repeating, structured).
    Entity,
    /// A property of an entity (leaf element with a value).
    Attribute,
    /// A grouping node connecting entities and attributes.
    Connection,
}

#[derive(Debug, Default, Clone)]
struct PathInfo {
    /// Did any parent hold two or more children with this tag?
    repeats: bool,
    /// Number of instances observed.
    instances: usize,
    /// Number of instances that have at least one element child.
    internal_instances: usize,
}

/// Per-document structural summary mapping tag paths to classes.
///
/// Built once with [`StructureSummary::infer`]; classification of an
/// individual node is then an O(depth) hash lookup.
#[derive(Debug, Clone)]
pub struct StructureSummary {
    paths: HashMap<String, PathInfo>,
}

impl StructureSummary {
    /// Infers the structural summary of `doc` in a single pass.
    pub fn infer(doc: &Document) -> Self {
        let mut paths: HashMap<String, PathInfo> = HashMap::new();
        // Count, for every element, how many children share each tag; a tag
        // with count >= 2 under one parent repeats.
        for node in doc.all_nodes() {
            if !doc.is_element(node) {
                continue;
            }
            let path = path_key(doc, node);
            let info = paths.entry(path.clone()).or_default();
            info.instances += 1;
            let mut has_element_child = false;
            let mut child_tag_counts: HashMap<&str, usize> = HashMap::new();
            for child in doc.child_elements(node) {
                has_element_child = true;
                *child_tag_counts.entry(doc.tag(child)).or_insert(0) += 1;
            }
            if has_element_child {
                paths.get_mut(&path).expect("just inserted").internal_instances += 1;
            }
            for (tag, count) in child_tag_counts {
                if count >= 2 {
                    let child_path = format!("{path}/{tag}");
                    paths.entry(child_path).or_default().repeats = true;
                }
            }
        }
        StructureSummary { paths }
    }

    /// Classifies the tag path of `node` within `doc`.
    ///
    /// The root element is always an entity (it is the single instance of the
    /// top-level object the document describes).
    pub fn class_of(&self, doc: &Document, node: NodeId) -> NodeClass {
        if !doc.is_element(node) {
            // Text runs take the role of the value they carry.
            return NodeClass::Attribute;
        }
        if doc.parent(node).is_none() {
            return NodeClass::Entity;
        }
        let key = path_key(doc, node);
        self.class_of_path(&key)
    }

    /// Classifies a raw `a/b/c` tag path.
    pub fn class_of_path(&self, path: &str) -> NodeClass {
        let info = match self.paths.get(path) {
            Some(i) => i,
            None => return NodeClass::Connection,
        };
        let ever_internal = info.internal_instances > 0;
        if info.repeats && ever_internal {
            NodeClass::Entity
        } else if !ever_internal {
            NodeClass::Attribute
        } else {
            NodeClass::Connection
        }
    }

    /// Whether the tag path is known to repeat under a single parent.
    pub fn repeats(&self, path: &str) -> bool {
        self.paths.get(path).is_some_and(|i| i.repeats)
    }

    /// Number of distinct tag paths observed.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterates `(path, class)` pairs, useful for debugging and the CLI's
    /// schema view. Order is unspecified.
    pub fn classes(&self) -> impl Iterator<Item = (&str, NodeClass)> + '_ {
        self.paths.keys().map(move |p| (p.as_str(), self.class_of_path(p)))
    }
}

/// The `a/b/c` tag-path key of an element node.
pub(crate) fn path_key(doc: &Document, node: NodeId) -> String {
    doc.tag_path(node).join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    /// A miniature of the paper's Product Reviews dataset (Figure 1).
    fn review_doc() -> Document {
        parse_document(
            "<shop>\
               <product>\
                 <name>TomTom Go 630</name>\
                 <rating>4.2</rating>\
                 <reviews>\
                   <review><pros><compact>yes</compact><easy_to_read>yes</easy_to_read></pros>\
                     <uses><best_use><auto>yes</auto></best_use></uses></review>\
                   <review><pros><compact>yes</compact></pros></review>\
                 </reviews>\
               </product>\
               <product>\
                 <name>Garmin Nuvi</name>\
                 <rating>4.0</rating>\
                 <reviews><review><pros><compact>yes</compact></pros></review></reviews>\
               </product>\
             </shop>",
        )
        .unwrap()
    }

    fn class(summary: &StructureSummary, path: &str) -> NodeClass {
        summary.class_of_path(path)
    }

    #[test]
    fn products_and_reviews_are_entities() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product"), NodeClass::Entity);
        assert_eq!(class(&s, "shop/product/reviews/review"), NodeClass::Entity);
    }

    #[test]
    fn leaves_are_attributes() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product/name"), NodeClass::Attribute);
        assert_eq!(class(&s, "shop/product/rating"), NodeClass::Attribute);
        assert_eq!(class(&s, "shop/product/reviews/review/pros/compact"), NodeClass::Attribute);
        assert_eq!(
            class(&s, "shop/product/reviews/review/uses/best_use/auto"),
            NodeClass::Attribute
        );
    }

    #[test]
    fn grouping_nodes_are_connections() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product/reviews"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/pros"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/uses"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/uses/best_use"), NodeClass::Connection);
    }

    #[test]
    fn root_is_entity() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(s.class_of(&doc, doc.root()), NodeClass::Entity);
    }

    #[test]
    fn class_of_resolves_instances() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        let product = doc.child_by_tag(doc.root(), "product").unwrap();
        assert_eq!(s.class_of(&doc, product), NodeClass::Entity);
        let name = doc.child_by_tag(product, "name").unwrap();
        assert_eq!(s.class_of(&doc, name), NodeClass::Attribute);
        let text = doc.children(name)[0];
        assert_eq!(s.class_of(&doc, text), NodeClass::Attribute);
    }

    #[test]
    fn unknown_path_defaults_to_connection() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "never/seen"), NodeClass::Connection);
    }

    #[test]
    fn repeating_leaf_stays_attribute() {
        // Repeated *leaf* tags (multi-valued attributes like keywords) are
        // attributes, not entities — they have no internal structure.
        let doc = parse_document(
            "<movies><movie><keyword>war</keyword><keyword>epic</keyword></movie></movies>",
        )
        .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "movies/movie/keyword"), NodeClass::Attribute);
        assert!(s.repeats("movies/movie/keyword"));
    }

    #[test]
    fn single_instance_internal_node_is_connection() {
        let doc = parse_document("<a><meta><created>2009</created></meta></a>").unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "a/meta"), NodeClass::Connection);
        assert_eq!(class(&s, "a/meta/created"), NodeClass::Attribute);
    }

    #[test]
    fn repetition_anywhere_marks_all_instances() {
        // `product` repeats under the first shop only, but the path class
        // applies document-wide (summary-based inference).
        let doc = parse_document(
            "<mall><shop><product><name>a</name></product><product><name>b</name></product></shop>\
             <shop><product><name>c</name></product></shop></mall>",
        )
        .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "mall/shop/product"), NodeClass::Entity);
        assert_eq!(class(&s, "mall/shop"), NodeClass::Entity);
    }

    #[test]
    fn mixed_leaf_and_internal_instances_lean_entity_or_connection() {
        // A tag that is sometimes internal: `extra` repeats and is internal
        // in one instance => entity.
        let doc = parse_document("<r><item><extra>plain</extra><extra><d>x</d></extra></item></r>")
            .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "r/item/extra"), NodeClass::Entity);
    }

    #[test]
    fn summary_statistics() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert!(s.path_count() >= 9);
        let entities: Vec<&str> =
            s.classes().filter(|(_, c)| *c == NodeClass::Entity).map(|(p, _)| p).collect();
        assert!(entities.contains(&"shop/product"));
        assert!(entities.contains(&"shop/product/reviews/review"));
    }
}
